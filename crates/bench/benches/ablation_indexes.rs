//! Ablation: index-backed anchors vs full scans.
//!
//! The planner anchors patterns on bound variables, then unique-key
//! index lookups, then the smallest label scan (DESIGN.md §5). This
//! ablation quantifies each tier by expressing the *same* question
//! three ways.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();
    let asn = iyp
        .query("MATCH (a:AS) RETURN a.asn ORDER BY a.asn DESC LIMIT 1")
        .unwrap()
        .single_int()
        .unwrap();

    let mut g = c.benchmark_group("ablation_indexes");
    g.sample_size(20);

    // Tier 1: unique-key index lookup (label + inline key property).
    let q_index = format!("MATCH (a:AS {{asn: {asn}}})-[:ORIGINATE]-(p:Prefix) RETURN count(p)");
    g.bench_function("key_index_anchor", |b| {
        b.iter(|| black_box(iyp.query(&q_index).unwrap().single_int()))
    });

    // Tier 2: label scan with a WHERE filter (no index use).
    let q_label =
        format!("MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) WHERE a.asn = {asn} RETURN count(p)");
    g.bench_function("label_scan_anchor", |b| {
        b.iter(|| black_box(iyp.query(&q_label).unwrap().single_int()))
    });

    // Tier 3: full node scan (no label at all).
    let q_scan = format!("MATCH (a)-[:ORIGINATE]-(p:Prefix) WHERE a.asn = {asn} RETURN count(p)");
    g.bench_function("full_scan_anchor", |b| {
        b.iter(|| black_box(iyp.query(&q_scan).unwrap().single_int()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
