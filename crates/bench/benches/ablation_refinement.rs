//! Ablation: materialised refinement links vs client-side joins.
//!
//! §2.3's refinement pass materialises `IP -PART_OF→ Prefix` links so
//! queries can hop from addresses to routing data. The alternative —
//! what users of the raw datasets do — is a client-side longest-prefix
//! match. This ablation measures both, plus the one-off cost of the
//! refinement passes themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::{build_iyp, build_iyp_unrefined, world};
use iyp_core::netdata::{Prefix, PrefixTrie};
use iyp_core::pipeline;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let refined = build_iyp();
    let unrefined = build_iyp_unrefined();

    let mut g = c.benchmark_group("ablation_refinement");
    g.sample_size(10);

    // With refinement: one graph query.
    g.bench_function("with_part_of_links", |b| {
        b.iter(|| {
            black_box(
                refined
                    .query(
                        "MATCH (:HostName)-[:RESOLVES_TO]-(:IP)-[:PART_OF]-(p:Prefix)
                         RETURN count(DISTINCT p.prefix)",
                    )
                    .unwrap()
                    .single_int(),
            )
        })
    });

    // Without refinement: fetch IPs and prefixes, LPM client-side.
    g.bench_function("client_side_lpm", |b| {
        b.iter(|| {
            let prefixes = unrefined.query("MATCH (p:Prefix) RETURN p.prefix").unwrap();
            let mut trie: PrefixTrie<()> = PrefixTrie::new();
            for row in &prefixes.rows {
                if let Some(p) = row[0].as_scalar().and_then(|v| v.as_str()) {
                    if let Ok(prefix) = p.parse::<Prefix>() {
                        trie.insert(&prefix, ());
                    }
                }
            }
            let ips = unrefined
                .query("MATCH (:HostName)-[:RESOLVES_TO]-(i:IP) RETURN DISTINCT i.ip")
                .unwrap();
            let mut matched = std::collections::HashSet::new();
            for row in &ips.rows {
                if let Some(ip) = row[0].as_scalar().and_then(|v| v.as_str()) {
                    if let Ok(addr) = ip.parse::<std::net::IpAddr>() {
                        if let Some((p, _)) = trie.longest_match_ip(&addr) {
                            matched.insert(p);
                        }
                    }
                }
            }
            black_box(matched.len())
        })
    });

    // One-off refinement cost.
    let w = world();
    g.bench_function("refinement_pass_cost", |b| {
        b.iter(|| {
            let mut iyp = iyp_core::Iyp::build_from_world(
                &w,
                &iyp_core::BuildOptions::default().without_refinement(),
            )
            .unwrap();
            let graph = iyp.graph_mut();
            let n = pipeline::postprocess::link_ips_to_prefixes(graph, 0).unwrap();
            black_box(n)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
