//! Knowledge-graph construction (§2.3): the full 46-dataset build,
//! plus the per-stage split (crawl vs refinement).

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::world;
use iyp_core::{BuildOptions, Iyp};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = world();

    let mut g = c.benchmark_group("build_pipeline");
    g.sample_size(10);
    g.bench_function("full_build", |b| {
        b.iter(|| {
            let iyp = Iyp::build_from_world(&w, &BuildOptions::default()).unwrap();
            black_box(iyp.graph().rel_count())
        })
    });
    g.bench_function("crawl_only", |b| {
        b.iter(|| {
            let iyp =
                Iyp::build_from_world(&w, &BuildOptions::default().without_refinement()).unwrap();
            black_box(iyp.graph().rel_count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
