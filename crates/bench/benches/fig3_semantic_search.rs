//! Figure 3 / Listings 1–3: semantic-search patterns.
//!
//! Benchmarks the three kinds of search the paper demonstrates: a pure
//! structural pattern, a constrained structural pattern (MOAS), and a
//! branching pattern anchored at a specific node.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();
    let mut g = c.benchmark_group("fig3_semantic_search");
    g.sample_size(20);

    g.bench_function("listing1_originating_ases", |b| {
        b.iter(|| {
            let rs = iyp
                .query("MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN DISTINCT x.asn")
                .unwrap();
            black_box(rs.rows.len())
        })
    });

    g.bench_function("listing2_moas_prefixes", |b| {
        b.iter(|| {
            let rs = iyp
                .query(
                    "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
                     WHERE x.asn <> y.asn
                     RETURN DISTINCT p.prefix",
                )
                .unwrap();
            black_box(rs.rows.len())
        })
    });

    g.bench_function("listing3_anchored_branching", |b| {
        b.iter(|| {
            let rs = iyp
                .query(
                    "MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(pfx:Prefix)\
                           -[:CATEGORIZED]-(:Tag {label:'RPKI Valid'})
                     MATCH (pfx)-[:PART_OF]-(:IP)\
                           -[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(h:HostName)
                     RETURN DISTINCT h.name",
                )
                .unwrap();
            black_box(rs.rows.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
