//! Figure 5: country-based SPoF in the DNS chain of the Tranco and
//! Cisco Umbrella top lists.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::crawlers::{RANKING_TRANCO, RANKING_UMBRELLA};
use iyp_core::studies::spof_study;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let r = spof_study(iyp.graph(), RANKING_TRANCO);
    let top = r.top_countries(5);
    println!(
        "[fig5] top countries (direct/third-party/hierarchical) over {} domains:",
        r.domains
    );
    for (cc, [d, t, h]) in &top {
        println!("[fig5]   {cc}: {d}/{t}/{h}");
    }

    let mut g = c.benchmark_group("fig5_spof_country");
    g.sample_size(10);
    g.bench_function("tranco", |b| {
        b.iter(|| black_box(spof_study(iyp.graph(), RANKING_TRANCO).top_countries(10)))
    });
    g.bench_function("umbrella", |b| {
        b.iter(|| black_box(spof_study(iyp.graph(), RANKING_UMBRELLA).top_countries(10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
