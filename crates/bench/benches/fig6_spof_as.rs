//! Figure 6: AS-based SPoF in the DNS chain (DNS-provider
//! consolidation view).

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::crawlers::{RANKING_TRANCO, RANKING_UMBRELLA};
use iyp_core::studies::spof_study;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let r = spof_study(iyp.graph(), RANKING_TRANCO);
    println!(
        "[fig6] top ASes (direct/third-party/hierarchical) over {} domains:",
        r.domains
    );
    for (name, [d, t, h]) in r.top_ases(5) {
        println!("[fig6]   {name}: {d}/{t}/{h}");
    }

    let mut g = c.benchmark_group("fig6_spof_as");
    g.sample_size(10);
    g.bench_function("tranco", |b| {
        b.iter(|| black_box(spof_study(iyp.graph(), RANKING_TRANCO).top_ases(10)))
    });
    g.bench_function("umbrella", |b| {
        b.iter(|| black_box(spof_study(iyp.graph(), RANKING_UMBRELLA).top_ases(10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
