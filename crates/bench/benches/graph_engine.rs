//! Engine microbenches: store operations and query-engine stages.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::graph::{Graph, Props};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let mut g = c.benchmark_group("graph_engine");

    g.bench_function("merge_node_10k", |b| {
        b.iter(|| {
            let mut graph = Graph::new();
            for i in 0..10_000u32 {
                // Half the merges hit existing nodes.
                graph.merge_node("AS", "asn", i % 5_000, Props::new());
            }
            black_box(graph.node_count())
        })
    });

    g.bench_function("create_rel_10k", |b| {
        b.iter(|| {
            let mut graph = Graph::new();
            let a = graph.merge_node("AS", "asn", 1u32, Props::new());
            let p = graph.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
            for _ in 0..10_000 {
                graph.create_rel(a, "ORIGINATE", p, Props::new()).unwrap();
            }
            black_box(graph.rel_count())
        })
    });

    // Typed expansion on a high-degree hub: `rels_of` with a type
    // filter walks the per-type adjacency list, so asking a 50k-degree
    // hub for its 16 RARE edges is O(16), not O(50k). The untyped
    // variant is the full-degree baseline the old filter-scan paid.
    {
        use iyp_core::graph::Direction;
        let mut graph = Graph::new();
        let hub = graph.merge_node("AS", "asn", 1u32, Props::new());
        for i in 0..50_000u32 {
            let p = graph.merge_node(
                "Prefix",
                "prefix",
                format!("10.{}.{}.0/24", i >> 8, i & 255),
                Props::new(),
            );
            graph.create_rel(hub, "ORIGINATE", p, Props::new()).unwrap();
            if i % 3_200 == 0 {
                let t = graph.merge_node("Tag", "label", format!("t{i}"), Props::new());
                graph
                    .create_rel(hub, "CATEGORIZED", t, Props::new())
                    .unwrap();
            }
        }
        let rare_type = graph.symbols().get_rel_type("CATEGORIZED").unwrap();
        g.bench_function("hub_expand_rare_type", |b| {
            b.iter(|| {
                black_box(
                    graph
                        .rels_of(hub, Direction::Outgoing, Some(rare_type))
                        .count(),
                )
            })
        });
        g.bench_function("hub_expand_untyped", |b| {
            b.iter(|| black_box(graph.rels_of(hub, Direction::Outgoing, None).count()))
        });
    }

    g.bench_function("cypher_parse", |b| {
        b.iter(|| {
            black_box(
                iyp_core::cypher::parser::parse(
                    "MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(p:Prefix)\
                           -[:CATEGORIZED]-(t:Tag)
                     WHERE t.label STARTS WITH 'RPKI' AND org.name <> 'x'
                     RETURN p.prefix, count(DISTINCT t) AS c ORDER BY c DESC LIMIT 5",
                )
                .unwrap(),
            )
        })
    });

    g.bench_function("indexed_point_lookup", |b| {
        // A single-node pattern resolved through the unique-key index.
        let asn = iyp
            .query("MATCH (a:AS) RETURN a.asn LIMIT 1")
            .unwrap()
            .single_int()
            .unwrap();
        let q = format!("MATCH (a:AS {{asn: {asn}}}) RETURN a.asn");
        b.iter(|| black_box(iyp.query(&q).unwrap().rows.len()))
    });

    g.bench_function("two_hop_traversal", |b| {
        b.iter(|| {
            black_box(
                iyp.query(
                    "MATCH (a:AS)-[:ORIGINATE]-(:Prefix)-[:CATEGORIZED]-(t:Tag)
                     RETURN count(*)",
                )
                .unwrap()
                .single_int(),
            )
        })
    });

    g.bench_function("aggregation_group_by", |b| {
        b.iter(|| {
            black_box(
                iyp.query(
                    "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix)
                     RETURN a.asn, count(p) AS c ORDER BY c DESC LIMIT 10",
                )
                .unwrap()
                .rows
                .len(),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
