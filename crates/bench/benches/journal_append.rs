//! Journal write path: WAL append throughput under each fsync policy,
//! plus frame encoding alone. Reported in EXPERIMENTS.md §Durability.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_core::graph::{Graph, GraphOp, Props, Value};
use iyp_core::journal::{encode_frame, FsyncPolicy, WalWriter};
use std::hint::black_box;

/// Records one realistic write-query batch: a MERGE that creates the
/// node plus a property SET — the dominant op shape in IYP updates.
fn sample_batch(asn: i64) -> Vec<GraphOp> {
    let mut g = Graph::new();
    g.begin_recording();
    let n = g.merge_node("AS", "asn", asn as u32, Props::new());
    g.set_node_prop(n, "name", Value::Str(format!("AS{asn}")))
        .unwrap();
    g.take_recording()
}

fn bench(c: &mut Criterion) {
    let batch = sample_batch(64500);
    println!(
        "[journal_append] batch: {} ops, {} bytes framed",
        batch.len(),
        encode_frame(&batch).len()
    );

    let mut g = c.benchmark_group("journal_append");
    g.sample_size(10);
    g.bench_function("encode_frame", |b| {
        b.iter(|| black_box(encode_frame(&batch).len()))
    });
    for (tag, policy) in [
        ("fsync_never", FsyncPolicy::Never),
        ("fsync_every_32", FsyncPolicy::EveryN(32)),
        ("fsync_always", FsyncPolicy::Always),
    ] {
        let path = std::env::temp_dir().join(format!("iyp-bench-wal-{tag}.log"));
        let mut w = WalWriter::create(&path, policy).expect("create wal");
        g.bench_function(tag, |b| {
            b.iter(|| black_box(w.append_batch(&batch).expect("append")))
        });
        drop(w);
        let _ = std::fs::remove_file(&path);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
