//! Journal recovery path: replay throughput of a WAL full of write
//! batches, and a full checkpoint of the bench-scale graph. Reported
//! in EXPERIMENTS.md §Durability.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::graph::{Graph, Props, Value};
use iyp_core::journal::{replay_into, DurableGraph, FsyncPolicy, WalWriter};
use std::hint::black_box;

const BATCHES: i64 = 2_000;

/// Writes a WAL of `BATCHES` two-op batches (merge + set, the dominant
/// update shape) and returns its path.
fn build_wal(path: &std::path::Path) {
    let mut g = Graph::new();
    let mut w = WalWriter::create(path, FsyncPolicy::Never).expect("create wal");
    for asn in 0..BATCHES {
        g.begin_recording();
        let n = g.merge_node("AS", "asn", asn as u32, Props::new());
        g.set_node_prop(n, "name", Value::Str(format!("AS{asn}")))
            .unwrap();
        w.append_batch(&g.take_recording()).expect("append");
    }
    w.sync().expect("sync");
}

fn bench(c: &mut Criterion) {
    let wal = std::env::temp_dir().join("iyp-bench-replay.log");
    build_wal(&wal);
    println!(
        "[journal_replay] WAL: {BATCHES} batches, {} KiB",
        std::fs::metadata(&wal).unwrap().len() / 1024
    );

    let mut g = c.benchmark_group("journal_replay");
    g.sample_size(10);
    g.bench_function("replay_wal", |b| {
        b.iter(|| {
            let mut graph = Graph::new();
            let report = replay_into(&mut graph, &wal, false).expect("replay");
            black_box((graph.node_count(), report.ops))
        })
    });
    let _ = std::fs::remove_file(&wal);

    // Checkpoint cost at bench scale: snapshot write + WAL rotation.
    let iyp = build_iyp();
    let dir = std::env::temp_dir().join("iyp-bench-checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    let durable =
        DurableGraph::seed(&dir, iyp.into_graph(), FsyncPolicy::Never).expect("seed journal");
    g.bench_function("checkpoint", |b| {
        b.iter(|| black_box(durable.checkpoint().expect("checkpoint")))
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
