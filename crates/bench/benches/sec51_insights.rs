//! §5.1: combined RiPKI × DNS-robustness insights — nameserver RPKI
//! coverage (§5.1.1) and hosting consolidation (§5.1.2).

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::studies::{hosting_consolidation, nameserver_rpki};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let ns = nameserver_rpki(iyp.graph());
    let hc = hosting_consolidation(iyp.graph());
    println!(
        "[sec5.1] ns prefixes covered {:.1}% (paper 48) | ns domains covered {:.1}% (paper 84)",
        ns.prefix_covered_pct, ns.domain_covered_pct
    );
    println!(
        "[sec5.1] hosting: prefix {:.1}% (52.2) domain {:.1}% (78.8) cdn-domain {:.1}% (96)",
        hc.prefix_covered_pct, hc.domain_covered_pct, hc.cdn_domain_covered_pct
    );

    let mut g = c.benchmark_group("sec51_insights");
    g.sample_size(10);
    g.bench_function("nameserver_rpki", |b| {
        b.iter(|| black_box(nameserver_rpki(iyp.graph())))
    });
    g.bench_function("hosting_consolidation", |b| {
        b.iter(|| black_box(hosting_consolidation(iyp.graph())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
