//! §3.1: the snapshot workflow — save and reload the knowledge graph
//! in both formats, reporting sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::graph::snapshot;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let bin = snapshot::to_binary(iyp.graph());
    let json = snapshot::to_json(iyp.graph()).unwrap();
    println!(
        "[snapshot] {} nodes {} rels — binary {} KiB, json {} KiB",
        iyp.graph().node_count(),
        iyp.graph().rel_count(),
        bin.len() / 1024,
        json.len() / 1024
    );

    let mut g = c.benchmark_group("snapshot");
    g.sample_size(10);
    g.bench_function("save_binary", |b| {
        b.iter(|| black_box(snapshot::to_binary(iyp.graph())))
    });
    g.bench_function("load_binary", |b| {
        b.iter(|| black_box(snapshot::from_binary(&bin).unwrap().node_count()))
    });
    g.bench_function("save_json", |b| {
        b.iter(|| black_box(snapshot::to_json(iyp.graph()).unwrap().len()))
    });
    g.bench_function("load_json", |b| {
        b.iter(|| black_box(snapshot::from_json(&json).unwrap().node_count()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
