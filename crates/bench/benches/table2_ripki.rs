//! Table 2: the RiPKI reproduction, plus the §4.1.4 per-tag sweep.
//!
//! Prints the regenerated table once, then benchmarks the full
//! time-to-insight (queries + aggregation).

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::studies::{ripki_study, rpki_by_tag};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    // Regenerate the table once for the log.
    let r = ripki_study(iyp.graph());
    println!(
        "[table2] invalid {:.2}% covered {:.1}% top {:.1}% bottom {:.1}% cdn {:.1}% \
         (paper 2024: 0.12 / 52.2 / 55.2 / 61.5 / 68.4)",
        r.invalid_pct, r.covered_pct, r.top_pct, r.bottom_pct, r.cdn_pct
    );

    let mut g = c.benchmark_group("table2_ripki");
    g.sample_size(10);
    g.bench_function("ripki_study", |b| {
        b.iter(|| black_box(ripki_study(iyp.graph())))
    });
    g.bench_function("rpki_by_tag_sweep", |b| {
        b.iter(|| black_box(rpki_by_tag(iyp.graph())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
