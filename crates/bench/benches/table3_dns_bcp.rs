//! Table 3: DNS best practices for `.com/.net/.org` domains.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::studies::best_practices;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let r = best_practices(iyp.graph());
    println!(
        "[table3] coverage {:.1}% discarded {:.1}% meet {:.1}% exceed {:.1}% \
         not-meet {:.1}% glue {:.1}% (paper 2024: 49 / 10 / 18 / 67 / 4 / 76)",
        r.coverage_pct,
        r.discarded_pct,
        r.meet_pct,
        r.exceed_pct,
        r.not_meet_pct,
        r.in_zone_glue_pct
    );

    let mut g = c.benchmark_group("table3_dns_bcp");
    g.sample_size(10);
    g.bench_function("best_practices", |b| {
        b.iter(|| black_box(best_practices(iyp.graph())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
