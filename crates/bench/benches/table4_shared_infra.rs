//! Table 4: DNS shared infrastructure for `.com/.net/.org`, grouped by
//! exact NS set and by /24 — replicating the original study's setup.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::studies::shared_infrastructure;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let r = shared_infrastructure(iyp.graph());
    println!(
        "[table4] by NS med {} max {} | by /24 med {} max {} \
         (paper 2024: med 9 max 6k | med 3.9k max 114k)",
        r.cno_by_ns.median, r.cno_by_ns.max, r.cno_by_slash24.median, r.cno_by_slash24.max
    );

    let mut g = c.benchmark_group("table4_shared_infra");
    g.sample_size(10);
    g.bench_function("shared_infrastructure", |b| {
        b.iter(|| black_box(shared_infrastructure(iyp.graph())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
