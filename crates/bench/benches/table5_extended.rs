//! Table 5: shared infrastructure without the original limitations —
//! BGP-prefix grouping (Listing 6) and the full Tranco list.
//!
//! The heavy part is the Listing 6 join (nameserver → IP → BGP prefix
//! via the refinement links); it is benchmarked separately from the
//! full table computation.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use iyp_core::studies::dns_robustness::{shared_infrastructure, Q_NS_BGP_PREFIXES};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let r = shared_infrastructure(iyp.graph());
    println!(
        "[table5] cno-by-prefix med {} max {} | all-by-prefix med {} max {} | all-by-ns med {} max {} \
         (paper 2024: 4.1k/114k | 6k/187k | 15/25k)",
        r.cno_by_prefix.median,
        r.cno_by_prefix.max,
        r.all_by_prefix.median,
        r.all_by_prefix.max,
        r.all_by_ns.median,
        r.all_by_ns.max
    );

    let mut g = c.benchmark_group("table5_extended");
    g.sample_size(10);
    g.bench_function("listing6_ns_bgp_prefix_join", |b| {
        b.iter(|| black_box(iyp.query(Q_NS_BGP_PREFIXES).unwrap().rows.len()))
    });
    g.bench_function("full_table5", |b| {
        b.iter(|| black_box(shared_infrastructure(iyp.graph())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
