//! Telemetry overhead: Listing-1 query latency with the recorder
//! disabled (the default — every instrument must be a no-op) versus
//! enabled (counters + latency histograms recording).
//!
//! The disabled case is the guard: it must match the pre-telemetry
//! baseline, i.e. instrumentation is free when nobody is looking.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_bench::build_iyp;
use std::hint::black_box;

const LISTING_1: &str = "MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN DISTINCT x.asn";

fn bench(c: &mut Criterion) {
    let iyp = build_iyp();

    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(20);

    iyp_telemetry::disable();
    g.bench_function("listing1_recorder_disabled", |b| {
        b.iter(|| black_box(iyp.query(LISTING_1).unwrap().rows.len()))
    });

    iyp_telemetry::enable();
    g.bench_function("listing1_recorder_enabled", |b| {
        b.iter(|| black_box(iyp.query(LISTING_1).unwrap().rows.len()))
    });
    iyp_telemetry::disable();

    // The enabled run really recorded: one counter tick per iteration.
    let queries = iyp_telemetry::snapshot()
        .into_iter()
        .find(|(n, _)| n == iyp_telemetry::names::CYPHER_QUERIES_TOTAL)
        .expect("query counter registered");
    match queries.1 {
        iyp_telemetry::MetricValue::Counter(n) => assert!(n > 0),
        other => panic!("unexpected metric type: {other:?}"),
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
