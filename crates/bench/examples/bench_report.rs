//! Machine-readable Cypher benchmark report.
//!
//! Runs the query-engine-bound paper benchmarks (figure 5, figure 6,
//! table 5) serially and at the configured parallel thread count, and
//! writes `BENCH_cypher.json` — bench name → ns/op per thread count,
//! plus graph scale and git revision — for before/after comparisons in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p iyp-bench --example bench_report
//! IYP_BENCH_SCALE=small IYP_BENCH_THREADS=4 cargo run --release -p iyp-bench --example bench_report
//! ```

use iyp_bench::build_iyp;
use iyp_core::crawlers::RANKING_TRANCO;
use iyp_core::studies::dns_robustness::{shared_infrastructure, Q_NS_BGP_PREFIXES};
use iyp_core::studies::spof_study;
use iyp_core::Iyp;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Iterations per bench per thread count. The target queries take
/// tens of milliseconds at small scale, so a handful of iterations
/// gives stable medians without Criterion's sampling machinery.
const ITERS: u32 = 7;

fn parallel_threads() -> usize {
    std::env::var("IYP_BENCH_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(4)
}

fn scale_name() -> String {
    match std::env::var("IYP_BENCH_SCALE").as_deref() {
        Ok("tiny") => "tiny".into(),
        Ok("default") | Ok("full") => "default".into(),
        _ => "small".into(),
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Median ns/op over `ITERS` runs of `f` (after one warmup run).
fn time_ns(mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..ITERS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A 50k-degree hub with a handful of rare-type edges: the worst case
/// for the old type-filter scan, the best case for typed adjacency.
fn hub_graph() -> iyp_core::Graph {
    use iyp_core::{Graph, Props};
    let mut g = Graph::new();
    let hub = g.merge_node("AS", "asn", 1u32, Props::new());
    for i in 0..50_000u32 {
        let p = g.merge_node(
            "Prefix",
            "prefix",
            format!("10.{}.{}.0/24", i >> 8, i & 255),
            Props::new(),
        );
        g.create_rel(hub, "ORIGINATE", p, Props::new()).unwrap();
        if i % 3_200 == 0 {
            let t = g.merge_node("Tag", "label", format!("t{i}"), Props::new());
            g.create_rel(hub, "CATEGORIZED", t, Props::new()).unwrap();
        }
    }
    g
}

const HUB_QUERY: &str = "MATCH (a:AS {asn: 1})-[:CATEGORIZED]-(t:Tag) RETURN count(t)";

/// The cached-vs-uncached hot query: a 50k-edge expansion, expensive
/// enough that the epoch-keyed result cache must win by a wide margin.
const HOT_QUERY: &str = "MATCH (a:AS {asn: 1})-[:ORIGINATE]-(p:Prefix) RETURN count(p)";

/// Measures `HOT_QUERY` uncached vs served from a warm
/// [`iyp_core::cypher::QueryCache`], asserting byte-identical results,
/// and returns a report entry with both latencies and the speedup.
fn cache_bench(hub: &iyp_core::Graph) -> serde_json::Value {
    use iyp_core::cypher::{QueryCache, Statement};
    let cache = QueryCache::new(16 << 20);
    let stmt = Statement::prepare(HOT_QUERY).expect("hot query parses");
    let uncached_result = stmt.no_cache().run(hub).expect("uncached run");
    let stmt = Statement::prepare(HOT_QUERY)
        .expect("hot query parses")
        .cache(&cache);
    let cached_result = stmt.run(hub).expect("warming run");
    assert_eq!(
        uncached_result, cached_result,
        "cached result diverged from uncached"
    );
    let uncached_ns = time_ns(|| {
        let stmt = Statement::prepare(HOT_QUERY).expect("hot query parses");
        black_box(stmt.no_cache().run(hub).expect("uncached run").rows.len());
    });
    let cached_ns = time_ns(|| {
        let stmt = Statement::prepare(HOT_QUERY)
            .expect("hot query parses")
            .cache(&cache);
        black_box(stmt.run(hub).expect("cached run").rows.len());
    });
    let speedup = uncached_ns as f64 / cached_ns.max(1) as f64;
    eprintln!(
        "query_cache/hot_hub_expand: uncached {uncached_ns} ns/op, \
         cached {cached_ns} ns/op ({speedup:.2}x)"
    );
    json!({
        "name": "query_cache/hot_hub_expand",
        "ns_per_op": { "uncached": uncached_ns, "cached": cached_ns },
        "speedup": (speedup * 100.0).round() / 100.0,
    })
}

type Bench<'a> = (&'static str, Box<dyn FnMut() + 'a>);

fn benches(iyp: &Iyp) -> Vec<Bench<'_>> {
    vec![
        (
            "fig5_spof_country/tranco",
            Box::new(|| {
                black_box(spof_study(iyp.graph(), RANKING_TRANCO).top_countries(10));
            }),
        ),
        (
            "fig6_spof_as/tranco",
            Box::new(|| {
                black_box(spof_study(iyp.graph(), RANKING_TRANCO).top_ases(10));
            }),
        ),
        (
            "table5_extended/listing6_ns_bgp_prefix_join",
            Box::new(|| {
                black_box(iyp.query(Q_NS_BGP_PREFIXES).unwrap().rows.len());
            }),
        ),
        (
            "table5_extended/full_table5",
            Box::new(|| {
                black_box(shared_infrastructure(iyp.graph()));
            }),
        ),
    ]
}

fn main() {
    let par = parallel_threads().max(2);
    let scale = scale_name();
    eprintln!("building graph ({scale} scale)...");
    let iyp = build_iyp();

    let hub = hub_graph();
    let params = iyp_core::Params::new();
    let mut all = benches(&iyp);
    all.push((
        "graph_engine/hub_typed_expand_query",
        Box::new(|| {
            black_box(
                iyp_core::cypher::query(&hub, HUB_QUERY, &params)
                    .unwrap()
                    .rows
                    .len(),
            );
        }),
    ));

    let mut entries = Vec::new();
    for (name, mut f) in all {
        iyp_core::cypher::set_threads(1);
        let serial_ns = time_ns(&mut f);
        iyp_core::cypher::set_threads(par);
        let parallel_ns = time_ns(&mut f);
        iyp_core::cypher::set_threads(0);
        let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
        eprintln!(
            "{name}: serial {serial_ns} ns/op, {par} threads {parallel_ns} ns/op ({speedup:.2}x)"
        );
        entries.push(json!({
            "name": name,
            "ns_per_op": { "1": serial_ns, par.to_string(): parallel_ns },
            "speedup": (speedup * 100.0).round() / 100.0,
        }));
    }

    entries.push(cache_bench(&hub));

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = json!({
        "schema": "iyp-bench-cypher/1",
        "git_rev": git_rev(),
        "scale": scale,
        "threads": [1, par],
        "host_cpus": host_cpus,
        "iters_per_sample": ITERS,
        "benches": entries,
    });
    let path = "BENCH_cypher.json";
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(path, pretty + "\n").expect("write BENCH_cypher.json");
    println!("wrote {path}");
}
