//! Shared fixtures for the benchmark suite.
//!
//! Every bench target regenerates one table or figure of the paper (see
//! `DESIGN.md` for the experiment index). The fixtures build the
//! knowledge graph once per process at a scale controlled by
//! `IYP_BENCH_SCALE` (`tiny` | `small` (default) | `default`).

use iyp_core::{BuildOptions, Iyp, SimConfig, World};

/// The benchmark seed, fixed for reproducibility.
pub const SEED: u64 = 42;

/// The scale selected via `IYP_BENCH_SCALE`.
pub fn scale() -> SimConfig {
    match std::env::var("IYP_BENCH_SCALE").as_deref() {
        Ok("tiny") => SimConfig::tiny(),
        Ok("default") | Ok("full") => SimConfig::default(),
        _ => SimConfig::small(),
    }
}

/// Generates the world at bench scale.
pub fn world() -> World {
    World::generate(&scale(), SEED)
}

/// Builds the full knowledge graph at bench scale.
pub fn build_iyp() -> Iyp {
    Iyp::build(&scale(), SEED).expect("bench build")
}

/// Builds without the refinement passes (ablation baseline).
pub fn build_iyp_unrefined() -> Iyp {
    let w = world();
    Iyp::build_from_world(&w, &BuildOptions::default().without_refinement())
        .expect("bench build (unrefined)")
}
