//! Documentation-page rendering.
//!
//! The real IYP repository documents its ontology and data sources as
//! Markdown pages; this module renders the same pages from the code so
//! they can never drift (see `tests/docs_in_sync.rs` and
//! `examples/gen_docs.rs`).

use std::fmt::Write as _;

/// Renders `documentation/node_types.md` (Table 6 of the paper).
pub fn node_types_md() -> String {
    let mut s = String::from(
        "# Node types (entities)\n\n\
         The IYP ontology's entity types — Table 6 of the paper. Each node\n\
         is uniquely identified by its key property.\n\n\
         | Entity | Key property | Description |\n|---|---|---|\n",
    );
    for e in iyp_ontology::entity::ALL_ENTITIES {
        writeln!(
            s,
            "| `:{}` | `{}` | {} |",
            e.label(),
            e.key_property(),
            e.description()
        )
        .expect("write to string");
    }
    s
}

/// Renders `documentation/relationship_types.md` (Table 7 of the paper).
pub fn relationship_types_md() -> String {
    let mut s = String::from(
        "# Relationship types\n\n\
         The IYP ontology's relationship types — Table 7 of the paper.\n\
         Every imported link carries the six provenance properties\n\
         (`reference_org`, `reference_name`, `reference_url_info`,\n\
         `reference_url_data`, `reference_time_modification`,\n\
         `reference_time_fetch`).\n\n\
         | Relationship | Description | Allowed node pairs |\n|---|---|---|\n",
    );
    for r in iyp_ontology::relationship::ALL_RELATIONSHIPS {
        let pairs: Vec<String> = iyp_ontology::allowed_triples(r)
            .map(|t| format!("{} → {}", t.src.label(), t.dst.label()))
            .collect();
        writeln!(
            s,
            "| `:{}` | {} | {} |",
            r.type_name(),
            r.description(),
            pairs.join("; ")
        )
        .expect("write to string");
    }
    s
}

/// Renders `documentation/data-sources.md` (Table 8 of the paper).
pub fn data_sources_md() -> String {
    let mut s = String::from(
        "# Data sources\n\n\
         The 46 datasets integrated into IYP — Table 8 of the paper. In this\n\
         reproduction every dataset is emitted by the synthetic Internet\n\
         (`iyp-simnet`) in its native wire format and parsed by its own\n\
         crawler (`iyp-crawlers`).\n\n\
         | Organization | Dataset (`reference_name`) | Frequency | Info |\n|---|---|---|---|\n",
    );
    for d in iyp_simnet::datasets::ALL_DATASETS {
        writeln!(
            s,
            "| {} | `{}` | {} | <{}> |",
            d.organization(),
            d.name(),
            d.frequency(),
            d.info_url()
        )
        .expect("write to string");
    }
    s
}

/// Renders `documentation/telemetry.md` — the observability guide.
///
/// The metric table is rendered from [`iyp_telemetry::names::ALL`] (the
/// constants every instrumented crate uses), and the EXPLAIN example is
/// produced by actually planning Listing 1 of the paper against a
/// two-node graph, so the page cannot drift from the implementation.
pub fn telemetry_md() -> String {
    let mut s = String::from(
        "# Telemetry: metrics, EXPLAIN/PROFILE, and server stats\n\n\
         The `iyp-telemetry` crate provides a zero-dependency metrics\n\
         registry (atomic counters, gauges, and log-bucketed latency\n\
         histograms) that the whole stack reports into. Recording is\n\
         disabled by default and every instrument is a no-op until\n\
         `iyp_telemetry::enable()` is called, so instrumented code paths\n\
         pay nothing in normal operation.\n\n\
         ## Query plans: `EXPLAIN` and `PROFILE`\n\n\
         Prefix any read query with `EXPLAIN` to see its plan without\n\
         running it, or with `PROFILE` to run it and annotate every\n\
         operator with the rows it produced and the wall time it took.\n\
         Both work in the CLI shell, through `iyp query`, and over the\n\
         server protocol; the plan comes back as a single-column\n\
         (`plan`) result set, one row per line. Write queries (`CREATE`,\n\
         `MERGE`, `SET`, `DELETE`) reject both keywords.\n\n\
         For Listing 1 of the paper the planner produces:\n\n\
         ```text\n",
    );
    let mut g = iyp_graph::Graph::new();
    let a = g.merge_node("AS", "asn", 2497u32, iyp_graph::Props::new());
    let p = g.merge_node("Prefix", "prefix", "192.0.2.0/24", iyp_graph::Props::new());
    g.create_rel(a, "ORIGINATE", p, iyp_graph::Props::new())
        .expect("sample rel");
    let listing1 = "MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN DISTINCT x.asn";
    writeln!(s, "EXPLAIN {listing1}\n").expect("write to string");
    let plan = iyp_cypher::explain(&g, listing1).expect("listing 1 plans");
    s.push_str(&plan.render());
    s.push_str(
        "\n```\n\n\
         Operators: `ProduceResults` (projection handed to the caller),\n\
         `Projection`/`Filter`/`Unwind` (one per `WITH`/`WHERE`/`UNWIND`\n\
         clause), `Match`/`OptionalMatch` (pattern expansion, with its\n\
         access path as children), `Expand` (relationship traversal),\n\
         and the anchor choices `BoundVariable`, `NodeIndexSeek`,\n\
         `NodeByLabelScan`, and `AllNodesScan`. `PROFILE` appends\n\
         `[rows=N time=X.XXXms]` to each operator.\n\n\
         ## Metric names\n\n\
         All instrumentation uses the canonical names in\n\
         `iyp_telemetry::names` (durations in seconds, Prometheus\n\
         convention):\n\n\
         | Metric | Kind | Labels | Description |\n|---|---|---|---|\n",
    );
    for (name, kind, labels, help) in iyp_telemetry::names::ALL {
        let labels = if labels.is_empty() {
            String::new()
        } else {
            format!("`{labels}`")
        };
        writeln!(s, "| `{name}` | {kind} | {labels} | {help} |").expect("write to string");
    }
    s.push_str(
        "\n`iyp build --metrics` enables the recorder for the build, then\n\
         prints per-dataset and per-refinement-pass wall times followed\n\
         by the Prometheus text exposition (`iyp_telemetry::render()`).\n\n\
         ## Server commands\n\n\
         Besides query requests, the line-delimited JSON protocol accepts\n\
         four commands:\n\n\
         - `{\"cmd\": \"ping\"}` → `{\"status\": \"pong\"}` — liveness; the\n\
         \x20\x20client performs this handshake on connect.\n\
         - `{\"cmd\": \"stats\"}` → `{\"status\": \"stats\", \"stats\": {...}}` —\n\
         \x20\x20a `graph` object (node/relationship totals plus per-label and\n\
         \x20\x20per-type counts) and a `telemetry` object (the current\n\
         \x20\x20metrics snapshot; `iyp serve` enables the recorder at\n\
         \x20\x20startup, so a live server's counters are always recording).\n\
         - `{\"cmd\": \"write\", \"query\": ..., \"params\": ...}` → a Cypher\n\
         \x20\x20write query; the `iyp_journal_*` metrics above track the\n\
         \x20\x20write-ahead log it appends to. Rejected with a `read_only`\n\
         \x20\x20error on a server started without `--journal`.\n\
         - `{\"cmd\": \"checkpoint\"}` → compacts the journal; its wall time\n\
         \x20\x20lands in `iyp_journal_checkpoint_seconds`.\n\n\
         See `documentation/durability.md` for the journal itself.\n\n\
         Malformed input never kills the connection silently: empty\n\
         lines, oversized lines (> 1 MiB, which also closes the\n\
         connection), bad JSON, and unknown commands each produce an\n\
         error response whose message starts with a stable code\n\
         (`empty_request`, `request_too_large`, `bad_json`,\n\
         `missing_query`, `unknown_command`). Queries slower than 250 ms\n\
         are counted and logged server-side.\n\n\
         For the fault-tolerant build pipeline, record quarantine, and\n\
         per-query deadlines behind the `iyp_build_*` and\n\
         `iyp_server_query_timeout_total` metrics above, see\n\
         `documentation/fault-tolerance.md`.\n",
    );
    s
}

/// Renders `documentation/durability.md` — the journal guide.
///
/// The WAL frame walkthrough is produced by actually recording a write
/// against a live graph and encoding it with the real framing code, so
/// the documented byte layout cannot drift from the implementation.
pub fn durability_md() -> String {
    let mut s = String::from(
        "# Durability: the write-ahead log and crash recovery\n\n\
         The paper's local-instance workflow (§6.1) has users *mutating*\n\
         their IYP copy — tagging studied resources, importing\n\
         confidential data — so `iyp-journal` makes writes survive\n\
         crashes without rewriting a snapshot per query. A journal\n\
         directory holds generation-numbered pairs:\n\n\
         ```text\n\
         journal/\n\
         ├── snapshot-3.bin   # binary graph snapshot, generation 3\n\
         └── wal-3.log        # writes since that snapshot\n\
         ```\n\n\
         Recovery = load `snapshot-{g}.bin` for the highest complete\n\
         generation, then replay `wal-{g}.log` on top.\n\n\
         ## Effect logging\n\n\
         Every graph mutation records its *effects* — the assigned node\n\
         and relationship IDs, whether a `MERGE` matched or created —\n\
         as a `GraphOp`, and replay applies those recorded outcomes\n\
         verbatim. Replaying `snapshot + WAL` therefore reproduces the\n\
         pre-crash graph **byte-identically, IDs included**; if a replayed\n\
         op would assign a different ID than it recorded, recovery fails\n\
         loudly rather than diverge silently.\n\n\
         ## WAL file format\n\n\
         ```text\n\
         [ 4B magic \"IYPW\" ][ 4B version u32 LE ]          file header\n\
         [ 4B len u32 LE ][ 4B crc32 u32 LE ][ payload ]   frame, repeated\n\
         ```\n\n\
         A frame's payload is one *batch* — a `u32 LE` op count followed\n\
         by binary-encoded ops — and one batch is one write query, so\n\
         replay is all-or-nothing per query. For example, the query\n\
         `MERGE (a:AS {asn: 2497}) SET a.name = 'IIJ'` against an empty\n\
         graph journals one frame:\n\n\
         ```text\n",
    );
    let mut g = iyp_graph::Graph::new();
    g.begin_recording();
    let n = g.merge_node("AS", "asn", 2497u32, iyp_graph::Props::new());
    g.set_node_prop(n, "name", iyp_graph::Value::Str("IIJ".into()))
        .expect("sample set");
    let batch = g.take_recording();
    let frame = iyp_journal::encode_frame(&batch);
    let payload = &frame[8..];
    writeln!(
        s,
        "len     = {} bytes (u32 LE)\n\
         crc32   = 0x{:08X} over the payload\n\
         payload = {} ops: {}",
        payload.len(),
        u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]),
        batch.len(),
        batch
            .iter()
            .map(|op| op.name())
            .collect::<Vec<_>>()
            .join(", ")
    )
    .expect("write to string");
    s.push_str(
        "```\n\n\
         The CRC is the reflected IEEE CRC-32 (the zlib variant),\n\
         implemented in `iyp_journal::crc`.\n\n\
         ## Fsync policy\n\n\
         `--fsync` controls when appended frames reach stable storage:\n\n\
         | Policy | Meaning | Loss window |\n|---|---|---|\n\
         | `always` (default) | fsync after every batch | none: an acknowledged write survives a power cut |\n\
         | `every=N` | fsync after every N batches | at most N acknowledged batches |\n\
         | `never` | rely on the OS flush | whatever the OS buffered |\n\n\
         ## Recovery procedure\n\n\
         On open, `DurableGraph` (and `iyp serve --journal` / `iyp\n\
         recover`):\n\n\
         1. picks the highest generation named by any snapshot or WAL;\n\
         2. loads its snapshot (an absent snapshot means generation 0,\n\
         \x20\x20\x20the empty graph);\n\
         3. replays its WAL frame by frame, stopping at the first\n\
         \x20\x20\x20incomplete header, bad length, or CRC mismatch — the **torn\n\
         \x20\x20\x20tail** left by a crash mid-append — and truncates the file\n\
         \x20\x20\x20back to the last valid frame so it is append-ready again;\n\
         4. deletes stale `*.tmp` files and older generations.\n\n\
         A frame whose CRC passes but whose payload fails to decode is\n\
         *not* a torn tail — the bytes are intact but unintelligible —\n\
         and recovery fails loudly instead of dropping data.\n\n\
         ## Checkpointing\n\n\
         `checkpoint()` compacts the journal: it fsyncs the current WAL,\n\
         writes `snapshot-{g+1}.bin` via a temp file + atomic rename +\n\
         directory fsync, creates an empty `wal-{g+1}.log`, and only then\n\
         deletes generation `g`. Every intermediate crash point leaves\n\
         one complete generation on disk, so a kill mid-checkpoint\n\
         recovers either the old or the new generation — never neither.\n\n\
         ## Serving writes\n\n\
         ```text\n\
         iyp build --scale small --journal journal/   # seed generation 1\n\
         iyp serve --journal journal/ [--fsync always]\n\
         iyp recover --journal journal/ [--out graph.bin]\n\
         ```\n\n\
         A journaled server accepts `{\"cmd\": \"write\", \"query\": ...}`\n\
         (Cypher `CREATE`/`MERGE`/`SET`/`DELETE`, executed under an\n\
         exclusive lock while readers run concurrently, journaled as one\n\
         batch) and `{\"cmd\": \"checkpoint\"}`. A server started without\n\
         `--journal` rejects both with a `read_only` error. `iyp\n\
         recover` replays, reports (generations, replayed ops, torn\n\
         bytes), compacts, and optionally exports a plain snapshot.\n\n\
         Journal activity is observable through the `iyp_journal_*`\n\
         metrics — see `documentation/telemetry.md`.\n",
    );
    s
}

/// Renders `documentation/query-engine.md` — the read-path guide.
///
/// The anchor-classification examples are produced by actually planning
/// queries against a sample graph, and the thread/partition defaults
/// are read from the engine's constants, so the page cannot drift from
/// the implementation.
pub fn query_engine_md() -> String {
    let mut s = String::from(
        "# Query engine: anchors, typed adjacency, and parallel execution\n\n\
         How `iyp-cypher` executes the read path, and the knobs that\n\
         control it. For plan inspection (`EXPLAIN`/`PROFILE`) see\n\
         `documentation/telemetry.md`; for the epoch-keyed result\n\
         cache that can skip this whole pipeline on a repeat query,\n\
         see `documentation/query-cache.md`.\n\n\
         ## Anchor classification\n\n\
         Each `MATCH` pattern starts from one *anchor* node, chosen per\n\
         pattern in strict preference order:\n\n\
         1. `BoundVariable` — a variable already bound by an earlier\n\
         \x20\x20\x20clause; candidates are exactly that binding.\n\
         2. `NodeIndexSeek` — a label plus its unique-key property\n\
         \x20\x20\x20(e.g. `(:AS {asn: 2497})`) resolves through the unique-key\n\
         \x20\x20\x20index to at most one node.\n\
         3. `NodeByLabelScan` — a label alone scans only that label's\n\
         \x20\x20\x20nodes.\n\
         4. `AllNodesScan` — no label, no binding: every node.\n\n\
         The planner picks the anchor end of the pattern the same way,\n\
         so writing the selective end first is not required. Against a\n\
         sample graph:\n\n\
         ```text\n",
    );
    let mut g = iyp_graph::Graph::new();
    let a = g.merge_node("AS", "asn", 2497u32, iyp_graph::Props::new());
    let p = g.merge_node("Prefix", "prefix", "192.0.2.0/24", iyp_graph::Props::new());
    g.create_rel(a, "ORIGINATE", p, iyp_graph::Props::new())
        .expect("sample rel");
    for q in [
        "MATCH (a:AS {asn: 2497})-[:ORIGINATE]-(p:Prefix) RETURN p.prefix",
        "MATCH (a:AS)-[:ORIGINATE]-(p) RETURN count(*)",
        "MATCH (n) RETURN count(n)",
    ] {
        writeln!(s, "EXPLAIN {q}\n").expect("write to string");
        let plan = iyp_cypher::explain(&g, q).expect("sample query plans");
        s.push_str(&plan.render());
        s.push('\n');
    }
    s.push_str(
        "```\n\n\
         ## Typed adjacency\n\n\
         Every node keeps, besides its plain adjacency (relationship ids\n\
         in creation order), a per-relationship-type index: a sorted\n\
         `(type, rel ids)` list per direction. A typed expansion like\n\
         `-[:ORIGINATE]-` reads exactly the matching list, so it costs\n\
         O(degree-of-that-type) instead of a scan of the node's whole\n\
         adjacency — on a hub with 50k `ORIGINATE` edges and 16\n\
         `CATEGORIZED` edges, expanding `-[:CATEGORIZED]-` touches 16\n\
         entries (`graph_engine/hub_expand_rare_type` in the bench suite\n\
         measures this). Iteration order is identical to the old\n\
         filter-scan (rel ids in creation order, outgoing before\n\
         incoming), so results are unchanged.\n\n\
         The typed index is **not** serialized: snapshots keep their\n\
         format and are bit-identical to before; `from_parts` rebuilds\n\
         the index on load.\n\n\
         ## Parallel execution\n\n",
    );
    writeln!(
        s,
        "Large read stages run on scoped worker threads over `&Graph`:\n\
         anchor-candidate sets and input-row sets in `MATCH`, predicate\n\
         evaluation in `WHERE`, and per-row projection/group-key\n\
         evaluation in `RETURN`/`WITH`. A stage splits its items into at\n\
         most `threads` contiguous chunks (only when it has at least\n\
         {} items — below that, spawning costs more than it saves),\n\
         runs one chunk on the calling thread and the rest on spawned\n\
         workers, and merges the chunk outputs **in chunk order**.",
        iyp_cypher::par::DEFAULT_MIN_PARTITION
    )
    .expect("write to string");
    s.push_str(
        "\nBecause chunks are contiguous and merged in order — and\n\
         grouping keys are structural (`GroupKey`), not rendered strings\n\
         — a parallel run returns byte-identical results to a serial\n\
         run: same columns, same rows, same order, same first error.\n\
         `crates/cypher/tests/par_equivalence.rs` holds that property\n\
         over random graphs and query shapes. Workers never\n\
         re-parallelise: nested stages (multi-pattern `MATCH`, `EXISTS`\n\
         subqueries) inside a worker run serially.\n\n\
         `PROFILE` annotates parallel clauses with `par=<threads>` and\n\
         `chunks=<rows per chunk>`, e.g.\n\
         `[rows=5176 time=15.9ms par=4 chunks=1294/1294/1294/1294]`,\n\
         and three metrics observe the machinery:\n\n",
    );
    for name in [
        iyp_telemetry::names::CYPHER_PARALLEL_CHUNKS_TOTAL,
        iyp_telemetry::names::CYPHER_WORKER_SECONDS,
        iyp_telemetry::names::CYPHER_GROUP_KEYS_TOTAL,
    ] {
        let (_, kind, _, help) = iyp_telemetry::names::ALL
            .iter()
            .find(|(n, ..)| *n == name)
            .expect("metric registered");
        writeln!(s, "- `{name}` ({kind}) — {help}.").expect("write to string");
    }
    s.push_str(
        "\n## Thread configuration\n\n\
         Thread count resolution, highest precedence first:\n\n\
         1. the `--threads N` flag (`iyp query`, `iyp profile`,\n\
         \x20\x20\x20`iyp serve`, or `iyp_cypher::set_threads` in code);\n\
         2. the `IYP_CYPHER_THREADS` environment variable;\n\
         3. available hardware parallelism, capped at 8.\n\n\
         On a single-core host the engine therefore stays serial unless\n\
         explicitly told otherwise — the right default, since threads\n\
         only help when cores do. The server additionally caps in-flight\n\
         connection handlers (`--max-conns`, default 64); connections\n\
         over the cap get a structured `busy` error and are counted in\n",
    );
    writeln!(s, "`{}`.", iyp_telemetry::names::SERVER_BUSY_REJECTED_TOTAL)
        .expect("write to string");
    s
}

/// Renders `documentation/query-cache.md` — the caching guide.
///
/// The `PROFILE` walkthrough is produced by actually running the same
/// prepared statement twice against a live cache (so the rendered
/// `cache=miss`/`cache=hit` annotations are the executor's real
/// output), and the metric list is rendered from
/// [`iyp_telemetry::names::ALL`], so the page cannot drift from the
/// implementation.
pub fn query_cache_md() -> String {
    let mut s = String::from(
        "# Query cache: epoch-keyed results behind prepared statements\n\n\
         `iyp-cypher` caches parsed queries and full result sets so a\n\
         hot read query is served without parsing, planning, or\n\
         executing anything. Correctness does not depend on explicit\n\
         invalidation: cache keys embed the graph's *epoch*, so any\n\
         write makes every prior entry unreachable. This page covers\n\
         the keying rules, sizing, and how to migrate to the\n\
         `Statement` API that fronts the cache. For the read path\n\
         itself see `documentation/query-engine.md`.\n\n\
         ## Cache keying\n\n\
         A result-set entry is keyed by the 4-tuple:\n\n\
         1. **graph id** — a process-unique identity minted when the\n\
         \x20\x20\x20`Graph` is created (and minted *fresh* when a graph is\n\
         \x20\x20\x20rebuilt from a snapshot or a journal reopen), so two\n\
         \x20\x20\x20graph instances can never collide on each other's\n\
         \x20\x20\x20entries;\n\
         2. **epoch** — a monotonic counter the graph bumps on *every*\n\
         \x20\x20\x20mutation;\n\
         3. **query text** — verbatim;\n\
         4. **params fingerprint** — a canonical, type-tagged encoding\n\
         \x20\x20\x20of the parameter map (sorted by key; `1` the int, `1.0`\n\
         \x20\x20\x20the float, and `\"1\"` the string all fingerprint\n\
         \x20\x20\x20differently).\n\n\
         Parsed ASTs are cached separately, keyed by query text alone —\n\
         an AST is graph-independent, so `Statement::prepare` of a\n\
         previously seen query skips the parser on any graph.\n\n\
         ## Epoch rules\n\n\
         - Every mutation bumps the epoch: node/relationship creation,\n\
         \x20\x20merges that change anything, property sets, label adds,\n\
         \x20\x20and deletes.\n\
         - Journal replay goes through the same mutation path, so\n\
         \x20\x20recovery bumps the epoch once per replayed op —\n\
         \x20\x20`DurableGraph::epoch()` exposes the current value.\n\
         - A reopened journal (or a snapshot load) additionally gets a\n\
         \x20\x20fresh graph id, so entries cached against the previous\n\
         \x20\x20incarnation can never be served, even if the op counts\n\
         \x20\x20happen to line up.\n\n\
         Stale entries are therefore never *returned*; they age out of\n\
         the LRU under byte pressure.\n\n\
         ## Sizing and modes\n\n\
         The cache is byte-bounded LRU: each entry is charged its\n\
         approximate result-set size plus the query text, and inserting\n\
         past the bound evicts the least-recently-used entries. A\n\
         single result larger than the whole bound is rejected (the\n\
         cache keeps what it has rather than flushing itself for one\n\
         oversized answer).\n\n\
         - `iyp serve --cache-mb N` sizes a per-server cache. Cache\n\
         \x20\x20hits skip execution but still honor `--query-timeout`: a\n\
         \x20\x20request arriving past its deadline reports `timeout:` even\n\
         \x20\x20when the answer is sitting in the cache.\n\
         - `iyp query --cache-mb N` / `iyp profile --cache-mb N` size\n\
         \x20\x20the process-global cache used by ad-hoc runs; the\n\
         \x20\x20`IYP_QUERY_CACHE_MB` environment variable does the same.\n\
         - Capacity 0 (the default everywhere) disables caching\n\
         \x20\x20entirely: lookups return immediately and count neither\n\
         \x20\x20hits nor misses.\n\n\
         ## `PROFILE` shows the cache\n\n\
         When a cache is in play, `PROFILE` annotates the plan root\n\
         with `cache=miss` (executed, result stored) or `cache=hit`\n\
         (served from the cache; per-operator rows/timings are absent\n\
         because nothing ran). Running the same prepared statement\n\
         twice:\n\n\
         ```text\n",
    );
    let mut g = iyp_graph::Graph::new();
    for asn in [2497u32, 64496, 64497] {
        g.merge_node("AS", "asn", asn, iyp_graph::Props::new());
    }
    let cache = iyp_cypher::QueryCache::new(1 << 20);
    let stmt = iyp_cypher::Statement::prepare("MATCH (a:AS) RETURN count(a)")
        .expect("sample query parses")
        .cache(&cache);
    for pass in ["first run", "second run"] {
        let (_, plan) = stmt.profile(&g).expect("sample query profiles");
        writeln!(s, "PROFILE MATCH (a:AS) RETURN count(a)   -- {pass}\n").expect("write to string");
        // Wall times vary run to run; elide them so the page is
        // reproducible (everything else is the executor's raw output).
        for line in plan.render().lines() {
            let elided: Vec<String> = line
                .split(' ')
                .map(|tok| match tok.strip_prefix("time=") {
                    Some(rest) => format!("time=…{}", if rest.ends_with(']') { "]" } else { "" }),
                    None => tok.to_string(),
                })
                .collect();
            writeln!(s, "{}", elided.join(" ")).expect("write to string");
        }
        s.push('\n');
    }
    s.push_str(
        "```\n\n\
         Without a cache the annotation is absent, so existing `PROFILE`\n\
         output is unchanged for anyone not opting in.\n\n\
         ## Telemetry\n\n\
         Four instruments observe the cache (all in\n\
         `iyp_telemetry::names`, documented in\n\
         `documentation/telemetry.md`):\n\n",
    );
    for name in [
        iyp_telemetry::names::CYPHER_CACHE_HITS_TOTAL,
        iyp_telemetry::names::CYPHER_CACHE_MISSES_TOTAL,
        iyp_telemetry::names::CYPHER_CACHE_EVICTIONS_TOTAL,
        iyp_telemetry::names::CYPHER_CACHE_BYTES,
    ] {
        let (_, kind, _, help) = iyp_telemetry::names::ALL
            .iter()
            .find(|(n, ..)| *n == name)
            .expect("metric registered");
        writeln!(s, "- `{name}` ({kind}) — {help}.").expect("write to string");
    }
    s.push_str(
        "\n## Migrating to the `Statement` API\n\n\
         The cache is fronted by a prepared-statement builder; the old\n\
         free functions remain as thin shims over it.\n\n\
         | Before | After |\n|---|---|\n\
         | `query(&g, text, &params)` | `Statement::prepare(text)?.params(&params).run(&g)` |\n\
         | `query_with_cancel(&g, text, &params, &cancel)` | `Statement::prepare(text)?.params(&params).cancel(&cancel).run(&g)` |\n\
         | `explain(&g, text)` | `Statement::prepare(text)?.explain(&g)` |\n\
         | `profile(&g, text, &params)` | `Statement::prepare(text)?.params(&params).profile(&g)` |\n\n\
         `.cache(&cache)` attaches a specific `QueryCache`;\n\
         `.no_cache()` opts a statement out even when the global cache\n\
         is enabled; `run_shared` returns `Arc<ResultSet>` so a cache\n\
         hit is returned without cloning the rows. Prepared statements\n\
         are reusable across graphs and parameter sets — preparation\n\
         only parses.\n\n\
         On the client side, `Client::query` now returns a typed\n\
         `Result<Table, ClientError>`: a `Table` carries columns plus\n\
         JSON rows, and a `ClientError` carries a stable `code()`\n\
         (`busy`, `timeout`, `read_only`, `query`, ...) with the\n\
         human-readable `detail()` separated out. The low-level\n\
         `Client::request` API is unchanged for protocol-level work.\n",
    );
    s
}

/// Renders `documentation/fault-tolerance.md` — the robustness guide.
///
/// The fault-model table is rendered from [`iyp_simnet::FaultKind::ALL`],
/// and the quarantine/retry defaults are read from
/// `ImportPolicy::default()` and `BuildOptions::default()`, so the page
/// cannot drift from the implementation.
pub fn fault_tolerance_md() -> String {
    let mut s = String::from(
        "# Fault tolerance: chaos injection, quarantine, and query deadlines\n\n\
         The production IYP ingests 46 community feeds it does not\n\
         control: feeds truncate mid-transfer, carry malformed rows, and\n\
         fail transiently. This page documents how the reproduction\n\
         survives all of that — and how to inject those faults on\n\
         purpose. For the metrics the machinery reports, see\n\
         `documentation/telemetry.md`.\n\n\
         ## The fault model (`iyp_simnet::chaos`)\n\n\
         A `FaultPlan` is a seeded, deterministic assignment of faults\n\
         to datasets: the same seed always corrupts the same datasets in\n\
         the same way, so every chaos failure is reproducible. Text\n\
         corruptions are applied to the rendered dataset before its\n\
         crawler parses it:\n\n\
         | Corruption | Effect |\n|---|---|\n",
    );
    for k in iyp_simnet::FaultKind::ALL {
        writeln!(s, "| `{}` | {} |", k.name(), k.description()).expect("write to string");
    }
    let opts = iyp_pipeline::BuildOptions::default();
    let policy = iyp_crawlers::ImportPolicy::default();
    writeln!(
        s,
        "\nFetch faults model the network instead of the payload: a\n\
         *transient* fault fails the first N simulated fetch attempts\n\
         and then succeeds, a *hard* fault fails every attempt.\n\n\
         `FaultPlan::generate(seed, targets)` draws a random plan;\n\
         `iyp build --chaos SEED` runs a full build under one.\n\n\
         ## Per-dataset isolation (`iyp-pipeline`)\n\n\
         `build_graph` treats every dataset as its own failure domain.\n\
         A dataset that panics while rendering or importing, or that\n\
         exhausts its retries or error budget, is recorded in the\n\
         `BuildReport` — `failed` (render/import errors, with cause and\n\
         retry count) or `skipped` (fetch never succeeded) — and the\n\
         build moves on to the next dataset instead of aborting.\n\
         Transient fetch failures are retried up to {} times with\n\
         exponential backoff starting at {} ms; parse errors are never\n\
         retried (the same bytes would fail the same way). Links a\n\
         failed dataset created before failing stay in the graph —\n\
         imports are best-effort, not transactional — and the report\n\
         says exactly which datasets are affected.\n\n\
         ## Record quarantine (`iyp-crawlers`)\n\n\
         Importers parse record-by-record. A malformed record is\n\
         *quarantined* — skipped, counted, and sampled into the build\n\
         report — instead of failing the dataset, until the error\n\
         budget is exhausted: by default {} malformed records are\n\
         always tolerated, and beyond that the dataset fails once more\n\
         than {}% of its records are bad. `ImportPolicy::strict()`\n\
         restores the old any-error-is-fatal behaviour. Parse errors\n\
         carry the 1-based line number and a clipped excerpt of the\n\
         offending input, so a quarantine sample like\n\n\
         ```text\n\
         tranco.top1m: parse error at line 7: bad rank (input: \"x,example.com\")\n\
         ```\n\n\
         points at the exact row to inspect.\n\n\
         ## Query deadlines (`iyp-cypher` + `iyp-server`)\n\n\
         The executor threads a cooperative `Cancel` token through\n\
         every row loop — serial and parallel workers alike, including\n\
         the pattern-expansion work stacks — and polls it once per row,\n\
         so a runaway query stops within one row's worth of work. A\n\
         query run without a token pays a single `Option` check per\n\
         row and returns byte-identical results to the pre-deadline\n\
         engine.\n\n\
         `iyp serve --query-timeout SECS` enforces a wall-clock\n\
         deadline per read query: an over-deadline query is cancelled\n\
         at a row boundary and the client receives one structured\n\
         error line starting with `timeout:`; the connection stays\n\
         usable. The busy-rejection path (`--max-conns`) and the\n\
         timeout path share one structured-rejection write path, so\n\
         the wire format cannot diverge. Write queries are exempt:\n\
         they hold the exclusive journal lock and run to completion or\n\
         not at all.\n\n\
         ## Observability\n\n\
         Four counters track the machinery (all in\n\
         `iyp_telemetry::names`, documented in\n\
         `documentation/telemetry.md`):\n",
        opts.max_retries,
        opts.retry_backoff.as_millis(),
        policy.min_quarantined,
        policy.error_budget_pct,
    )
    .expect("write to string");
    s.push('\n');
    for name in [
        iyp_telemetry::names::BUILD_QUARANTINED_RECORDS_TOTAL,
        iyp_telemetry::names::BUILD_RETRIES_TOTAL,
        iyp_telemetry::names::BUILD_FAILED_DATASETS_TOTAL,
        iyp_telemetry::names::SERVER_QUERY_TIMEOUT_TOTAL,
    ] {
        let (_, kind, _, help) = iyp_telemetry::names::ALL
            .iter()
            .find(|(n, ..)| *n == name)
            .expect("metric registered");
        writeln!(s, "- `{name}` ({kind}) — {help}.").expect("write to string");
    }
    s.push_str(
        "\nThe chaos CI job (`.github/workflows/ci.yml`) runs a\n\
         fixed-seed chaos build plus a property test over random fault\n\
         plans on every push, so the isolation guarantees above are\n\
         continuously exercised.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_render_with_expected_row_counts() {
        let nodes = node_types_md();
        assert_eq!(nodes.lines().filter(|l| l.starts_with("| `:")).count(), 24);
        let rels = relationship_types_md();
        assert_eq!(rels.lines().filter(|l| l.starts_with("| `:")).count(), 24);
        let sources = data_sources_md();
        assert_eq!(
            sources
                .lines()
                .filter(|l| l.starts_with("| ") && l.contains('`'))
                .count(),
            47 // header separator excluded; 46 datasets + the header row with backticks
        );
        assert!(sources.contains("bgpkit.pfx2as"));
        assert!(rels.contains("ROUTE_ORIGIN_AUTHORIZATION"));
        assert!(nodes.contains("AuthoritativeNameServer"));
    }

    #[test]
    fn telemetry_page_documents_every_metric_and_a_real_plan() {
        let page = telemetry_md();
        for (name, kind, _, _) in iyp_telemetry::names::ALL {
            assert!(
                page.contains(&format!("| `{name}` | {kind} |")),
                "{name} missing"
            );
        }
        // The embedded plan is the planner's real output, rooted as usual.
        assert!(page.contains("ProduceResults"));
        assert!(page.contains("NodeByLabelScan") || page.contains("AllNodesScan"));
    }

    #[test]
    fn fault_tolerance_page_documents_model_and_defaults() {
        let page = fault_tolerance_md();
        for k in iyp_simnet::FaultKind::ALL {
            assert!(page.contains(&format!("`{}`", k.name())), "{k:?} missing");
        }
        // Defaults are rendered from the code, not hard-coded.
        let policy = iyp_crawlers::ImportPolicy::default();
        assert!(page.contains(&format!("{}% of its records", policy.error_budget_pct)));
        assert!(page.contains("iyp_server_query_timeout_total"));
        assert!(page.contains("timeout:"));
        assert!(page.contains("--chaos"));
    }

    #[test]
    fn query_cache_page_embeds_a_real_miss_then_hit() {
        let page = query_cache_md();
        // The walkthrough comes from actually profiling the same
        // statement twice against a live cache.
        assert!(page.contains("cache=miss"));
        assert!(page.contains("cache=hit"));
        // Wall times are elided so the page is reproducible.
        assert!(!page.contains("time=0."));
        for name in [
            iyp_telemetry::names::CYPHER_CACHE_HITS_TOTAL,
            iyp_telemetry::names::CYPHER_CACHE_MISSES_TOTAL,
            iyp_telemetry::names::CYPHER_CACHE_EVICTIONS_TOTAL,
            iyp_telemetry::names::CYPHER_CACHE_BYTES,
        ] {
            assert!(page.contains(&format!("`{name}`")), "{name} missing");
        }
        // Migration table covers every shimmed free function.
        for before in ["query(", "query_with_cancel(", "explain(", "profile("] {
            assert!(
                page.contains(before),
                "{before} missing from migration table"
            );
        }
        // And the read-path page points here.
        assert!(query_engine_md().contains("documentation/query-cache.md"));
    }

    #[test]
    fn durability_page_embeds_a_real_frame() {
        let page = durability_md();
        // The frame walkthrough comes from the real recorder + framing
        // code: a MERGE that creates plus a SET is two ops.
        assert!(page.contains("payload = 2 ops: merge_node, set_node_prop"));
        assert!(page.contains("crc32   = 0x"));
        assert!(page.contains("torn"));
        for policy in ["`always` (default)", "`every=N`", "`never`"] {
            assert!(page.contains(policy), "{policy} missing");
        }
    }
}
