//! Documentation-page rendering.
//!
//! The real IYP repository documents its ontology and data sources as
//! Markdown pages; this module renders the same pages from the code so
//! they can never drift (see `tests/docs_in_sync.rs` and
//! `examples/gen_docs.rs`).

use std::fmt::Write as _;

/// Renders `documentation/node_types.md` (Table 6 of the paper).
pub fn node_types_md() -> String {
    let mut s = String::from(
        "# Node types (entities)\n\n\
         The IYP ontology's entity types — Table 6 of the paper. Each node\n\
         is uniquely identified by its key property.\n\n\
         | Entity | Key property | Description |\n|---|---|---|\n",
    );
    for e in iyp_ontology::entity::ALL_ENTITIES {
        writeln!(s, "| `:{}` | `{}` | {} |", e.label(), e.key_property(), e.description())
            .expect("write to string");
    }
    s
}

/// Renders `documentation/relationship_types.md` (Table 7 of the paper).
pub fn relationship_types_md() -> String {
    let mut s = String::from(
        "# Relationship types\n\n\
         The IYP ontology's relationship types — Table 7 of the paper.\n\
         Every imported link carries the six provenance properties\n\
         (`reference_org`, `reference_name`, `reference_url_info`,\n\
         `reference_url_data`, `reference_time_modification`,\n\
         `reference_time_fetch`).\n\n\
         | Relationship | Description | Allowed node pairs |\n|---|---|---|\n",
    );
    for r in iyp_ontology::relationship::ALL_RELATIONSHIPS {
        let pairs: Vec<String> = iyp_ontology::allowed_triples(r)
            .map(|t| format!("{} → {}", t.src.label(), t.dst.label()))
            .collect();
        writeln!(s, "| `:{}` | {} | {} |", r.type_name(), r.description(), pairs.join("; "))
            .expect("write to string");
    }
    s
}

/// Renders `documentation/data-sources.md` (Table 8 of the paper).
pub fn data_sources_md() -> String {
    let mut s = String::from(
        "# Data sources\n\n\
         The 46 datasets integrated into IYP — Table 8 of the paper. In this\n\
         reproduction every dataset is emitted by the synthetic Internet\n\
         (`iyp-simnet`) in its native wire format and parsed by its own\n\
         crawler (`iyp-crawlers`).\n\n\
         | Organization | Dataset (`reference_name`) | Frequency | Info |\n|---|---|---|---|\n",
    );
    for d in iyp_simnet::datasets::ALL_DATASETS {
        writeln!(
            s,
            "| {} | `{}` | {} | <{}> |",
            d.organization(),
            d.name(),
            d.frequency(),
            d.info_url()
        )
        .expect("write to string");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_render_with_expected_row_counts() {
        let nodes = node_types_md();
        assert_eq!(nodes.lines().filter(|l| l.starts_with("| `:")).count(), 24);
        let rels = relationship_types_md();
        assert_eq!(rels.lines().filter(|l| l.starts_with("| `:")).count(), 24);
        let sources = data_sources_md();
        assert_eq!(
            sources.lines().filter(|l| l.starts_with("| ") && l.contains('`')).count(),
            47 // header separator excluded; 46 datasets + the header row with backticks
        );
        assert!(sources.contains("bgpkit.pfx2as"));
        assert!(rels.contains("ROUTE_ORIGIN_AUTHORIZATION"));
        assert!(nodes.contains("AuthoritativeNameServer"));
    }
}
