//! Documentation-page rendering.
//!
//! The real IYP repository documents its ontology and data sources as
//! Markdown pages; this module renders the same pages from the code so
//! they can never drift (see `tests/docs_in_sync.rs` and
//! `examples/gen_docs.rs`).

use std::fmt::Write as _;

/// Renders `documentation/node_types.md` (Table 6 of the paper).
pub fn node_types_md() -> String {
    let mut s = String::from(
        "# Node types (entities)\n\n\
         The IYP ontology's entity types — Table 6 of the paper. Each node\n\
         is uniquely identified by its key property.\n\n\
         | Entity | Key property | Description |\n|---|---|---|\n",
    );
    for e in iyp_ontology::entity::ALL_ENTITIES {
        writeln!(
            s,
            "| `:{}` | `{}` | {} |",
            e.label(),
            e.key_property(),
            e.description()
        )
        .expect("write to string");
    }
    s
}

/// Renders `documentation/relationship_types.md` (Table 7 of the paper).
pub fn relationship_types_md() -> String {
    let mut s = String::from(
        "# Relationship types\n\n\
         The IYP ontology's relationship types — Table 7 of the paper.\n\
         Every imported link carries the six provenance properties\n\
         (`reference_org`, `reference_name`, `reference_url_info`,\n\
         `reference_url_data`, `reference_time_modification`,\n\
         `reference_time_fetch`).\n\n\
         | Relationship | Description | Allowed node pairs |\n|---|---|---|\n",
    );
    for r in iyp_ontology::relationship::ALL_RELATIONSHIPS {
        let pairs: Vec<String> = iyp_ontology::allowed_triples(r)
            .map(|t| format!("{} → {}", t.src.label(), t.dst.label()))
            .collect();
        writeln!(
            s,
            "| `:{}` | {} | {} |",
            r.type_name(),
            r.description(),
            pairs.join("; ")
        )
        .expect("write to string");
    }
    s
}

/// Renders `documentation/data-sources.md` (Table 8 of the paper).
pub fn data_sources_md() -> String {
    let mut s = String::from(
        "# Data sources\n\n\
         The 46 datasets integrated into IYP — Table 8 of the paper. In this\n\
         reproduction every dataset is emitted by the synthetic Internet\n\
         (`iyp-simnet`) in its native wire format and parsed by its own\n\
         crawler (`iyp-crawlers`).\n\n\
         | Organization | Dataset (`reference_name`) | Frequency | Info |\n|---|---|---|---|\n",
    );
    for d in iyp_simnet::datasets::ALL_DATASETS {
        writeln!(
            s,
            "| {} | `{}` | {} | <{}> |",
            d.organization(),
            d.name(),
            d.frequency(),
            d.info_url()
        )
        .expect("write to string");
    }
    s
}

/// Renders `documentation/telemetry.md` — the observability guide.
///
/// The metric table is rendered from [`iyp_telemetry::names::ALL`] (the
/// constants every instrumented crate uses), and the EXPLAIN example is
/// produced by actually planning Listing 1 of the paper against a
/// two-node graph, so the page cannot drift from the implementation.
pub fn telemetry_md() -> String {
    let mut s = String::from(
        "# Telemetry: metrics, EXPLAIN/PROFILE, and server stats\n\n\
         The `iyp-telemetry` crate provides a zero-dependency metrics\n\
         registry (atomic counters, gauges, and log-bucketed latency\n\
         histograms) that the whole stack reports into. Recording is\n\
         disabled by default and every instrument is a no-op until\n\
         `iyp_telemetry::enable()` is called, so instrumented code paths\n\
         pay nothing in normal operation.\n\n\
         ## Query plans: `EXPLAIN` and `PROFILE`\n\n\
         Prefix any read query with `EXPLAIN` to see its plan without\n\
         running it, or with `PROFILE` to run it and annotate every\n\
         operator with the rows it produced and the wall time it took.\n\
         Both work in the CLI shell, through `iyp query`, and over the\n\
         server protocol; the plan comes back as a single-column\n\
         (`plan`) result set, one row per line. Write queries (`CREATE`,\n\
         `MERGE`, `SET`, `DELETE`) reject both keywords.\n\n\
         For Listing 1 of the paper the planner produces:\n\n\
         ```text\n",
    );
    let mut g = iyp_graph::Graph::new();
    let a = g.merge_node("AS", "asn", 2497u32, iyp_graph::Props::new());
    let p = g.merge_node("Prefix", "prefix", "192.0.2.0/24", iyp_graph::Props::new());
    g.create_rel(a, "ORIGINATE", p, iyp_graph::Props::new())
        .expect("sample rel");
    let listing1 = "MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN DISTINCT x.asn";
    writeln!(s, "EXPLAIN {listing1}\n").expect("write to string");
    let plan = iyp_cypher::explain(&g, listing1).expect("listing 1 plans");
    s.push_str(&plan.render());
    s.push_str(
        "\n```\n\n\
         Operators: `ProduceResults` (projection handed to the caller),\n\
         `Projection`/`Filter`/`Unwind` (one per `WITH`/`WHERE`/`UNWIND`\n\
         clause), `Match`/`OptionalMatch` (pattern expansion, with its\n\
         access path as children), `Expand` (relationship traversal),\n\
         and the anchor choices `BoundVariable`, `NodeIndexSeek`,\n\
         `NodeByLabelScan`, and `AllNodesScan`. `PROFILE` appends\n\
         `[rows=N time=X.XXXms]` to each operator.\n\n\
         ## Metric names\n\n\
         All instrumentation uses the canonical names in\n\
         `iyp_telemetry::names` (durations in seconds, Prometheus\n\
         convention):\n\n\
         | Metric | Kind | Labels | Description |\n|---|---|---|---|\n",
    );
    for (name, kind, labels, help) in iyp_telemetry::names::ALL {
        let labels = if labels.is_empty() {
            String::new()
        } else {
            format!("`{labels}`")
        };
        writeln!(s, "| `{name}` | {kind} | {labels} | {help} |").expect("write to string");
    }
    s.push_str(
        "\n`iyp build --metrics` enables the recorder for the build, then\n\
         prints per-dataset and per-refinement-pass wall times followed\n\
         by the Prometheus text exposition (`iyp_telemetry::render()`).\n\n\
         ## Server commands: `ping` and `stats`\n\n\
         Besides query requests, the line-delimited JSON protocol accepts\n\
         two commands:\n\n\
         - `{\"cmd\": \"ping\"}` → `{\"status\": \"pong\"}` — liveness; the\n\
         \x20\x20client performs this handshake on connect.\n\
         - `{\"cmd\": \"stats\"}` → `{\"status\": \"stats\", \"stats\": {...}}` —\n\
         \x20\x20a `graph` object (node/relationship totals plus per-label and\n\
         \x20\x20per-type counts) and a `telemetry` object (the current\n\
         \x20\x20metrics snapshot; empty until recording is enabled).\n\n\
         Malformed input never kills the connection silently: empty\n\
         lines, oversized lines (> 1 MiB, which also closes the\n\
         connection), bad JSON, and unknown commands each produce an\n\
         error response whose message starts with a stable code\n\
         (`empty_request`, `request_too_large`, `bad_json`,\n\
         `missing_query`, `unknown_command`). Queries slower than 250 ms\n\
         are counted and logged server-side.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_render_with_expected_row_counts() {
        let nodes = node_types_md();
        assert_eq!(nodes.lines().filter(|l| l.starts_with("| `:")).count(), 24);
        let rels = relationship_types_md();
        assert_eq!(rels.lines().filter(|l| l.starts_with("| `:")).count(), 24);
        let sources = data_sources_md();
        assert_eq!(
            sources
                .lines()
                .filter(|l| l.starts_with("| ") && l.contains('`'))
                .count(),
            47 // header separator excluded; 46 datasets + the header row with backticks
        );
        assert!(sources.contains("bgpkit.pfx2as"));
        assert!(rels.contains("ROUTE_ORIGIN_AUTHORIZATION"));
        assert!(nodes.contains("AuthoritativeNameServer"));
    }

    #[test]
    fn telemetry_page_documents_every_metric_and_a_real_plan() {
        let page = telemetry_md();
        for (name, kind, _, _) in iyp_telemetry::names::ALL {
            assert!(
                page.contains(&format!("| `{name}` | {kind} |")),
                "{name} missing"
            );
        }
        // The embedded plan is the planner's real output, rooted as usual.
        assert!(page.contains("ProduceResults"));
        assert!(page.contains("NodeByLabelScan") || page.contains("AllNodesScan"));
    }
}
