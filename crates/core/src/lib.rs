//! Internet Yellow Pages — the core, user-facing API.
//!
//! This crate ties the IYP stack together behind one type, [`Iyp`]:
//! build a knowledge graph from the (synthetic) Internet, query it in
//! Cypher, run the paper's studies, and save/load snapshots.
//!
//! ```
//! use iyp_core::{Iyp, SimConfig};
//!
//! // Build a small knowledge graph (all 46 datasets + refinement).
//! let iyp = Iyp::build(&SimConfig::tiny(), 42).unwrap();
//!
//! // Listing 1 of the paper: all ASes originating prefixes.
//! let rs = iyp.query("MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN count(DISTINCT x.asn)").unwrap();
//! assert!(rs.single_int().unwrap() > 0);
//! ```

pub mod docs;
pub mod notebook;

pub use iyp_crawlers as crawlers;
pub use iyp_cypher as cypher;
pub use iyp_graph as graph;
pub use iyp_journal as journal;
pub use iyp_netdata as netdata;
pub use iyp_ontology as ontology;
pub use iyp_pipeline as pipeline;
pub use iyp_simnet as simnet;
pub use iyp_studies as studies;

pub use iyp_cypher::{CypherError, Params, ResultSet, RtVal};
pub use iyp_graph::{Graph, GraphError, GraphStats, Props, Value};
pub use iyp_pipeline::{BuildOptions, BuildReport};
pub use iyp_simnet::{DatasetId, SimConfig, World};

use std::path::Path;

/// A built Internet Yellow Pages instance: the knowledge graph plus the
/// build report, with convenience accessors.
#[derive(Debug)]
pub struct Iyp {
    graph: Graph,
    report: BuildReport,
}

impl Iyp {
    /// Generates a synthetic Internet and builds the full knowledge
    /// graph from all 46 datasets, including the refinement passes.
    pub fn build(config: &SimConfig, seed: u64) -> Result<Iyp, crawlers::CrawlError> {
        let world = World::generate(config, seed);
        Self::build_from_world(&world, &BuildOptions::default())
    }

    /// Builds from an existing world with custom options.
    pub fn build_from_world(
        world: &World,
        options: &BuildOptions,
    ) -> Result<Iyp, crawlers::CrawlError> {
        let (graph, report) = iyp_pipeline::build_graph(world, options)?;
        Ok(Iyp { graph, report })
    }

    /// Wraps an existing graph (e.g. loaded from a snapshot).
    pub fn from_graph(graph: Graph) -> Iyp {
        let stats = GraphStats::compute(&graph);
        Iyp {
            report: BuildReport::empty(stats),
            graph,
        }
    }

    /// The knowledge graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access (local-instance workflows: add your own data).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The build report.
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// Consumes the instance, returning the owned graph (e.g. to share
    /// it behind an `Arc` with a query server).
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Consumes the instance, seeding a journal directory with the
    /// graph (generation-1 snapshot + empty WAL) and returning the
    /// durable handle — the journaled-build workflow: subsequent writes
    /// go through the WAL and survive crashes.
    pub fn into_durable(
        self,
        dir: &Path,
        policy: journal::FsyncPolicy,
    ) -> Result<journal::DurableGraph, journal::JournalError> {
        journal::DurableGraph::seed(dir, self.graph, policy)
    }

    /// Runs a Cypher query without parameters.
    pub fn query(&self, text: &str) -> Result<ResultSet, CypherError> {
        iyp_cypher::query(&self.graph, text, &Params::new())
    }

    /// Runs a Cypher query with parameters.
    pub fn query_with(&self, text: &str, params: &Params) -> Result<ResultSet, CypherError> {
        iyp_cypher::query(&self.graph, text, params)
    }

    /// Builds the execution plan for a query without running it
    /// (`EXPLAIN`).
    pub fn explain(&self, text: &str) -> Result<cypher::PlanNode, CypherError> {
        iyp_cypher::explain(&self.graph, text)
    }

    /// Runs a query and returns its result together with the plan
    /// annotated with per-operator rows and wall time (`PROFILE`).
    pub fn profile(&self, text: &str) -> Result<(ResultSet, cypher::PlanNode), CypherError> {
        iyp_cypher::profile(&self.graph, text, &Params::new())
    }

    /// Runs a (possibly writing) Cypher query — `CREATE`, `MERGE`,
    /// `SET`, `DELETE` — against the local instance (§6.1 workflow).
    pub fn update(
        &mut self,
        text: &str,
    ) -> Result<(ResultSet, iyp_cypher::WriteSummary), CypherError> {
        iyp_cypher::query_write(&mut self.graph, text, &Params::new())
    }

    /// Saves a binary snapshot (the weekly-dump workflow of §3.1).
    pub fn save_snapshot(&self, path: &Path) -> Result<(), GraphError> {
        graph::snapshot::save_binary(&self.graph, path)
    }

    /// Loads a binary snapshot.
    pub fn load_snapshot(path: &Path) -> Result<Iyp, GraphError> {
        Ok(Self::from_graph(graph::snapshot::load_binary(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_query_snapshot_roundtrip() {
        let iyp = Iyp::build(&SimConfig::tiny(), 1).unwrap();
        assert_eq!(iyp.report().violations, 0);
        let n = iyp
            .query("MATCH (p:Prefix) RETURN count(p)")
            .unwrap()
            .single_int()
            .unwrap();
        assert!(n > 0);

        let path = std::env::temp_dir().join("iyp_core_test.snapshot");
        iyp.save_snapshot(&path).unwrap();
        let restored = Iyp::load_snapshot(&path).unwrap();
        let m = restored
            .query("MATCH (p:Prefix) RETURN count(p)")
            .unwrap()
            .single_int()
            .unwrap();
        assert_eq!(n, m);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn local_instance_can_extend_graph() {
        // §6.1: a local instance can tag studied resources to simplify
        // subsequent queries.
        let mut iyp = Iyp::build(&SimConfig::tiny(), 1).unwrap();
        let g = iyp.graph_mut();
        let tag = g.merge_node("Tag", "label", "My Study", Props::new());
        let some_as = g.nodes_with_label("AS").next().unwrap();
        g.create_rel(some_as, "CATEGORIZED", tag, Props::new())
            .unwrap();
        let rs = iyp
            .query("MATCH (a:AS)-[:CATEGORIZED]-(:Tag {label:'My Study'}) RETURN count(a)")
            .unwrap();
        assert_eq!(rs.single_int(), Some(1));
    }
}
