//! Shareable query notebooks (§6.2 of the paper).
//!
//! The paper distributes its reproductions as Jupyter notebooks whose
//! cells are IYP queries; re-running a notebook against a newer
//! snapshot refreshes the study. This module implements the same idea
//! as plain text: a `.cypher` notebook is a sequence of cells —
//! `//` commentary followed by one query — separated by `====` lines.
//! [`run_notebook`] executes every cell and renders a Markdown report.

use crate::Iyp;

/// One notebook cell: commentary plus a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The leading `//` commentary, stripped of markers.
    pub comment: String,
    /// The Cypher query text.
    pub query: String,
}

/// A parsed notebook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notebook {
    /// Title (from a leading `// #` line, if present).
    pub title: String,
    /// The cells, in order.
    pub cells: Vec<Cell>,
}

/// Parses notebook text into cells.
pub fn parse_notebook(text: &str) -> Notebook {
    let mut title = String::new();
    let mut cells = Vec::new();
    for (i, block) in text.split("\n====").enumerate() {
        let mut comment_lines: Vec<&str> = Vec::new();
        let mut query_lines: Vec<&str> = Vec::new();
        for line in block.lines() {
            let trimmed = line.trim();
            if let Some(c) = trimmed.strip_prefix("//") {
                let c = c.trim();
                if i == 0 && title.is_empty() {
                    if let Some(t) = c.strip_prefix('#') {
                        title = t.trim().to_string();
                        continue;
                    }
                }
                if query_lines.is_empty() {
                    comment_lines.push(c);
                } // trailing comments after the query are ignored
            } else if !trimmed.is_empty() {
                query_lines.push(line);
            }
        }
        if !query_lines.is_empty() {
            cells.push(Cell {
                comment: comment_lines.join(" ").trim().to_string(),
                query: query_lines.join("\n"),
            });
        }
    }
    Notebook { title, cells }
}

/// Executes a notebook against an IYP instance, returning a Markdown
/// report (cell commentary, the query, and its result table).
pub fn run_notebook(iyp: &Iyp, notebook: &Notebook) -> Result<String, crate::CypherError> {
    let mut out = String::new();
    if !notebook.title.is_empty() {
        out.push_str(&format!("# {}\n\n", notebook.title));
    }
    for (i, cell) in notebook.cells.iter().enumerate() {
        out.push_str(&format!("## Cell {}\n\n", i + 1));
        if !cell.comment.is_empty() {
            out.push_str(&format!("{}\n\n", cell.comment));
        }
        out.push_str("```cypher\n");
        out.push_str(&cell.query);
        out.push_str("\n```\n\n");
        let rs = iyp.query(&cell.query)?;
        out.push_str("```text\n");
        out.push_str(&rs.render(iyp.graph()));
        out.push_str("```\n\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cells_and_title() {
        let nb = parse_notebook(
            "// # My study\n// First question.\nMATCH (n) RETURN count(n)\n====\n\
             // Second question,\n// continued.\nMATCH (m:AS)\nRETURN m.asn\n",
        );
        assert_eq!(nb.title, "My study");
        assert_eq!(nb.cells.len(), 2);
        assert_eq!(nb.cells[0].comment, "First question.");
        assert_eq!(nb.cells[1].comment, "Second question, continued.");
        assert!(nb.cells[1].query.contains("RETURN m.asn"));
    }

    #[test]
    fn empty_blocks_are_skipped() {
        let nb = parse_notebook("// only comments here\n====\nMATCH (n) RETURN n\n====\n\n");
        assert_eq!(nb.cells.len(), 1);
    }

    #[test]
    fn runs_against_an_instance() {
        let iyp = crate::Iyp::build(&crate::SimConfig::tiny(), 7).unwrap();
        let nb = parse_notebook("// # T\n// Count ASes.\nMATCH (a:AS) RETURN count(a) AS n\n");
        let report = run_notebook(&iyp, &nb).unwrap();
        assert!(report.contains("# T"));
        assert!(report.contains("Count ASes."));
        assert!(report.contains("```cypher"));
        assert!(report.contains("n\n"));
    }
}
