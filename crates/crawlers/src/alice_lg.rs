//! Alice-LG route-server looking-glass crawler (all seven IXPs).

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

/// One looking-glass snapshot: `{ixp, neighbours: [{asn, description,
/// state}]}` → `AS -MEMBER_OF→ IXP` for every neighbour in state `up`.
pub fn import(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| CrawlError::parse("alice-lg", e.to_string()))?;
    let ixp_name = v["ixp"]
        .as_str()
        .ok_or_else(|| CrawlError::parse("alice-lg", "missing ixp"))?;
    let ix = imp.ixp_node(ixp_name);
    for n in v["neighbours"]
        .as_array()
        .ok_or_else(|| CrawlError::parse("alice-lg", "missing neighbours"))?
    {
        let asn = n["asn"]
            .as_u64()
            .ok_or_else(|| CrawlError::parse("alice-lg", "neighbour asn"))?
            as u32;
        if n["state"].as_str() != Some("up") {
            continue;
        }
        let a = imp.as_node(asn);
        let mut extra = props([]);
        if let Some(d) = n["description"].as_str() {
            extra.insert("description".into(), Value::Str(d.into()));
        }
        imp.link(a, Relationship::MemberOf, ix, extra)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn members_join_named_ixps() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::AliceLgAmsIx);
        let mut imp = Importer::new(&mut g, Reference::new("Alice-LG", "alice_lg.ams_ix", 0));
        import(&mut imp, &text).unwrap();
        let links = imp.link_count();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("IXP"), 1);
        assert_eq!(links, w.ixps[0].members.len());
    }

    #[test]
    fn rejects_malformed() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("Alice-LG", "x", 0));
        assert!(import(&mut imp, "{}").is_err());
        assert!(import(&mut imp, "{\"ixp\":\"X\",\"neighbours\":[{}]}").is_err());
    }
}
