//! APNIC AS population estimate crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

/// JSON array of `{asn, cc, users, percent}` → `AS -POPULATION→
/// Country` with the estimated share.
pub fn import_population(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| CrawlError::parse("apnic", e.to_string()))?;
    let entries = v
        .as_array()
        .ok_or_else(|| CrawlError::parse("apnic", "expected array"))?;
    for e in entries {
        let asn = e["asn"]
            .as_u64()
            .ok_or_else(|| CrawlError::parse("apnic", "missing asn"))? as u32;
        let cc = e["cc"]
            .as_str()
            .ok_or_else(|| CrawlError::parse("apnic", "missing cc"))?;
        let a = imp.as_node(asn);
        let c = imp.country_node(cc)?;
        imp.link(
            a,
            Relationship::Population,
            c,
            props([
                (
                    "percent",
                    Value::Float(e["percent"].as_f64().unwrap_or(0.0)),
                ),
                ("users", e["users"].as_i64().into()),
            ]),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn population_links() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::ApnicPopulation);
        let mut imp = Importer::new(&mut g, Reference::new("APNIC", "apnic.aspop", 0));
        import_population(&mut imp, &text).unwrap();
        let links = imp.link_count();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(links, w.as_population.len());
    }
}
