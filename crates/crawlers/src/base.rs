//! The importer framework shared by all crawlers.

use crate::error::CrawlError;
use iyp_graph::{Graph, NodeId, Props, RelId, Value};
use iyp_netdata::{canon, country};
use iyp_ontology::{Entity, Reference, Relationship};

/// Canonical name of the Tranco ranking node.
pub const RANKING_TRANCO: &str = "Tranco top 1M";
/// Canonical name of the Cisco Umbrella ranking node.
pub const RANKING_UMBRELLA: &str = "Cisco Umbrella Top 1M";
/// Canonical name of the Cloudflare top-100 ranking node.
pub const RANKING_CLOUDFLARE_TOP100: &str = "Cloudflare top 100 domains";

/// Record-level quarantine policy: how many malformed records a
/// dataset may contain before the whole import fails.
///
/// Real community feeds routinely carry a handful of broken rows; the
/// production IYP imports them "as-is" and skips what it cannot parse.
/// The policy makes that tolerance explicit and bounded: a malformed
/// record is quarantined (skipped and counted) until more than
/// `error_budget_pct` percent of the records seen so far are bad —
/// with `min_quarantined` bad records always tolerated first, so a
/// single typo cannot fail a ten-row file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImportPolicy {
    /// Percentage (0–100) of records allowed to be malformed.
    pub error_budget_pct: u8,
    /// Malformed records always tolerated before the percentage
    /// threshold applies.
    pub min_quarantined: usize,
}

impl Default for ImportPolicy {
    fn default() -> Self {
        ImportPolicy {
            error_budget_pct: 10,
            min_quarantined: 8,
        }
    }
}

impl ImportPolicy {
    /// The pre-quarantine behaviour: any malformed record fails the
    /// whole dataset.
    pub fn strict() -> Self {
        ImportPolicy {
            error_budget_pct: 0,
            min_quarantined: 0,
        }
    }
}

/// Quarantine accounting for one import session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineStats {
    /// Records the importer attempted (malformed ones included).
    pub records: usize,
    /// Malformed records skipped under the error budget.
    pub quarantined: usize,
    /// Rendered errors for the first few quarantined records.
    pub samples: Vec<String>,
}

/// How many quarantined-record errors are kept as samples.
const QUARANTINE_SAMPLES: usize = 3;

/// A graph-writing session for one dataset import.
///
/// Wraps the graph with the dataset's [`Reference`] so that every link
/// created through it carries the provenance properties, and provides
/// canonicalising node constructors for the ontology entities.
pub struct Importer<'g> {
    graph: &'g mut Graph,
    reference: Reference,
    links: usize,
    policy: ImportPolicy,
    quarantine: QuarantineStats,
}

impl<'g> Importer<'g> {
    /// Starts an import session with the default quarantine policy.
    pub fn new(graph: &'g mut Graph, reference: Reference) -> Self {
        Importer::with_policy(graph, reference, ImportPolicy::default())
    }

    /// Starts an import session with an explicit quarantine policy.
    pub fn with_policy(graph: &'g mut Graph, reference: Reference, policy: ImportPolicy) -> Self {
        Importer {
            graph,
            reference,
            links: 0,
            policy,
            quarantine: QuarantineStats::default(),
        }
    }

    /// Number of links created so far.
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Quarantine accounting for this session so far.
    pub fn quarantine(&self) -> &QuarantineStats {
        &self.quarantine
    }

    /// Direct read access to the underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    // ------------------------------------------------------------------
    // Canonicalising node constructors
    // ------------------------------------------------------------------

    /// AS node by ASN.
    pub fn as_node(&mut self, asn: u32) -> NodeId {
        self.graph
            .merge_node(Entity::As.label(), "asn", asn as i64, Props::new())
    }

    /// AS node from a textual ASN (accepts `AS2497`, `2497`, asdot).
    pub fn as_node_str(&mut self, s: &str) -> Result<NodeId, CrawlError> {
        let asn: iyp_netdata::Asn = s
            .parse()
            .map_err(|e| CrawlError::parse("asn", format!("{e}")))?;
        Ok(self.as_node(asn.value()))
    }

    /// Prefix node from any textual form; canonicalises.
    pub fn prefix_node(&mut self, s: &str) -> Result<NodeId, CrawlError> {
        let canonical =
            canon::prefix(s).map_err(|e| CrawlError::parse("prefix", format!("{e}")))?;
        Ok(self
            .graph
            .merge_node(Entity::Prefix.label(), "prefix", canonical, Props::new()))
    }

    /// IP node from any textual form; canonicalises.
    pub fn ip_node(&mut self, s: &str) -> Result<NodeId, CrawlError> {
        let canonical = canon::ip(s).map_err(|e| CrawlError::parse("ip", format!("{e}")))?;
        Ok(self
            .graph
            .merge_node(Entity::Ip.label(), "ip", canonical, Props::new()))
    }

    /// Country node; ensures alpha-2/alpha-3/name properties (§2.3).
    pub fn country_node(&mut self, code: &str) -> Result<NodeId, CrawlError> {
        let alpha2 =
            canon::country_code(code).map_err(|e| CrawlError::parse("country", format!("{e}")))?;
        let info = country::by_alpha2(&alpha2).expect("canonical code resolves");
        let mut props = Props::new();
        props.insert("alpha3".into(), Value::Str(info.alpha3.into()));
        props.insert("name".into(), Value::Str(info.name.into()));
        Ok(self
            .graph
            .merge_node(Entity::Country.label(), "country_code", alpha2, props))
    }

    /// HostName node (lower-cased, trailing dot stripped).
    pub fn hostname_node(&mut self, name: &str) -> NodeId {
        let canonical = canon::hostname(name);
        self.graph
            .merge_node(Entity::HostName.label(), "name", canonical, Props::new())
    }

    /// DomainName node (lower-cased, trailing dot stripped).
    pub fn domain_node(&mut self, name: &str) -> NodeId {
        let canonical = canon::hostname(name);
        self.graph
            .merge_node(Entity::DomainName.label(), "name", canonical, Props::new())
    }

    /// Authoritative nameserver: a HostName node that also carries the
    /// AuthoritativeNameServer label (matching IYP's modelling).
    pub fn nameserver_node(&mut self, name: &str) -> NodeId {
        let id = self.hostname_node(name);
        self.graph
            .add_label(id, Entity::AuthoritativeNameServer.label())
            .expect("node exists");
        id
    }

    /// Tag node by label.
    pub fn tag_node(&mut self, label: &str) -> NodeId {
        self.graph
            .merge_node(Entity::Tag.label(), "label", label, Props::new())
    }

    /// Name node.
    pub fn name_node(&mut self, name: &str) -> NodeId {
        self.graph
            .merge_node(Entity::Name.label(), "name", name, Props::new())
    }

    /// Organization node.
    pub fn org_node(&mut self, name: &str) -> NodeId {
        self.graph
            .merge_node(Entity::Organization.label(), "name", name, Props::new())
    }

    /// IXP node by name.
    pub fn ixp_node(&mut self, name: &str) -> NodeId {
        self.graph
            .merge_node(Entity::Ixp.label(), "name", name, Props::new())
    }

    /// Facility node by name.
    pub fn facility_node(&mut self, name: &str) -> NodeId {
        self.graph
            .merge_node(Entity::Facility.label(), "name", name, Props::new())
    }

    /// Ranking node by name.
    pub fn ranking_node(&mut self, name: &str) -> NodeId {
        self.graph
            .merge_node(Entity::Ranking.label(), "name", name, Props::new())
    }

    /// URL node.
    pub fn url_node(&mut self, url: &str) -> NodeId {
        self.graph
            .merge_node(Entity::Url.label(), "url", url.trim(), Props::new())
    }

    /// OpaqueID node (RIR delegated files).
    pub fn opaque_id_node(&mut self, id: &str) -> NodeId {
        self.graph
            .merge_node(Entity::OpaqueId.label(), "id", id, Props::new())
    }

    /// BGP collector node.
    pub fn collector_node(&mut self, name: &str) -> NodeId {
        self.graph
            .merge_node(Entity::BgpCollector.label(), "name", name, Props::new())
    }

    /// Estimate node.
    pub fn estimate_node(&mut self, name: &str) -> NodeId {
        self.graph
            .merge_node(Entity::Estimate.label(), "name", name, Props::new())
    }

    /// Atlas probe node.
    pub fn probe_node(&mut self, id: i64) -> NodeId {
        self.graph
            .merge_node(Entity::AtlasProbe.label(), "id", id, Props::new())
    }

    /// Atlas measurement node.
    pub fn measurement_node(&mut self, id: i64) -> NodeId {
        self.graph
            .merge_node(Entity::AtlasMeasurement.label(), "id", id, Props::new())
    }

    /// PeeringDB-style external-id node (entity picks the label).
    pub fn external_id_node(&mut self, entity: Entity, id: i64) -> NodeId {
        self.graph
            .merge_node(entity.label(), "id", id, Props::new())
    }

    // ------------------------------------------------------------------
    // Links
    // ------------------------------------------------------------------

    /// Creates a provenance-stamped relationship.
    pub fn link(
        &mut self,
        src: NodeId,
        rel: Relationship,
        dst: NodeId,
        extra: Props,
    ) -> Result<RelId, CrawlError> {
        let props = self.reference.to_props(extra);
        let id = self.graph.create_rel(src, rel.type_name(), dst, props)?;
        self.links += 1;
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Record quarantine
    // ------------------------------------------------------------------

    /// Imports one record through `f`, quarantining parse failures.
    ///
    /// `line` and `raw` locate the record for error reports. On a
    /// parse failure the record is counted and skipped (`Ok(None)`)
    /// until the [`ImportPolicy`] error budget is exhausted, at which
    /// point the whole dataset fails with a budget-exhausted error
    /// carrying the last offending record. Graph errors are never
    /// quarantined — they indicate importer bugs, not bad data.
    pub fn record<T>(
        &mut self,
        line: usize,
        raw: &str,
        f: impl FnOnce(&mut Self) -> Result<T, CrawlError>,
    ) -> Result<Option<T>, CrawlError> {
        self.quarantine.records += 1;
        match f(self) {
            Ok(v) => Ok(Some(v)),
            Err(e @ CrawlError::Graph(_)) => Err(e),
            Err(e) => {
                let e = e.at(line, raw);
                self.quarantine.quarantined += 1;
                if self.quarantine.samples.len() < QUARANTINE_SAMPLES {
                    self.quarantine.samples.push(e.to_string());
                }
                if self.over_budget() {
                    Err(self.budget_exhausted(e))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// True once quarantined records exceed both the absolute floor
    /// and the percentage budget.
    fn over_budget(&self) -> bool {
        let q = self.quarantine.quarantined;
        q > self.policy.min_quarantined
            && q * 100 > self.quarantine.records * self.policy.error_budget_pct as usize
    }

    /// Wraps the last offending record's error in a budget report.
    /// The inner error keeps its own line/excerpt, so the wrapper
    /// carries only the line to avoid printing the excerpt twice.
    fn budget_exhausted(&self, last: CrawlError) -> CrawlError {
        let (dataset, line) = match &last {
            CrawlError::Parse { dataset, line, .. } => (*dataset, *line),
            CrawlError::Graph(_) => unreachable!("graph errors are never quarantined"),
        };
        CrawlError::Parse {
            dataset,
            msg: format!(
                "error budget exhausted: {} of {} records malformed (budget {}%, floor {}); last: {last}",
                self.quarantine.quarantined,
                self.quarantine.records,
                self.policy.error_budget_pct,
                self.policy.min_quarantined,
            ),
            line,
            excerpt: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::props;
    use iyp_ontology::reference::KEY_NAME;

    fn importer(graph: &mut Graph) -> Importer<'_> {
        Importer::new(graph, Reference::new("TestOrg", "test.ds", 1_714_521_600))
    }

    #[test]
    fn canonicalisation_merges_spellings() {
        let mut g = Graph::new();
        let mut imp = importer(&mut g);
        let a = imp.prefix_node("2001:DB8::/32").unwrap();
        let b = imp.prefix_node("2001:0db8::/32").unwrap();
        assert_eq!(a, b);
        let c = imp.ip_node("2001:DB8::0001").unwrap();
        let d = imp.ip_node("2001:db8::1").unwrap();
        assert_eq!(c, d);
        let e = imp.hostname_node("WWW.Example.COM.");
        let f = imp.hostname_node("www.example.com");
        assert_eq!(e, f);
        let x = imp.as_node_str("AS2497").unwrap();
        let y = imp.as_node(2497);
        assert_eq!(x, y);
    }

    #[test]
    fn country_nodes_carry_all_codes() {
        let mut g = Graph::new();
        let mut imp = importer(&mut g);
        let jp = imp.country_node("jp").unwrap();
        let node = g.node(jp).unwrap();
        assert_eq!(node.prop("country_code").unwrap().as_str(), Some("JP"));
        assert_eq!(node.prop("alpha3").unwrap().as_str(), Some("JPN"));
        assert_eq!(node.prop("name").unwrap().as_str(), Some("Japan"));
    }

    #[test]
    fn links_carry_reference_props() {
        let mut g = Graph::new();
        let mut imp = importer(&mut g);
        let a = imp.as_node(2497);
        let p = imp.prefix_node("10.0.0.0/8").unwrap();
        let r = imp
            .link(
                a,
                Relationship::Originate,
                p,
                props([("count", Value::Int(3))]),
            )
            .unwrap();
        assert_eq!(imp.link_count(), 1);
        let rel = g.rel(r).unwrap();
        assert_eq!(rel.prop(KEY_NAME).unwrap().as_str(), Some("test.ds"));
        assert_eq!(rel.prop("count").unwrap().as_int(), Some(3));
    }

    #[test]
    fn nameserver_nodes_are_dual_labelled() {
        let mut g = Graph::new();
        let mut imp = importer(&mut g);
        let ns = imp.nameserver_node("NS1.Example.net.");
        let node = g.node(ns).unwrap();
        assert_eq!(node.labels.len(), 2);
        assert_eq!(node.prop("name").unwrap().as_str(), Some("ns1.example.net"));
        // Merging as plain hostname later hits the same node.
        let mut imp = importer(&mut g);
        assert_eq!(imp.hostname_node("ns1.example.net"), ns);
    }

    #[test]
    fn bad_input_is_rejected() {
        let mut g = Graph::new();
        let mut imp = importer(&mut g);
        assert!(imp.prefix_node("not-a-prefix").is_err());
        assert!(imp.ip_node("999.1.1.1").is_err());
        assert!(imp.country_node("XQ").is_err());
        assert!(imp.as_node_str("ASXYZ").is_err());
    }

    #[test]
    fn record_quarantines_within_budget() {
        let mut g = Graph::new();
        let mut imp = importer(&mut g);
        for ln in 0..100 {
            let ok = ln % 20 != 0; // 5% bad: within the 10% budget
            let r = imp.record(ln, "raw-input", |imp| {
                if ok {
                    imp.prefix_node("10.0.0.0/8").map(|_| ())
                } else {
                    Err(CrawlError::parse("test.ds", "bad row"))
                }
            });
            assert_eq!(r.unwrap().is_some(), ok);
        }
        let q = imp.quarantine();
        assert_eq!(q.records, 100);
        assert_eq!(q.quarantined, 5);
        assert_eq!(q.samples.len(), 3);
        assert!(q.samples[0].contains("line 0"));
        assert!(q.samples[0].contains("raw-input"));
    }

    #[test]
    fn record_fails_dataset_past_budget() {
        let mut g = Graph::new();
        let mut imp = importer(&mut g);
        // Every record is malformed: the floor (8) tolerates the
        // first eight, the ninth exhausts the budget.
        let mut result = Ok(None);
        let mut failures = 0;
        for ln in 0..20 {
            result = imp.record(ln, "junk", |_| {
                Err::<(), _>(CrawlError::parse("test.ds", "bad row"))
            });
            if result.is_err() {
                failures = ln + 1;
                break;
            }
        }
        assert_eq!(failures, 9);
        let err = result.unwrap_err().to_string();
        assert!(err.contains("error budget exhausted"), "{err}");
        assert!(err.contains("9 of 9"), "{err}");
    }

    #[test]
    fn strict_policy_fails_on_first_bad_record() {
        let mut g = Graph::new();
        let mut imp = Importer::with_policy(
            &mut g,
            Reference::new("TestOrg", "test.ds", 0),
            ImportPolicy::strict(),
        );
        let r = imp.record(0, "junk", |_| {
            Err::<(), _>(CrawlError::parse("test.ds", "bad row"))
        });
        assert!(r.is_err());
    }

    #[test]
    fn graph_errors_are_never_quarantined() {
        let mut g = Graph::new();
        let mut imp = importer(&mut g);
        let r = imp.record(0, "raw", |_| {
            Err::<(), _>(CrawlError::Graph("node missing".into()))
        });
        assert_eq!(r, Err(CrawlError::Graph("node missing".into())));
        assert_eq!(imp.quarantine().quarantined, 0);
    }
}
