//! BGPKIT crawlers: `pfx2as`, `as2rel`, `peer-stats`.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

const DS: &str = "bgpkit";

fn json(text: &str) -> Result<serde_json::Value, CrawlError> {
    serde_json::from_str(text).map_err(|e| CrawlError::parse(DS, e.to_string()))
}

/// `pfx2as`: JSON array of `{prefix, asn, count}` → `AS -ORIGINATE→
/// Prefix` links with the observation count.
pub fn import_pfx2as(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v = json(text)?;
    let entries = v
        .as_array()
        .ok_or_else(|| CrawlError::parse(DS, "pfx2as: expected array"))?;
    for (idx, e) in entries.iter().enumerate() {
        imp.record(idx, &e.to_string(), |imp| {
            let prefix = e["prefix"]
                .as_str()
                .ok_or_else(|| CrawlError::parse(DS, "pfx2as: missing prefix"))?;
            let asn = e["asn"]
                .as_u64()
                .ok_or_else(|| CrawlError::parse(DS, "pfx2as: missing asn"))?
                as u32;
            let count = e["count"].as_i64().unwrap_or(0);
            let a = imp.as_node(asn);
            let p = imp.prefix_node(prefix)?;
            imp.link(
                a,
                Relationship::Originate,
                p,
                props([("count", Value::Int(count))]),
            )
        })?;
    }
    Ok(())
}

/// `as2rel`: JSON array of `{asn1, asn2, rel}` → `PEERS_WITH` links with
/// the relationship kind as a property (`rel` 0 = peer, 1 = asn1 is the
/// provider of asn2).
pub fn import_as2rel(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v = json(text)?;
    let entries = v
        .as_array()
        .ok_or_else(|| CrawlError::parse(DS, "as2rel: expected array"))?;
    for (idx, e) in entries.iter().enumerate() {
        imp.record(idx, &e.to_string(), |imp| {
            let a1 = e["asn1"]
                .as_u64()
                .ok_or_else(|| CrawlError::parse(DS, "as2rel: asn1"))? as u32;
            let a2 = e["asn2"]
                .as_u64()
                .ok_or_else(|| CrawlError::parse(DS, "as2rel: asn2"))? as u32;
            let rel = e["rel"].as_i64().unwrap_or(0);
            let n1 = imp.as_node(a1);
            let n2 = imp.as_node(a2);
            imp.link(
                n1,
                Relationship::PeersWith,
                n2,
                props([("rel", Value::Int(rel))]),
            )
        })?;
    }
    Ok(())
}

/// `peer-stats`: collectors and their full-feed peers → `BGPCollector`
/// nodes and `AS -PEERS_WITH→ BGPCollector` links.
pub fn import_peer_stats(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v = json(text)?;
    let collectors = v["collectors"]
        .as_array()
        .ok_or_else(|| CrawlError::parse(DS, "peer-stats: missing collectors"))?;
    for c in collectors {
        let name = c["collector"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "peer-stats: collector name"))?;
        let col = imp.collector_node(name);
        for p in c["peers"].as_array().unwrap_or(&Vec::new()) {
            let asn = p["asn"]
                .as_u64()
                .ok_or_else(|| CrawlError::parse(DS, "peer-stats: asn"))?
                as u32;
            let a = imp.as_node(asn);
            let mut extra = props([]);
            if let Some(ip) = p["ip"].as_str() {
                extra.insert("ip".into(), Value::Str(ip.to_string()));
            }
            if let Some(n) = p["num_v4_pfxs"].as_i64() {
                extra.insert("num_v4_pfxs".into(), Value::Int(n));
            }
            imp.link(a, Relationship::PeersWith, col, extra)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{SimConfig, World};

    fn import_all() -> Graph {
        let w = World::generate(&SimConfig::tiny(), 3);
        let mut g = Graph::new();
        for (id, f) in [
            (
                iyp_simnet::DatasetId::BgpkitPfx2as,
                import_pfx2as as fn(&mut Importer, &str) -> _,
            ),
            (iyp_simnet::DatasetId::BgpkitAs2rel, import_as2rel),
            (iyp_simnet::DatasetId::BgpkitPeerStats, import_peer_stats),
        ] {
            let text = w.render_dataset(id);
            let mut imp = Importer::new(
                &mut g,
                Reference::new(id.organization(), id.name(), w.fetch_time),
            );
            f(&mut imp, &text).unwrap();
            assert!(imp.link_count() > 0, "{id:?} created no links");
        }
        g
    }

    #[test]
    fn imports_are_ontology_valid() {
        let g = import_all();
        assert!(validate_graph(&g).is_empty());
    }

    #[test]
    fn pfx2as_counts_match_world() {
        let w = World::generate(&SimConfig::tiny(), 3);
        let mut g = Graph::new();
        let text = w.render_dataset(iyp_simnet::DatasetId::BgpkitPfx2as);
        let mut imp = Importer::new(
            &mut g,
            Reference::new("BGPKIT", "bgpkit.pfx2as", w.fetch_time),
        );
        import_pfx2as(&mut imp, &text).unwrap();
        assert_eq!(imp.link_count(), w.prefixes.len());
        assert_eq!(g.label_count("Prefix"), w.prefixes.len());
    }

    #[test]
    fn collectors_exist() {
        let g = import_all();
        assert!(g.label_count("BGPCollector") >= 4);
    }

    #[test]
    fn garbage_is_rejected() {
        // Whole-text failures (broken JSON, wrong shape) stay fatal.
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("BGPKIT", "x", 0));
        assert!(import_pfx2as(&mut imp, "not json").is_err());
        assert!(import_pfx2as(&mut imp, "{}").is_err());
    }

    #[test]
    fn bad_entries_are_quarantined() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("BGPKIT", "x", 0));
        import_as2rel(
            &mut imp,
            "[{\"asn1\": \"oops\"}, {\"asn1\": 1, \"asn2\": 2, \"rel\": 0}]",
        )
        .unwrap();
        assert_eq!(imp.quarantine().quarantined, 1);
        assert_eq!(imp.link_count(), 1);
        assert!(imp.quarantine().samples[0].contains("asn1"));
        // Under a strict policy the same entry is fatal.
        use crate::base::ImportPolicy;
        let mut imp = Importer::with_policy(
            &mut g,
            Reference::new("BGPKIT", "x", 0),
            ImportPolicy::strict(),
        );
        assert!(import_as2rel(&mut imp, "[{\"asn1\": \"oops\"}]").is_err());
    }
}
