//! BGP.Tools crawlers: AS names, AS tags, anycast prefixes.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::props;
use iyp_ontology::Relationship;

const DS: &str = "bgptools";

/// AS names CSV (`asn,name` with `AS` prefixes).
pub fn import_as_names(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let (asn, name) = line
            .split_once(',')
            .ok_or_else(|| CrawlError::parse(DS, format!("as_names line {ln}")))?;
        let a = imp.as_node_str(asn)?;
        let n = imp.name_node(name.trim_matches('"'));
        imp.link(a, Relationship::Name, n, props([]))?;
    }
    Ok(())
}

/// AS tags CSV (`asn,tag`) → `AS -CATEGORIZED→ Tag` (the tags the
/// paper's §4.1.4 per-category RPKI breakdown is built on).
pub fn import_tags(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let (asn, tag) = line
            .split_once(',')
            .ok_or_else(|| CrawlError::parse(DS, format!("tags line {ln}")))?;
        let a = imp.as_node_str(asn)?;
        let t = imp.tag_node(tag.trim_matches('"'));
        imp.link(a, Relationship::Categorized, t, props([]))?;
    }
    Ok(())
}

/// Anycast prefixes (one per line) → `Prefix -CATEGORIZED→
/// Tag{label:'Anycast'}`.
pub fn import_anycast(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let tag = imp.tag_node("Anycast");
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let p = imp.prefix_node(line)?;
        imp.link(p, Relationship::Categorized, tag, props([]))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn tags_and_anycast_import() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        for (id, f) in [
            (
                DatasetId::BgptoolsAsNames,
                import_as_names as fn(&mut Importer, &str) -> _,
            ),
            (DatasetId::BgptoolsTags, import_tags),
            (DatasetId::BgptoolsAnycast, import_anycast),
        ] {
            let text = w.render_dataset(id);
            let mut imp = Importer::new(&mut g, Reference::new(id.organization(), id.name(), 0));
            f(&mut imp, &text).unwrap();
        }
        assert!(validate_graph(&g).is_empty());
        assert!(g
            .lookup("Tag", "label", "Content Delivery Network")
            .is_some());
        assert!(g.lookup("Tag", "label", "Anycast").is_some());
        let anycast_truth = w.prefixes.iter().filter(|p| p.anycast).count();
        let t = g.lookup("Tag", "label", "Anycast").unwrap();
        assert_eq!(
            g.rels_of(t, iyp_graph::Direction::Both, None).count(),
            anycast_truth
        );
    }

    #[test]
    fn bad_lines_error() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("BGP.Tools", "x", 0));
        assert!(import_as_names(&mut imp, "asn,name\nnocomma\n").is_err());
        assert!(import_anycast(&mut imp, "not-a-prefix\n").is_err());
    }
}
