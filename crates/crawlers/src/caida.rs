//! CAIDA crawlers: ASRank and the IXP dataset.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::{Entity, Relationship};

const DS: &str = "caida";

/// ASRank JSON lines → `AS -RANK→ Ranking{'CAIDA ASRank'}` with rank
/// and customer-cone size, plus name/country trimmings.
pub fn import_asrank(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let ranking = imp.ranking_node("CAIDA ASRank");
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| CrawlError::parse(DS, e.to_string()))?;
        let asn = v["asn"]
            .as_u64()
            .ok_or_else(|| CrawlError::parse(DS, "asrank: asn"))? as u32;
        let rank = v["rank"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "asrank: rank"))?;
        let a = imp.as_node(asn);
        imp.link(
            a,
            Relationship::Rank,
            ranking,
            props([
                ("rank", Value::Int(rank)),
                ("cone_size", v["cone_size"].as_i64().into()),
            ]),
        )?;
        if let Some(org) = v["organization"].as_str() {
            let o = imp.org_node(org);
            imp.link(a, Relationship::ManagedBy, o, props([]))?;
        }
        if let Some(cc) = v["country"].as_str() {
            if let Ok(c) = imp.country_node(cc) {
                imp.link(a, Relationship::Country, c, props([]))?;
            }
        }
    }
    Ok(())
}

/// CAIDA IXPs JSON lines → `IXP` nodes with `CaidaIXID` external ids
/// and peering-LAN prefixes.
pub fn import_ixps(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| CrawlError::parse(DS, e.to_string()))?;
        let name = v["name"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "ixs: name"))?;
        let id = v["ix_id"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "ixs: ix_id"))?;
        let ix = imp.ixp_node(name);
        let ext = imp.external_id_node(Entity::CaidaIxId, id);
        imp.link(ix, Relationship::ExternalId, ext, props([]))?;
        if let Some(cc) = v["country"].as_str() {
            if let Ok(c) = imp.country_node(cc) {
                imp.link(ix, Relationship::Country, c, props([]))?;
            }
        }
        for p in v["prefixes"]["ipv4"].as_array().unwrap_or(&Vec::new()) {
            if let Some(pfx) = p.as_str() {
                let pn = imp.prefix_node(pfx)?;
                imp.link(pn, Relationship::ManagedBy, ix, props([]))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn asrank_links_rank_org_country() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::CaidaAsRank);
        let mut imp = Importer::new(&mut g, Reference::new("CAIDA", "caida.asrank", 0));
        import_asrank(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("AS"), w.ases.len());
        assert!(g.label_count("Organization") > 0);
        // Rank 1 belongs to the AS with the largest cone.
        let ranking = g.lookup("Ranking", "name", "CAIDA ASRank").unwrap();
        let best = g
            .rels_of(ranking, iyp_graph::Direction::Both, None)
            .find(|r| r.prop("rank").and_then(|v| v.as_int()) == Some(1))
            .unwrap();
        assert!(best.prop("cone_size").unwrap().as_int().unwrap() > 1);
    }

    #[test]
    fn ixps_merge_by_name_with_peeringdb() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        // PeeringDB first, CAIDA second: same IXP names must merge.
        let text = w.render_dataset(DatasetId::PeeringdbIx);
        let mut imp = Importer::new(&mut g, Reference::new("PeeringDB", "peeringdb.ix", 0));
        crate::peeringdb::import_ix(&mut imp, &text).unwrap();
        let text = w.render_dataset(DatasetId::CaidaIxps);
        let mut imp = Importer::new(&mut g, Reference::new("CAIDA", "caida.ixs", 0));
        import_ixps(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("IXP"), w.ixps.len());
        assert_eq!(g.label_count("CaidaIXID"), w.ixps.len());
        assert_eq!(g.label_count("PeeringdbIXID"), w.ixps.len());
    }
}
