//! Cisco Umbrella popularity list crawler.

use crate::base::{Importer, RANKING_UMBRELLA};
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

/// CSV `rank,domain` → `DomainName -RANK→ Ranking{'Cisco Umbrella Top
/// 1M'}`.
pub fn import_umbrella(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let ranking = imp.ranking_node(RANKING_UMBRELLA);
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        imp.record(ln, line, |imp| {
            let (rank, domain) = line
                .split_once(',')
                .ok_or_else(|| CrawlError::parse("cisco", "missing comma"))?;
            let rank: i64 = rank
                .parse()
                .map_err(|_| CrawlError::parse("cisco", "bad rank"))?;
            let d = imp.domain_node(domain);
            imp.link(
                d,
                Relationship::Rank,
                ranking,
                props([("rank", Value::Int(rank))]),
            )
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn umbrella_subset_imports() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::CiscoUmbrella);
        let mut imp = Importer::new(&mut g, Reference::new("Cisco", "cisco.umbrella_top1m", 0));
        import_umbrella(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        let truth = w
            .domains
            .iter()
            .filter(|d| d.umbrella_rank.is_some())
            .count();
        assert_eq!(g.label_count("DomainName"), truth);
    }
}
