//! Citizen Lab URL testing list crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::props;
use iyp_ontology::Relationship;

/// CSV `url,category_code,category_description,...` → `URL
/// -CATEGORIZED→ Tag` (one tag per category description).
pub fn import_urls(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 3 {
            return Err(CrawlError::parse(
                "citizenlab",
                format!("line {ln}: {line:?}"),
            ));
        }
        let u = imp.url_node(fields[0]);
        let t = imp.tag_node(fields[2]);
        imp.link(u, Relationship::Categorized, t, props([]))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn urls_are_tagged() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::CitizenLabUrls);
        let mut imp = Importer::new(&mut g, Reference::new("Citizen Lab", "citizenlab.urldb", 0));
        import_urls(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert!(g.label_count("URL") > 0);
        assert!(g.lookup("Tag", "label", "News Media").is_some());
    }
}
