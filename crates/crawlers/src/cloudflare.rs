//! Cloudflare radar crawlers: DNS query origins and rankings.

use crate::base::{Importer, RANKING_CLOUDFLARE_TOP100};
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

const DS: &str = "cloudflare";

fn json(text: &str) -> Result<serde_json::Value, CrawlError> {
    serde_json::from_str(text).map_err(|e| CrawlError::parse(DS, e.to_string()))
}

/// `dns/top/ases`: `DomainName -QUERIED_FROM→ AS` with the query share.
pub fn import_dns_top_ases(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v = json(text)?;
    let results = v["result"]
        .as_array()
        .ok_or_else(|| CrawlError::parse(DS, "dns_top_ases: missing result"))?;
    for r in results {
        let domain = r["domain"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "dns_top_ases: domain"))?;
        let d = imp.domain_node(domain);
        for e in r["top_ases"].as_array().unwrap_or(&Vec::new()) {
            let asn = e["clientASN"]
                .as_u64()
                .ok_or_else(|| CrawlError::parse(DS, "dns_top_ases: clientASN"))?
                as u32;
            let a = imp.as_node(asn);
            let value: f64 = e["value"]
                .as_str()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0);
            imp.link(
                d,
                Relationship::QueriedFrom,
                a,
                props([("value", Value::Float(value))]),
            )?;
        }
    }
    Ok(())
}

/// `dns/top/locations`: `DomainName -QUERIED_FROM→ Country`.
pub fn import_dns_top_locations(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v = json(text)?;
    let results = v["result"]
        .as_array()
        .ok_or_else(|| CrawlError::parse(DS, "dns_top_locations: missing result"))?;
    for r in results {
        let domain = r["domain"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "dns_top_locations: domain"))?;
        let d = imp.domain_node(domain);
        for e in r["top_locations"].as_array().unwrap_or(&Vec::new()) {
            let cc = e["clientCountryAlpha2"]
                .as_str()
                .ok_or_else(|| CrawlError::parse(DS, "dns_top_locations: country"))?;
            let c = imp.country_node(cc)?;
            let value: f64 = e["value"]
                .as_str()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0);
            imp.link(
                d,
                Relationship::QueriedFrom,
                c,
                props([("value", Value::Float(value))]),
            )?;
        }
    }
    Ok(())
}

/// `ranking/top`: the top-100 ranking.
pub fn import_ranking_top(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v = json(text)?;
    let top = v["result"]["top_0"]
        .as_array()
        .ok_or_else(|| CrawlError::parse(DS, "ranking_top: missing top_0"))?;
    let ranking = imp.ranking_node(RANKING_CLOUDFLARE_TOP100);
    for e in top {
        let domain = e["domain"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "ranking_top: domain"))?;
        let rank = e["rank"].as_i64().unwrap_or(0);
        let d = imp.domain_node(domain);
        imp.link(
            d,
            Relationship::Rank,
            ranking,
            props([("rank", Value::Int(rank))]),
        )?;
    }
    Ok(())
}

/// `radar/datasets` ranking buckets: one Ranking node per bucket.
pub fn import_ranking_buckets(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v = json(text)?;
    let datasets = v["result"]["datasets"]
        .as_array()
        .ok_or_else(|| CrawlError::parse(DS, "ranking_bucket: missing datasets"))?;
    for b in datasets {
        let bucket = b["bucket"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "ranking_bucket: name"))?;
        let ranking = imp.ranking_node(&format!("Cloudflare {bucket}"));
        for d in b["domains"].as_array().unwrap_or(&Vec::new()) {
            let Some(domain) = d.as_str() else { continue };
            let dn = imp.domain_node(domain);
            imp.link(dn, Relationship::Rank, ranking, props([]))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    fn run(id: DatasetId, f: fn(&mut Importer, &str) -> Result<(), CrawlError>) -> Graph {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(id);
        let mut imp = Importer::new(&mut g, Reference::new(id.organization(), id.name(), 0));
        f(&mut imp, &text).unwrap();
        assert!(imp.link_count() > 0);
        g
    }

    #[test]
    fn all_four_import_and_validate() {
        for (id, f) in [
            (
                DatasetId::CloudflareDnsTopAses,
                import_dns_top_ases as fn(&mut Importer, &str) -> _,
            ),
            (
                DatasetId::CloudflareDnsTopLocations,
                import_dns_top_locations,
            ),
            (DatasetId::CloudflareRankingTop, import_ranking_top),
            (DatasetId::CloudflareRankingBuckets, import_ranking_buckets),
        ] {
            let g = run(id, f);
            assert!(validate_graph(&g).is_empty(), "{id:?}");
        }
    }

    #[test]
    fn buckets_create_rankings() {
        let g = run(DatasetId::CloudflareRankingBuckets, import_ranking_buckets);
        assert!(g.lookup("Ranking", "name", "Cloudflare top_100").is_some());
        assert!(g.lookup("Ranking", "name", "Cloudflare top_1000").is_some());
    }

    #[test]
    fn queried_from_carries_value() {
        let g = run(DatasetId::CloudflareDnsTopAses, import_dns_top_ases);
        let r = g
            .all_rels()
            .find(|r| g.symbols().rel_type_name(r.rel_type) == "QUERIED_FROM")
            .unwrap();
        assert!(r.prop("value").unwrap().as_float().unwrap() > 0.0);
    }
}
