//! Emile Aben's asnames crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::props;
use iyp_ontology::Relationship;

/// `AS<asn> <name>` lines → `AS -NAME→ Name`.
pub fn import_as_names(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        imp.record(ln, line, |imp| {
            let (asn, name) = line
                .split_once(' ')
                .ok_or_else(|| CrawlError::parse("emileaben", "missing separator"))?;
            let a = imp.as_node_str(asn)?;
            let n = imp.name_node(name.trim());
            imp.link(a, Relationship::Name, n, props([]))
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn names_merge_with_other_sources() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::EmileAbenAsNames);
        let mut imp = Importer::new(
            &mut g,
            Reference::new("Emile Aben", "emileaben.as_names", 0),
        );
        import_as_names(&mut imp, &text).unwrap();
        // Same names from BGP.Tools merge onto the same Name nodes but
        // produce distinct links.
        let names_before = g.label_count("Name");
        let text = w.render_dataset(DatasetId::BgptoolsAsNames);
        let mut imp = Importer::new(&mut g, Reference::new("BGP.Tools", "bgptools.as_names", 0));
        crate::bgptools::import_as_names(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("Name"), names_before);
        assert_eq!(g.rel_count(), 2 * w.ases.len());
    }
}
