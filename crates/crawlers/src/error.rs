//! Crawler errors.

use std::fmt;

/// How many characters of offending input an error excerpt keeps.
const EXCERPT_MAX: usize = 60;

/// Errors raised while parsing or importing a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum CrawlError {
    /// The dataset text could not be parsed.
    Parse {
        dataset: &'static str,
        msg: String,
        /// Line number (as enumerated by the importer) of the
        /// offending record, when known.
        line: Option<usize>,
        /// A short excerpt of the offending input, when known.
        excerpt: Option<String>,
    },
    /// A graph operation failed.
    Graph(String),
}

impl CrawlError {
    /// Builds a parse error.
    pub fn parse(dataset: &'static str, msg: impl Into<String>) -> Self {
        CrawlError::Parse {
            dataset,
            msg: msg.into(),
            line: None,
            excerpt: None,
        }
    }

    /// Builds a parse error pinned to a line with an input excerpt.
    pub fn parse_at(dataset: &'static str, line: usize, raw: &str, msg: impl Into<String>) -> Self {
        CrawlError::Parse {
            dataset,
            msg: msg.into(),
            line: Some(line),
            excerpt: Some(excerpt_of(raw)),
        }
    }

    /// Attaches a line number and input excerpt to a parse error that
    /// lacks them (graph errors pass through unchanged). Existing
    /// location info — e.g. from a nested `parse_at` — is kept.
    pub fn at(self, line: usize, raw: &str) -> Self {
        match self {
            CrawlError::Parse {
                dataset,
                msg,
                line: old_line,
                excerpt,
            } => CrawlError::Parse {
                dataset,
                msg,
                line: old_line.or(Some(line)),
                excerpt: excerpt.or_else(|| Some(excerpt_of(raw))),
            },
            other => other,
        }
    }
}

/// Clips `raw` to a one-line excerpt of at most [`EXCERPT_MAX`] chars.
fn excerpt_of(raw: &str) -> String {
    let one_line = raw.trim_end_matches('\n').replace('\n', "\\n");
    let mut out: String = one_line.chars().take(EXCERPT_MAX).collect();
    if one_line.chars().count() > EXCERPT_MAX {
        out.push('…');
    }
    out
}

impl fmt::Display for CrawlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrawlError::Parse {
                dataset,
                msg,
                line,
                excerpt,
            } => {
                match line {
                    Some(ln) => write!(f, "{dataset}: parse error at line {ln}: {msg}")?,
                    None => write!(f, "{dataset}: parse error: {msg}")?,
                }
                if let Some(input) = excerpt {
                    write!(f, " (input: {input:?})")?;
                }
                Ok(())
            }
            CrawlError::Graph(msg) => write!(f, "graph error: {msg}"),
        }
    }
}

impl std::error::Error for CrawlError {}

impl From<iyp_graph::GraphError> for CrawlError {
    fn from(e: iyp_graph::GraphError) -> Self {
        CrawlError::Graph(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_parse_error_formats_as_before() {
        let e = CrawlError::parse("tranco", "missing comma");
        assert_eq!(e.to_string(), "tranco: parse error: missing comma");
    }

    #[test]
    fn located_error_carries_line_and_excerpt() {
        let e = CrawlError::parse_at("tranco", 12, "x,example.com", "bad rank");
        assert_eq!(
            e.to_string(),
            "tranco: parse error at line 12: bad rank (input: \"x,example.com\")"
        );
    }

    #[test]
    fn at_enriches_but_never_overwrites() {
        let e = CrawlError::parse("nro", "bad date").at(7, "apnic|JP|asn|x");
        assert_eq!(
            e.to_string(),
            "nro: parse error at line 7: bad date (input: \"apnic|JP|asn|x\")"
        );
        // A second `at` keeps the first location.
        let e2 = e.clone().at(99, "other");
        assert_eq!(e, e2);
        // Graph errors pass through unchanged.
        let g = CrawlError::Graph("boom".into()).at(1, "x");
        assert_eq!(g, CrawlError::Graph("boom".into()));
    }

    #[test]
    fn long_excerpts_are_clipped() {
        let raw = "a".repeat(200);
        let e = CrawlError::parse_at("cisco", 1, &raw, "bad row");
        match e {
            CrawlError::Parse { excerpt, .. } => {
                let x = excerpt.unwrap();
                assert!(x.chars().count() <= 61);
                assert!(x.ends_with('…'));
            }
            _ => unreachable!(),
        }
    }
}
