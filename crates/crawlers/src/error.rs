//! Crawler errors.

use std::fmt;

/// Errors raised while parsing or importing a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum CrawlError {
    /// The dataset text could not be parsed.
    Parse { dataset: &'static str, msg: String },
    /// A graph operation failed.
    Graph(String),
}

impl CrawlError {
    /// Builds a parse error.
    pub fn parse(dataset: &'static str, msg: impl Into<String>) -> Self {
        CrawlError::Parse {
            dataset,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CrawlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrawlError::Parse { dataset, msg } => write!(f, "{dataset}: parse error: {msg}"),
            CrawlError::Graph(msg) => write!(f, "graph error: {msg}"),
        }
    }
}

impl std::error::Error for CrawlError {}

impl From<iyp_graph::GraphError> for CrawlError {
    fn from(e: iyp_graph::GraphError) -> Self {
        CrawlError::Graph(e.to_string())
    }
}
