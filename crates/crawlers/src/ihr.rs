//! IHR crawlers: AS hegemony, country dependency, ROV.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

const DS: &str = "ihr";

/// Hegemony CSV `timebin,originasn,asn,hege,af` → `AS -DEPENDS_ON→ AS`
/// with the hegemony score. Self-dependencies (origin == asn) are
/// skipped, as in the real importer.
pub fn import_hegemony(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 5 {
            return Err(CrawlError::parse(
                DS,
                format!("hegemony line {ln}: {line:?}"),
            ));
        }
        let origin: u32 = f[1]
            .parse()
            .map_err(|_| CrawlError::parse(DS, format!("hegemony line {ln}: bad origin")))?;
        let dep: u32 = f[2]
            .parse()
            .map_err(|_| CrawlError::parse(DS, format!("hegemony line {ln}: bad asn")))?;
        let hege: f64 = f[3]
            .parse()
            .map_err(|_| CrawlError::parse(DS, format!("hegemony line {ln}: bad hege")))?;
        if origin == dep {
            continue;
        }
        let a = imp.as_node(origin);
        let b = imp.as_node(dep);
        imp.link(
            a,
            Relationship::DependsOn,
            b,
            props([("hege", Value::Float(hege))]),
        )?;
    }
    Ok(())
}

/// Country dependency CSV `country,asn,hege` → `Country -DEPENDS_ON→ AS`.
pub fn import_country_dependency(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 3 {
            return Err(CrawlError::parse(
                DS,
                format!("country dep line {ln}: {line:?}"),
            ));
        }
        let c = imp.country_node(f[0])?;
        let a = imp.as_node_str(f[1])?;
        let hege: f64 = f[2]
            .parse()
            .map_err(|_| CrawlError::parse(DS, format!("country dep line {ln}: bad hege")))?;
        imp.link(
            c,
            Relationship::DependsOn,
            a,
            props([("hege", Value::Float(hege))]),
        )?;
    }
    Ok(())
}

/// Maps the IHR ROV status to the IYP tag vocabulary used in the
/// paper's queries (Listing 4 matches `STARTS WITH 'RPKI Invalid'`).
pub fn rov_tag(status: &str) -> Option<&'static str> {
    match status {
        "Valid" => Some("RPKI Valid"),
        "Invalid" => Some("RPKI Invalid"),
        "Invalid,more-specific" => Some("RPKI Invalid, more specific"),
        "NotFound" => None,
        _ => None,
    }
}

/// ROV CSV `prefix,originasn,rpki_status` → `AS -ORIGINATE→ Prefix`
/// plus `Prefix -CATEGORIZED→ Tag` for the RPKI status.
pub fn import_rov(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 3 {
            return Err(CrawlError::parse(DS, format!("rov line {ln}: {line:?}")));
        }
        let (prefix, origin, status) = (f[0], f[1], f[2..].join(","));
        let p = imp.prefix_node(prefix)?;
        let a = imp.as_node_str(origin)?;
        imp.link(a, Relationship::Originate, p, props([]))?;
        if let Some(tag) = rov_tag(&status) {
            let t = imp.tag_node(tag);
            imp.link(p, Relationship::Categorized, t, props([]))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    fn run(id: DatasetId, f: fn(&mut Importer, &str) -> Result<(), CrawlError>) -> Graph {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(id);
        let mut imp = Importer::new(
            &mut g,
            Reference::new(id.organization(), id.name(), w.fetch_time),
        );
        f(&mut imp, &text).unwrap();
        assert!(imp.link_count() > 0);
        g
    }

    #[test]
    fn rov_produces_rpki_tags() {
        let g = run(DatasetId::IhrRov, import_rov);
        assert!(validate_graph(&g).is_empty());
        assert!(g.lookup("Tag", "label", "RPKI Valid").is_some());
        // Invalids are rare but Originate links must cover all prefixes.
        let w = World::generate(&SimConfig::tiny(), 5);
        assert_eq!(g.label_count("Prefix"), w.prefixes.len());
    }

    #[test]
    fn hegemony_skips_self() {
        let g = run(DatasetId::IhrHegemony, import_hegemony);
        assert!(validate_graph(&g).is_empty());
        for r in g.all_rels() {
            assert_ne!(r.src, r.dst, "self-dependency imported");
        }
    }

    #[test]
    fn country_dependency_links_countries() {
        let g = run(DatasetId::IhrCountryDependency, import_country_dependency);
        assert!(validate_graph(&g).is_empty());
        assert!(g.label_count("Country") > 0);
    }

    #[test]
    fn tag_mapping() {
        assert_eq!(rov_tag("Valid"), Some("RPKI Valid"));
        assert_eq!(
            rov_tag("Invalid,more-specific"),
            Some("RPKI Invalid, more specific")
        );
        assert_eq!(rov_tag("NotFound"), None);
        assert_eq!(rov_tag("???"), None);
    }

    #[test]
    fn malformed_lines_error() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("IHR", "x", 0));
        assert!(import_hegemony(&mut imp, "h\na,b\n").is_err());
        assert!(import_rov(&mut imp, "h\nonlyonefield\n").is_err());
    }
}
