//! Internet Intelligence Lab AS-to-organization crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, NodeId};
use iyp_ontology::Relationship;
use std::collections::HashMap;

/// JSON lines of `{asn, org_name, country}` → `AS -MANAGED_BY→
/// Organization`, `Organization -COUNTRY→ Country`, and `SIBLING_OF`
/// between ASes sharing an organization.
pub fn import_as_org(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let mut by_org: HashMap<String, Vec<NodeId>> = HashMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| CrawlError::parse("inetintel", e.to_string()))?;
        let asn = v["asn"]
            .as_u64()
            .ok_or_else(|| CrawlError::parse("inetintel", "missing asn"))? as u32;
        let org_name = v["org_name"]
            .as_str()
            .ok_or_else(|| CrawlError::parse("inetintel", "missing org_name"))?;
        let a = imp.as_node(asn);
        let o = imp.org_node(org_name);
        imp.link(a, Relationship::ManagedBy, o, props([]))?;
        if let Some(cc) = v["country"].as_str() {
            if let Ok(c) = imp.country_node(cc) {
                imp.link(o, Relationship::Country, c, props([]))?;
            }
        }
        by_org.entry(org_name.to_string()).or_default().push(a);
    }
    // Chain SIBLING_OF links between co-owned ASes (linear, not
    // quadratic, like the real importer).
    let mut orgs: Vec<_> = by_org.into_iter().collect();
    orgs.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, siblings) in orgs {
        for pair in siblings.windows(2) {
            imp.link(pair[0], Relationship::SiblingOf, pair[1], props([]))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn orgs_and_siblings() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::InetIntelAsOrg);
        let mut imp = Importer::new(
            &mut g,
            Reference::new("Internet Intelligence Lab", "ii.as_org", 0),
        );
        import_as_org(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("AS"), w.ases.len());
        assert_eq!(g.label_count("Organization"), w.orgs.len());
        // Sibling links exist iff some org owns several ASes.
        let multi = w
            .ases
            .iter()
            .filter(|a| w.ases.iter().filter(|b| b.org == a.org).count() > 1)
            .count();
        let siblings = g
            .all_rels()
            .filter(|r| g.symbols().rel_type_name(r.rel_type) == "SIBLING_OF")
            .count();
        assert_eq!(siblings > 0, multi > 0);
    }
}
