//! Dataset importers ("crawlers") for the IYP knowledge graph.
//!
//! Mirroring the paper's architecture (§2.3), each of the 46 datasets has
//! an independent crawler that
//!
//! 1. parses the dataset's native wire format (JSON, CSV, NRO delegated
//!    format, plain text…),
//! 2. translates identifiers to their **canonical forms** (via
//!    `iyp-netdata`) before creating nodes, and
//! 3. creates one relationship per imported datapoint, stamped with the
//!    six provenance properties (§2.2) — never deduplicating links, so
//!    the same fact imported from two datasets yields two parallel
//!    links distinguished by `reference_name`.
//!
//! The input text comes from `iyp-simnet` (the synthetic Internet) in
//! this reproduction; the parsing code is format-faithful, so pointing a
//! crawler at the corresponding real-world file is a matter of fetching
//! it.

pub mod base;
pub mod error;
pub mod registry;

// One module per providing organisation (Table 8).
pub mod alice_lg;
pub mod apnic;
pub mod bgpkit;
pub mod bgptools;
pub mod caida;
pub mod cisco;
pub mod citizenlab;
pub mod cloudflare;
pub mod emileaben;
pub mod ihr;
pub mod inetintel;
pub mod nro;
pub mod openintel;
pub mod pch;
pub mod peeringdb;
pub mod ripe;
pub mod rovista;
pub mod simulamet;
pub mod stanford;
pub mod tranco;
pub mod worldbank;

pub use base::{
    ImportPolicy, Importer, QuarantineStats, RANKING_CLOUDFLARE_TOP100, RANKING_TRANCO,
    RANKING_UMBRELLA,
};
pub use error::CrawlError;
pub use registry::{all_datasets, import_dataset, import_dataset_with, Crawler, ImportOutcome};
