//! NRO extended delegated statistics crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, NodeId, Value};
use iyp_netdata::Prefix;
use iyp_ontology::Relationship;
use std::net::IpAddr;
use std::str::FromStr;

const DS: &str = "nro";

/// Parses the pipe-separated extended delegated format:
/// `registry|cc|type|start|value|date|status|opaque-id`.
///
/// Produces `ASSIGNED`/`AVAILABLE`/`RESERVED` links between resources
/// (AS, Prefix) and `OpaqueID` holders, plus `COUNTRY` links for both
/// the resource and the opaque id.
pub fn import_delegated(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split('|').collect();
        // Skip the version header and summary lines.
        if f.len() < 8 || f[2] == "summary" || f.get(5) == Some(&"summary") {
            continue;
        }
        imp.record(ln, line, |imp| {
            let (registry, cc, rtype, start, value, _date, status, opaque) =
                (f[0], f[1], f[2], f[3], f[4], f[5], f[6], f[7]);
            let resource: NodeId = match rtype {
                "asn" => {
                    let asn: u32 = start
                        .parse()
                        .map_err(|_| CrawlError::parse(DS, format!("bad asn {start:?}")))?;
                    imp.as_node(asn)
                }
                "ipv4" => {
                    let count: u64 = value
                        .parse()
                        .map_err(|_| CrawlError::parse(DS, "bad ipv4 count"))?;
                    let len = 32 - (count as f64).log2() as u8;
                    let addr = IpAddr::from_str(start)
                        .map_err(|_| CrawlError::parse(DS, "bad ipv4 start"))?;
                    let p = Prefix::new(addr, len)
                        .map_err(|e| CrawlError::parse(DS, format!("{e}")))?;
                    imp.prefix_node(&p.canonical())?
                }
                "ipv6" => {
                    let len: u8 = value
                        .parse()
                        .map_err(|_| CrawlError::parse(DS, "bad ipv6 length"))?;
                    let addr = IpAddr::from_str(start)
                        .map_err(|_| CrawlError::parse(DS, "bad ipv6 start"))?;
                    let p = Prefix::new(addr, len)
                        .map_err(|e| CrawlError::parse(DS, format!("{e}")))?;
                    imp.prefix_node(&p.canonical())?
                }
                other => return Err(CrawlError::parse(DS, format!("unknown type {other:?}"))),
            };
            let rel = match status {
                "assigned" | "allocated" => Relationship::Assigned,
                "available" => Relationship::Available,
                "reserved" => Relationship::Reserved,
                other => return Err(CrawlError::parse(DS, format!("status {other:?}"))),
            };
            let holder = imp.opaque_id_node(opaque);
            imp.link(
                resource,
                rel,
                holder,
                props([("registry", Value::Str(registry.into()))]),
            )?;
            if cc != "*" && !cc.is_empty() {
                if let Ok(c) = imp.country_node(cc) {
                    imp.link(resource, Relationship::Country, c, props([]))?;
                    imp.link(holder, Relationship::Country, c, props([]))?;
                }
            }
            Ok(())
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn imports_all_resources() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::NroDelegatedStats);
        let mut imp = Importer::new(&mut g, Reference::new("NRO", "nro.delegated_stats", 0));
        import_delegated(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("AS"), w.ases.len());
        assert_eq!(g.label_count("Prefix"), w.prefixes.len());
        assert!(g.label_count("OpaqueID") > 0);
        assert!(g.label_count("Country") > 0);
    }

    #[test]
    fn parses_hand_written_lines() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("NRO", "nro.delegated_stats", 0));
        let text = "\
2.3|nro|20240501|3|19830705|20240501|+0000
nro|*|asn|*|1|summary
arin|US|asn|64496|1|20050101|assigned|opaque-0001
ripencc|NL|ipv4|192.0.2.0|256|20050101|allocated|opaque-0002
apnic|JP|ipv6|2001:db8::|32|20050101|reserved|opaque-0003
";
        import_delegated(&mut imp, text).unwrap();
        assert!(g.lookup("AS", "asn", 64496i64).is_some());
        assert!(g.lookup("Prefix", "prefix", "192.0.2.0/24").is_some());
        assert!(g.lookup("Prefix", "prefix", "2001:db8::/32").is_some());
        assert!(g.lookup("OpaqueID", "id", "opaque-0003").is_some());
    }

    #[test]
    fn bad_lines_are_quarantined() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("NRO", "x", 0));
        import_delegated(
            &mut imp,
            "arin|US|asn|notanumber|1|20050101|assigned|op-1\n\
             arin|US|phone|64496|1|20050101|assigned|op-1\n\
             arin|US|asn|64496|1|20050101|assigned|op-1\n",
        )
        .unwrap();
        assert_eq!(imp.quarantine().quarantined, 2);
        assert_eq!(imp.quarantine().records, 3);
        assert!(imp.quarantine().samples[0].contains("bad asn"));
    }

    #[test]
    fn strict_policy_rejects_bad_lines() {
        use crate::base::ImportPolicy;
        let mut g = Graph::new();
        let mut imp = Importer::with_policy(
            &mut g,
            Reference::new("NRO", "x", 0),
            ImportPolicy::strict(),
        );
        assert!(import_delegated(
            &mut imp,
            "arin|US|asn|notanumber|1|20050101|assigned|op-1\n"
        )
        .is_err());
        assert!(
            import_delegated(&mut imp, "arin|US|phone|64496|1|20050101|assigned|op-1\n").is_err()
        );
    }
}
