//! OpenINTEL crawlers: `tranco1m`/`umbrella1m` resolutions, the NS
//! measurement, and the UTwente DNS dependency graph.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

const DS: &str = "openintel";

/// Registered domain of a hostname: the last two labels. The synthetic
/// world only uses second-level registrations, matching how the paper's
/// studies treat SLDs.
pub fn registered_domain(host: &str) -> Option<String> {
    let labels: Vec<&str> = host.split('.').filter(|l| !l.is_empty()).collect();
    if labels.len() < 2 {
        return None;
    }
    Some(labels[labels.len() - 2..].join("."))
}

fn jsonl(text: &str) -> impl Iterator<Item = Result<serde_json::Value, CrawlError>> + '_ {
    text.lines().filter(|l| !l.trim().is_empty()).map(|l| {
        serde_json::from_str::<serde_json::Value>(l)
            .map_err(|e| CrawlError::parse(DS, format!("{e}: {l:?}")))
    })
}

/// A/AAAA measurement (tranco1m, umbrella1m): `HostName -RESOLVES_TO→
/// IP`, plus `HostName -PART_OF→ DomainName` for the registered domain.
pub fn import_resolutions(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for rec in jsonl(text) {
        let rec = rec?;
        let qname = rec["query_name"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "missing query_name"))?;
        let ip = rec["ip4_address"]
            .as_str()
            .or_else(|| rec["ip6_address"].as_str())
            .ok_or_else(|| CrawlError::parse(DS, "missing address"))?;
        let h = imp.hostname_node(qname);
        let i = imp.ip_node(ip)?;
        imp.link(h, Relationship::ResolvesTo, i, props([]))?;
        if let Some(reg) = registered_domain(qname) {
            let d = imp.domain_node(&reg);
            imp.link(h, Relationship::PartOf, d, props([]))?;
        }
    }
    Ok(())
}

/// NS measurement: `DomainName -MANAGED_BY→ AuthoritativeNameServer`
/// for NS records; glue A/AAAA records become nameserver
/// `RESOLVES_TO` links.
pub fn import_ns(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for rec in jsonl(text) {
        let rec = rec?;
        let qname = rec["query_name"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "missing query_name"))?;
        match rec["response_type"].as_str() {
            Some("NS") => {
                let ns_name = rec["ns_address"]
                    .as_str()
                    .ok_or_else(|| CrawlError::parse(DS, "missing ns_address"))?;
                let zone = imp.domain_node(qname);
                let ns = imp.nameserver_node(ns_name);
                imp.link(zone, Relationship::ManagedBy, ns, props([]))?;
            }
            Some("A") | Some("AAAA") => {
                let ip = rec["ip4_address"]
                    .as_str()
                    .or_else(|| rec["ip6_address"].as_str())
                    .ok_or_else(|| CrawlError::parse(DS, "missing glue address"))?;
                let ns = imp.nameserver_node(qname);
                let i = imp.ip_node(ip)?;
                imp.link(ns, Relationship::ResolvesTo, i, props([]))?;
            }
            other => {
                return Err(CrawlError::parse(
                    DS,
                    format!("unexpected response_type {other:?}"),
                ))
            }
        }
    }
    Ok(())
}

/// DNS dependency graph: `DomainName -DEPENDS_ON→ DomainName` with the
/// dependency kind (`direct`, `third-party`, `hierarchical`) — the
/// substrate of the §5.2 SPoF analysis.
pub fn import_dnsgraph(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for rec in jsonl(text) {
        let rec = rec?;
        let domain = rec["domain"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "dnsgraph: missing domain"))?;
        let dep = rec["dep_zone"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "dnsgraph: missing dep_zone"))?;
        let kind = rec["kind"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "dnsgraph: missing kind"))?;
        let d = imp.domain_node(domain);
        let z = imp.domain_node(dep);
        imp.link(
            d,
            Relationship::DependsOn,
            z,
            props([("kind", Value::Str(kind.into()))]),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    fn run(id: DatasetId, f: fn(&mut Importer, &str) -> Result<(), CrawlError>) -> Graph {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(id);
        let mut imp = Importer::new(
            &mut g,
            Reference::new(id.organization(), id.name(), w.fetch_time),
        );
        f(&mut imp, &text).unwrap();
        assert!(imp.link_count() > 0);
        g
    }

    #[test]
    fn registered_domain_extraction() {
        assert_eq!(
            registered_domain("www.example.com"),
            Some("example.com".into())
        );
        assert_eq!(registered_domain("example.com"), Some("example.com".into()));
        assert_eq!(registered_domain("com"), None);
        assert_eq!(registered_domain("a.b.c.d.org"), Some("d.org".into()));
    }

    #[test]
    fn resolutions_create_hostname_ip_domain_triangle() {
        let g = run(DatasetId::OpenintelTranco1m, import_resolutions);
        assert!(validate_graph(&g).is_empty());
        let w = World::generate(&SimConfig::tiny(), 5);
        // Apex and www hostnames both exist.
        assert!(g
            .lookup("HostName", "name", w.domains[0].name.as_str())
            .is_some());
        assert!(g
            .lookup("HostName", "name", format!("www.{}", w.domains[0].name))
            .is_some());
        assert!(g
            .lookup("DomainName", "name", w.domains[0].name.as_str())
            .is_some());
        assert!(g.label_count("IP") > 0);
    }

    #[test]
    fn ns_import_builds_managed_by_and_glue() {
        let g = run(DatasetId::OpenintelNs, import_ns);
        assert!(validate_graph(&g).is_empty());
        assert!(g.label_count("AuthoritativeNameServer") > 0);
        // TLD zones are DomainName nodes too.
        assert!(g.lookup("DomainName", "name", "com").is_some());
    }

    #[test]
    fn dnsgraph_links_kinds() {
        let g = run(DatasetId::OpenintelDnsgraph, import_dnsgraph);
        assert!(validate_graph(&g).is_empty());
        let kinds: std::collections::HashSet<String> = g
            .all_rels()
            .filter_map(|r| r.prop("kind").and_then(|v| v.as_str()).map(String::from))
            .collect();
        assert!(kinds.contains("direct"));
        assert!(kinds.contains("hierarchical"));
        assert!(kinds.contains("third-party"));
    }

    #[test]
    fn malformed_input_errors() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("OpenINTEL", "x", 0));
        assert!(import_resolutions(&mut imp, "{not json").is_err());
        assert!(import_ns(
            &mut imp,
            "{\"query_name\":\"a.com.\",\"response_type\":\"TXT\"}"
        )
        .is_err());
        assert!(import_dnsgraph(&mut imp, "{\"domain\":\"a.com\"}").is_err());
    }
}
