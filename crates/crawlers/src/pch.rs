//! Packet Clearing House routing-snapshot crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::props;
use iyp_ontology::Relationship;

/// Simplified PCH table: `prefix;as_path` per line. The path's last AS
/// originates the prefix.
pub fn import_routing(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (prefix, path) = line
            .split_once(';')
            .ok_or_else(|| CrawlError::parse("pch", format!("line {ln}: {line:?}")))?;
        let origin = path
            .split_whitespace()
            .last()
            .ok_or_else(|| CrawlError::parse("pch", format!("line {ln}: empty path")))?;
        let a = imp.as_node_str(origin)?;
        let p = imp.prefix_node(prefix)?;
        imp.link(a, Relationship::Originate, p, props([]))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn pch_imports_subset_of_prefixes() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::PchRoutingSnapshot);
        let mut imp = Importer::new(
            &mut g,
            Reference::new("Packet Clearing House", "pch.snapshots", 0),
        );
        import_routing(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        let n = g.label_count("Prefix");
        assert!(n > 0 && n < w.prefixes.len());
    }

    #[test]
    fn origin_is_path_tail() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("PCH", "x", 0));
        import_routing(&mut imp, "192.0.2.0/24;3301 3307 64496\n").unwrap();
        let a = g.lookup("AS", "asn", 64496i64).unwrap();
        let p = g.lookup("Prefix", "prefix", "192.0.2.0/24").unwrap();
        let rel = g
            .rels_of(a, iyp_graph::Direction::Outgoing, None)
            .next()
            .unwrap();
        assert_eq!(rel.dst, p);
    }
}
