//! PeeringDB crawlers: `org`, `ix`, `ixlan`, `fac`, `netfac`.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::{Entity, Relationship};

const DS: &str = "peeringdb";

fn data(text: &str) -> Result<Vec<serde_json::Value>, CrawlError> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| CrawlError::parse(DS, e.to_string()))?;
    v["data"]
        .as_array()
        .cloned()
        .ok_or_else(|| CrawlError::parse(DS, "missing data array"))
}

/// `org`: Organization nodes with PeeringDB ids and countries.
pub fn import_org(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for e in data(text)? {
        let name = e["name"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "org: name"))?;
        let id = e["id"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "org: id"))?;
        let org = imp.org_node(name);
        let ext = imp.external_id_node(Entity::PeeringdbOrgId, id);
        imp.link(org, Relationship::ExternalId, ext, props([]))?;
        if let Some(cc) = e["country"].as_str() {
            if let Ok(c) = imp.country_node(cc) {
                imp.link(org, Relationship::Country, c, props([]))?;
            }
        }
    }
    Ok(())
}

/// `ix`: IXP nodes with PeeringDB ids and countries.
pub fn import_ix(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for e in data(text)? {
        let name = e["name"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "ix: name"))?;
        let id = e["id"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "ix: id"))?;
        let ix = imp.ixp_node(name);
        let ext = imp.external_id_node(Entity::PeeringdbIxId, id);
        imp.link(ix, Relationship::ExternalId, ext, props([]))?;
        if let Some(cc) = e["country"].as_str() {
            if let Ok(c) = imp.country_node(cc) {
                imp.link(ix, Relationship::Country, c, props([]))?;
            }
        }
    }
    Ok(())
}

/// `ixlan`: membership (`AS -MEMBER_OF→ IXP` with port details) and the
/// peering-LAN prefix (`Prefix -MANAGED_BY→ IXP`).
///
/// Members reference the IXP by `ix_id`, so the `ix` dataset must be
/// imported first for names to align; we merge on the external id.
pub fn import_ixlan(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for e in data(text)? {
        let ix_id = e["ix_id"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "ixlan: ix_id"))?;
        // Find the IXP already holding this external id; fall back to a
        // synthetic name for standalone imports.
        let ext = imp.external_id_node(Entity::PeeringdbIxId, ix_id);
        let ix = imp
            .graph()
            .rels_of(ext, iyp_graph::Direction::Both, None)
            .map(|r| r.other(ext))
            .find(|n| {
                imp.graph()
                    .node(*n)
                    .map(|node| {
                        node.labels
                            .iter()
                            .any(|l| imp.graph().symbols().label_name(*l) == Entity::Ixp.label())
                    })
                    .unwrap_or(false)
            });
        let ix = match ix {
            Some(n) => n,
            None => {
                let n = imp.ixp_node(&format!("pdb-ix-{ix_id}"));
                imp.link(n, Relationship::ExternalId, ext, props([]))?;
                n
            }
        };
        if let Some(prefix) = e["prefix"].as_str() {
            let p = imp.prefix_node(prefix)?;
            imp.link(p, Relationship::ManagedBy, ix, props([]))?;
        }
        for m in e["net_list"].as_array().unwrap_or(&Vec::new()) {
            let asn = m["asn"]
                .as_u64()
                .ok_or_else(|| CrawlError::parse(DS, "ixlan: asn"))? as u32;
            let a = imp.as_node(asn);
            let mut extra = props([]);
            if let Some(ip) = m["ipaddr4"].as_str() {
                extra.insert("ipaddr4".into(), Value::Str(ip.into()));
            }
            if let Some(speed) = m["speed"].as_i64() {
                extra.insert("speed".into(), Value::Int(speed));
            }
            if let Some(policy) = m["policy"].as_str() {
                extra.insert("policy".into(), Value::Str(policy.into()));
            }
            imp.link(a, Relationship::MemberOf, ix, extra)?;
        }
    }
    Ok(())
}

/// `fac`: Facility nodes with ids and countries.
pub fn import_fac(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for e in data(text)? {
        let name = e["name"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "fac: name"))?;
        let id = e["id"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "fac: id"))?;
        let fac = imp.facility_node(name);
        let ext = imp.external_id_node(Entity::PeeringdbFacId, id);
        imp.link(fac, Relationship::ExternalId, ext, props([]))?;
        if let Some(cc) = e["country"].as_str() {
            if let Ok(c) = imp.country_node(cc) {
                imp.link(fac, Relationship::Country, c, props([]))?;
            }
        }
    }
    Ok(())
}

/// `netfac`: `AS -LOCATED_IN→ Facility` presence.
pub fn import_netfac(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for e in data(text)? {
        let asn = e["local_asn"]
            .as_u64()
            .ok_or_else(|| CrawlError::parse(DS, "netfac: local_asn"))? as u32;
        let fac_id = e["fac_id"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "netfac: fac_id"))?;
        let a = imp.as_node(asn);
        let ext = imp.external_id_node(Entity::PeeringdbFacId, fac_id);
        // Resolve the facility through its external id; fabricate a
        // placeholder when fac was not imported.
        let fac = imp
            .graph()
            .rels_of(ext, iyp_graph::Direction::Both, None)
            .map(|r| r.other(ext))
            .find(|n| {
                imp.graph()
                    .node(*n)
                    .map(|node| {
                        node.labels.iter().any(|l| {
                            imp.graph().symbols().label_name(*l) == Entity::Facility.label()
                        })
                    })
                    .unwrap_or(false)
            });
        let fac = match fac {
            Some(n) => n,
            None => {
                let n = imp.facility_node(&format!("pdb-fac-{fac_id}"));
                imp.link(n, Relationship::ExternalId, ext, props([]))?;
                n
            }
        };
        imp.link(a, Relationship::LocatedIn, fac, props([]))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    fn import_all() -> (World, Graph) {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        for (id, f) in [
            (
                DatasetId::PeeringdbOrg,
                import_org as fn(&mut Importer, &str) -> _,
            ),
            (DatasetId::PeeringdbIx, import_ix),
            (DatasetId::PeeringdbIxlan, import_ixlan),
            (DatasetId::PeeringdbFac, import_fac),
            (DatasetId::PeeringdbNetfac, import_netfac),
        ] {
            let text = w.render_dataset(id);
            let mut imp = Importer::new(
                &mut g,
                Reference::new(id.organization(), id.name(), w.fetch_time),
            );
            f(&mut imp, &text).unwrap();
        }
        (w, g)
    }

    #[test]
    fn full_import_is_valid_and_joined() {
        let (w, g) = import_all();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("IXP"), w.ixps.len());
        assert_eq!(g.label_count("Facility"), w.ixps.len());
        assert_eq!(g.label_count("PeeringdbIXID"), w.ixps.len());
        // Membership links exist and point at the named IXPs (not
        // placeholders), because ix was imported before ixlan.
        assert!(g.lookup("IXP", "name", w.ixps[0].name.as_str()).is_some());
        let member_links = g
            .all_rels()
            .filter(|r| g.symbols().rel_type_name(r.rel_type) == "MEMBER_OF")
            .count();
        let truth: usize = w.ixps.iter().map(|ix| ix.members.len()).sum();
        assert_eq!(member_links, truth);
        assert!(g.lookup("IXP", "name", "pdb-ix-1").is_none());
    }

    #[test]
    fn ixlan_standalone_fabricates_placeholder() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::PeeringdbIxlan);
        let mut imp = Importer::new(&mut g, Reference::new("PeeringDB", "peeringdb.ixlan", 0));
        import_ixlan(&mut imp, &text).unwrap();
        assert!(g.lookup("IXP", "name", "pdb-ix-1").is_some());
    }

    #[test]
    fn garbage_rejected() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("PeeringDB", "x", 0));
        assert!(import_org(&mut imp, "[]").is_err());
        assert!(import_ix(&mut imp, "{\"data\": [{}]}").is_err());
    }
}
