//! Crawler registry: dataset ids → importer functions.

use crate::base::{ImportPolicy, Importer, QuarantineStats};
use crate::error::CrawlError;
use iyp_graph::Graph;
use iyp_ontology::Reference;
use iyp_simnet::datasets::{DatasetId, ALL_DATASETS};

/// A registered crawler for one dataset.
#[derive(Debug, Clone, Copy)]
pub struct Crawler {
    /// Which dataset this crawler imports.
    pub id: DatasetId,
}

impl Crawler {
    /// Runs the crawler over dataset text, returning the number of
    /// relationships created.
    pub fn run(&self, graph: &mut Graph, text: &str, fetch_time: i64) -> Result<usize, CrawlError> {
        import_dataset(graph, self.id, text, fetch_time)
    }
}

/// All datasets, in Table 8 order.
pub fn all_datasets() -> &'static [DatasetId] {
    &ALL_DATASETS
}

/// Builds the provenance [`Reference`] for a dataset.
pub fn reference_for(id: DatasetId, fetch_time: i64) -> Reference {
    Reference::new(id.organization(), id.name(), fetch_time)
        .with_info_url(id.info_url())
        .with_data_url(&format!(
            "{}/{}",
            id.info_url().trim_end_matches('/'),
            id.name()
        ))
        .with_modification_time(fetch_time - 3600)
}

/// Outcome of one dataset import: links created plus the record
/// quarantine accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportOutcome {
    /// Relationships created.
    pub links: usize,
    /// Records the importer attempted.
    pub records: usize,
    /// Malformed records skipped under the error budget.
    pub quarantined: usize,
    /// Rendered errors for the first few quarantined records.
    pub samples: Vec<String>,
}

/// Imports one dataset's text into the graph; returns the number of
/// relationships created. Malformed records are quarantined under the
/// default [`ImportPolicy`].
pub fn import_dataset(
    graph: &mut Graph,
    id: DatasetId,
    text: &str,
    fetch_time: i64,
) -> Result<usize, CrawlError> {
    import_dataset_with(graph, id, text, fetch_time, ImportPolicy::default()).map(|o| o.links)
}

/// Imports one dataset's text under an explicit quarantine policy,
/// returning full [`ImportOutcome`] accounting.
pub fn import_dataset_with(
    graph: &mut Graph,
    id: DatasetId,
    text: &str,
    fetch_time: i64,
    policy: ImportPolicy,
) -> Result<ImportOutcome, CrawlError> {
    let mut imp = Importer::with_policy(graph, reference_for(id, fetch_time), policy);
    dispatch(&mut imp, id, text)?;
    let QuarantineStats {
        records,
        quarantined,
        samples,
    } = imp.quarantine().clone();
    Ok(ImportOutcome {
        links: imp.link_count(),
        records,
        quarantined,
        samples,
    })
}

/// Routes dataset text to its importer function.
fn dispatch(imp: &mut Importer<'_>, id: DatasetId, text: &str) -> Result<(), CrawlError> {
    use DatasetId::*;
    match id {
        AliceLgAmsIx | AliceLgBcix | AliceLgDeCix | AliceLgIxBr | AliceLgLinx | AliceLgMegaport
        | AliceLgNetnod => crate::alice_lg::import(imp, text)?,
        ApnicPopulation => crate::apnic::import_population(imp, text)?,
        BgpkitAs2rel => crate::bgpkit::import_as2rel(imp, text)?,
        BgpkitPeerStats => crate::bgpkit::import_peer_stats(imp, text)?,
        BgpkitPfx2as => crate::bgpkit::import_pfx2as(imp, text)?,
        BgptoolsAsNames => crate::bgptools::import_as_names(imp, text)?,
        BgptoolsTags => crate::bgptools::import_tags(imp, text)?,
        BgptoolsAnycast => crate::bgptools::import_anycast(imp, text)?,
        CaidaAsRank => crate::caida::import_asrank(imp, text)?,
        CaidaIxps => crate::caida::import_ixps(imp, text)?,
        CiscoUmbrella => crate::cisco::import_umbrella(imp, text)?,
        CitizenLabUrls => crate::citizenlab::import_urls(imp, text)?,
        CloudflareDnsTopAses => crate::cloudflare::import_dns_top_ases(imp, text)?,
        CloudflareDnsTopLocations => crate::cloudflare::import_dns_top_locations(imp, text)?,
        CloudflareRankingTop => crate::cloudflare::import_ranking_top(imp, text)?,
        CloudflareRankingBuckets => crate::cloudflare::import_ranking_buckets(imp, text)?,
        EmileAbenAsNames => crate::emileaben::import_as_names(imp, text)?,
        IhrCountryDependency => crate::ihr::import_country_dependency(imp, text)?,
        IhrHegemony => crate::ihr::import_hegemony(imp, text)?,
        IhrRov => crate::ihr::import_rov(imp, text)?,
        InetIntelAsOrg => crate::inetintel::import_as_org(imp, text)?,
        NroDelegatedStats => crate::nro::import_delegated(imp, text)?,
        OpenintelTranco1m | OpenintelUmbrella1m => crate::openintel::import_resolutions(imp, text)?,
        OpenintelNs => crate::openintel::import_ns(imp, text)?,
        OpenintelDnsgraph => crate::openintel::import_dnsgraph(imp, text)?,
        PchRoutingSnapshot => crate::pch::import_routing(imp, text)?,
        PeeringdbFac => crate::peeringdb::import_fac(imp, text)?,
        PeeringdbIx => crate::peeringdb::import_ix(imp, text)?,
        PeeringdbIxlan => crate::peeringdb::import_ixlan(imp, text)?,
        PeeringdbNetfac => crate::peeringdb::import_netfac(imp, text)?,
        PeeringdbOrg => crate::peeringdb::import_org(imp, text)?,
        RipeAsNames => crate::ripe::import_as_names(imp, text)?,
        RipeRpki => crate::ripe::import_rpki(imp, text)?,
        RipeAtlasMeasurements => crate::ripe::import_atlas(imp, text)?,
        SimulametRdns => crate::simulamet::import_rdns(imp, text)?,
        StanfordAsdb => crate::stanford::import_asdb(imp, text)?,
        TrancoList => crate::tranco::import_list(imp, text)?,
        RovistaRov => crate::rovista::import(imp, text)?,
        WorldBankPopulation => crate::worldbank::import_population(imp, text)?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_carry_metadata() {
        let r = reference_for(DatasetId::BgpkitPfx2as, 100);
        assert_eq!(r.organization, "BGPKIT");
        assert_eq!(r.dataset_name, "bgpkit.pfx2as");
        assert!(r.info_url.is_some());
        assert_eq!(r.fetch_time, 100);
    }

    #[test]
    fn registry_covers_all_46() {
        assert_eq!(all_datasets().len(), 46);
    }
}
