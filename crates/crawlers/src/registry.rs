//! Crawler registry: dataset ids → importer functions.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::Graph;
use iyp_ontology::Reference;
use iyp_simnet::datasets::{DatasetId, ALL_DATASETS};

/// A registered crawler for one dataset.
#[derive(Debug, Clone, Copy)]
pub struct Crawler {
    /// Which dataset this crawler imports.
    pub id: DatasetId,
}

impl Crawler {
    /// Runs the crawler over dataset text, returning the number of
    /// relationships created.
    pub fn run(&self, graph: &mut Graph, text: &str, fetch_time: i64) -> Result<usize, CrawlError> {
        import_dataset(graph, self.id, text, fetch_time)
    }
}

/// All datasets, in Table 8 order.
pub fn all_datasets() -> &'static [DatasetId] {
    &ALL_DATASETS
}

/// Builds the provenance [`Reference`] for a dataset.
pub fn reference_for(id: DatasetId, fetch_time: i64) -> Reference {
    Reference::new(id.organization(), id.name(), fetch_time)
        .with_info_url(id.info_url())
        .with_data_url(&format!(
            "{}/{}",
            id.info_url().trim_end_matches('/'),
            id.name()
        ))
        .with_modification_time(fetch_time - 3600)
}

/// Imports one dataset's text into the graph; returns the number of
/// relationships created.
pub fn import_dataset(
    graph: &mut Graph,
    id: DatasetId,
    text: &str,
    fetch_time: i64,
) -> Result<usize, CrawlError> {
    let mut imp = Importer::new(graph, reference_for(id, fetch_time));
    use DatasetId::*;
    match id {
        AliceLgAmsIx | AliceLgBcix | AliceLgDeCix | AliceLgIxBr | AliceLgLinx | AliceLgMegaport
        | AliceLgNetnod => crate::alice_lg::import(&mut imp, text)?,
        ApnicPopulation => crate::apnic::import_population(&mut imp, text)?,
        BgpkitAs2rel => crate::bgpkit::import_as2rel(&mut imp, text)?,
        BgpkitPeerStats => crate::bgpkit::import_peer_stats(&mut imp, text)?,
        BgpkitPfx2as => crate::bgpkit::import_pfx2as(&mut imp, text)?,
        BgptoolsAsNames => crate::bgptools::import_as_names(&mut imp, text)?,
        BgptoolsTags => crate::bgptools::import_tags(&mut imp, text)?,
        BgptoolsAnycast => crate::bgptools::import_anycast(&mut imp, text)?,
        CaidaAsRank => crate::caida::import_asrank(&mut imp, text)?,
        CaidaIxps => crate::caida::import_ixps(&mut imp, text)?,
        CiscoUmbrella => crate::cisco::import_umbrella(&mut imp, text)?,
        CitizenLabUrls => crate::citizenlab::import_urls(&mut imp, text)?,
        CloudflareDnsTopAses => crate::cloudflare::import_dns_top_ases(&mut imp, text)?,
        CloudflareDnsTopLocations => crate::cloudflare::import_dns_top_locations(&mut imp, text)?,
        CloudflareRankingTop => crate::cloudflare::import_ranking_top(&mut imp, text)?,
        CloudflareRankingBuckets => crate::cloudflare::import_ranking_buckets(&mut imp, text)?,
        EmileAbenAsNames => crate::emileaben::import_as_names(&mut imp, text)?,
        IhrCountryDependency => crate::ihr::import_country_dependency(&mut imp, text)?,
        IhrHegemony => crate::ihr::import_hegemony(&mut imp, text)?,
        IhrRov => crate::ihr::import_rov(&mut imp, text)?,
        InetIntelAsOrg => crate::inetintel::import_as_org(&mut imp, text)?,
        NroDelegatedStats => crate::nro::import_delegated(&mut imp, text)?,
        OpenintelTranco1m | OpenintelUmbrella1m => {
            crate::openintel::import_resolutions(&mut imp, text)?
        }
        OpenintelNs => crate::openintel::import_ns(&mut imp, text)?,
        OpenintelDnsgraph => crate::openintel::import_dnsgraph(&mut imp, text)?,
        PchRoutingSnapshot => crate::pch::import_routing(&mut imp, text)?,
        PeeringdbFac => crate::peeringdb::import_fac(&mut imp, text)?,
        PeeringdbIx => crate::peeringdb::import_ix(&mut imp, text)?,
        PeeringdbIxlan => crate::peeringdb::import_ixlan(&mut imp, text)?,
        PeeringdbNetfac => crate::peeringdb::import_netfac(&mut imp, text)?,
        PeeringdbOrg => crate::peeringdb::import_org(&mut imp, text)?,
        RipeAsNames => crate::ripe::import_as_names(&mut imp, text)?,
        RipeRpki => crate::ripe::import_rpki(&mut imp, text)?,
        RipeAtlasMeasurements => crate::ripe::import_atlas(&mut imp, text)?,
        SimulametRdns => crate::simulamet::import_rdns(&mut imp, text)?,
        StanfordAsdb => crate::stanford::import_asdb(&mut imp, text)?,
        TrancoList => crate::tranco::import_list(&mut imp, text)?,
        RovistaRov => crate::rovista::import(&mut imp, text)?,
        WorldBankPopulation => crate::worldbank::import_population(&mut imp, text)?,
    }
    Ok(imp.link_count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_carry_metadata() {
        let r = reference_for(DatasetId::BgpkitPfx2as, 100);
        assert_eq!(r.organization, "BGPKIT");
        assert_eq!(r.dataset_name, "bgpkit.pfx2as");
        assert!(r.info_url.is_some());
        assert_eq!(r.fetch_time, 100);
    }

    #[test]
    fn registry_covers_all_46() {
        assert_eq!(all_datasets().len(), 46);
    }
}
