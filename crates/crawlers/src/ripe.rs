//! RIPE NCC crawlers: AS names, RPKI ROAs, Atlas measurements.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

const DS: &str = "ripe";

/// `asn.txt`-style lines: `<asn> <name>, <country>` → `AS -NAME→ Name`
/// and `AS -COUNTRY→ Country`.
pub fn import_as_names(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (asn_str, rest) = line
            .split_once(' ')
            .ok_or_else(|| CrawlError::parse(DS, format!("as names line {ln}: {line:?}")))?;
        let a = imp.as_node_str(asn_str)?;
        let (name, country) = match rest.rsplit_once(", ") {
            Some((n, cc)) if cc.len() == 2 => (n, Some(cc)),
            _ => (rest, None),
        };
        let n = imp.name_node(name.trim());
        imp.link(a, Relationship::Name, n, props([]))?;
        if let Some(cc) = country {
            if let Ok(c) = imp.country_node(cc) {
                imp.link(a, Relationship::Country, c, props([]))?;
            }
        }
    }
    Ok(())
}

/// RPKI ROAs: `AS -ROUTE_ORIGIN_AUTHORIZATION→ Prefix` with maxLength
/// and trust anchor.
pub fn import_rpki(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| CrawlError::parse(DS, e.to_string()))?;
    let roas = v["roas"]
        .as_array()
        .ok_or_else(|| CrawlError::parse(DS, "rpki: missing roas"))?;
    for roa in roas {
        let asn = roa["asn"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "rpki: asn"))?;
        let prefix = roa["prefix"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "rpki: prefix"))?;
        let a = imp.as_node_str(asn)?;
        let p = imp.prefix_node(prefix)?;
        let mut extra = props([]);
        if let Some(ml) = roa["maxLength"].as_i64() {
            extra.insert("maxLength".into(), Value::Int(ml));
        }
        if let Some(ta) = roa["ta"].as_str() {
            extra.insert("ta".into(), Value::Str(ta.into()));
        }
        imp.link(a, Relationship::RouteOriginAuthorization, p, extra)?;
    }
    Ok(())
}

/// Atlas measurement information: measurements targeting hostnames,
/// probes with assigned IPs, locations, and participation links.
pub fn import_atlas(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| CrawlError::parse(DS, e.to_string()))?;
    // Probes first so participation links can rely on them.
    for p in v["probes"].as_array().unwrap_or(&Vec::new()) {
        let id = p["id"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "atlas: probe id"))?;
        let probe = imp.probe_node(id);
        if let Some(asn) = p["asn_v4"].as_u64() {
            let a = imp.as_node(asn as u32);
            imp.link(probe, Relationship::LocatedIn, a, props([]))?;
        }
        if let Some(cc) = p["country_code"].as_str() {
            if let Ok(c) = imp.country_node(cc) {
                imp.link(probe, Relationship::Country, c, props([]))?;
            }
        }
        if let Some(ip) = p["address_v4"].as_str() {
            let i = imp.ip_node(ip)?;
            imp.link(probe, Relationship::Assigned, i, props([]))?;
        }
    }
    for m in v["measurements"].as_array().unwrap_or(&Vec::new()) {
        let id = m["id"]
            .as_i64()
            .ok_or_else(|| CrawlError::parse(DS, "atlas: msm id"))?;
        let target = m["target"]
            .as_str()
            .ok_or_else(|| CrawlError::parse(DS, "atlas: target"))?;
        let msm = imp.measurement_node(id);
        let kind = m["type"].as_str().unwrap_or("ping");
        let h = imp.hostname_node(target);
        imp.link(
            msm,
            Relationship::Target,
            h,
            props([
                ("type", Value::Str(kind.into())),
                ("af", Value::Int(m["af"].as_i64().unwrap_or(4))),
            ]),
        )?;
        for pid in m["probes"].as_array().unwrap_or(&Vec::new()) {
            if let Some(pid) = pid.as_i64() {
                let probe = imp.probe_node(pid);
                imp.link(probe, Relationship::PartOf, msm, props([]))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    fn run(id: DatasetId, f: fn(&mut Importer, &str) -> Result<(), CrawlError>) -> (World, Graph) {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(id);
        let mut imp = Importer::new(
            &mut g,
            Reference::new(id.organization(), id.name(), w.fetch_time),
        );
        f(&mut imp, &text).unwrap();
        assert!(imp.link_count() > 0);
        (w, g)
    }

    #[test]
    fn as_names_create_name_and_country() {
        let (w, g) = run(DatasetId::RipeAsNames, import_as_names);
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("AS"), w.ases.len());
        assert!(g.label_count("Name") > 0);
        assert!(g.label_count("Country") > 0);
    }

    #[test]
    fn rpki_roas_link_as_and_prefix() {
        let (w, g) = run(DatasetId::RipeRpki, import_rpki);
        assert!(validate_graph(&g).is_empty());
        let roa_links = g
            .all_rels()
            .filter(|r| g.symbols().rel_type_name(r.rel_type) == "ROUTE_ORIGIN_AUTHORIZATION")
            .count();
        assert_eq!(roa_links, w.roas.len());
        // maxLength property preserved.
        let r = g.all_rels().next().unwrap();
        assert!(r.prop("maxLength").is_some());
    }

    #[test]
    fn atlas_builds_probe_and_measurement_graph() {
        let (w, g) = run(DatasetId::RipeAtlasMeasurements, import_atlas);
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("AtlasProbe"), w.probes.len());
        assert_eq!(g.label_count("AtlasMeasurement"), w.measurements.len());
        // Every measurement targets a hostname.
        let targets = g
            .all_rels()
            .filter(|r| g.symbols().rel_type_name(r.rel_type) == "TARGET")
            .count();
        assert_eq!(targets, w.measurements.len());
    }

    #[test]
    fn bad_input() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("RIPE NCC", "x", 0));
        assert!(import_rpki(&mut imp, "{}").is_err());
        assert!(import_as_names(&mut imp, "notanumber name, JP").is_err());
    }
}
