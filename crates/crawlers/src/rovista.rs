//! Virginia Tech RoVista crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

/// Tag for ASes observed to filter RPKI-invalid routes.
pub const TAG_VALIDATING: &str = "Validating RPKI ROV";
/// Tag for ASes not observed to filter.
pub const TAG_NOT_VALIDATING: &str = "Not Validating RPKI ROV";

/// CSV `asn,ratio` → `AS -CATEGORIZED→ Tag` with the measured ratio as
/// a link property; ratio ≥ 0.5 counts as validating (RoVista's own
/// convention in IYP).
pub fn import(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let (asn, ratio) = line
            .split_once(',')
            .ok_or_else(|| CrawlError::parse("rovista", format!("line {ln}: {line:?}")))?;
        let ratio: f64 = ratio
            .parse()
            .map_err(|_| CrawlError::parse("rovista", format!("line {ln}: bad ratio")))?;
        let a = imp.as_node_str(asn)?;
        let tag = if ratio >= 0.5 {
            TAG_VALIDATING
        } else {
            TAG_NOT_VALIDATING
        };
        let t = imp.tag_node(tag);
        imp.link(
            a,
            Relationship::Categorized,
            t,
            props([("ratio", Value::Float(ratio))]),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn ratio_splits_tags() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::RovistaRov);
        let mut imp = Importer::new(
            &mut g,
            Reference::new("Virginia Tech", "rovista.validating", 0),
        );
        import(&mut imp, &text).unwrap();
        let links = imp.link_count();
        assert!(validate_graph(&g).is_empty());
        assert!(g.lookup("Tag", "label", TAG_VALIDATING).is_some());
        assert!(g.lookup("Tag", "label", TAG_NOT_VALIDATING).is_some());
        assert_eq!(links, w.ases.len());
    }
}
