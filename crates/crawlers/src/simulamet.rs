//! SimulaMet rDNS (rir-data.org) crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::props;
use iyp_ontology::Relationship;

/// CSV `prefix,nameserver` → `Prefix -MANAGED_BY→
/// AuthoritativeNameServer` (reverse-zone delegation).
pub fn import_rdns(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let (prefix, ns) = line
            .split_once(',')
            .ok_or_else(|| CrawlError::parse("simulamet", format!("line {ln}: {line:?}")))?;
        let p = imp.prefix_node(prefix)?;
        let n = imp.nameserver_node(ns);
        imp.link(p, Relationship::ManagedBy, n, props([]))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn reverse_delegations_import() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::SimulametRdns);
        let mut imp = Importer::new(&mut g, Reference::new("SimulaMet", "simulamet.rdns", 0));
        import_rdns(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert!(g.label_count("AuthoritativeNameServer") > 0);
    }
}
