//! Stanford ASdb crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::props;
use iyp_ontology::Relationship;

/// ASdb CSV (`ASN,Category 1 - Layer 1,Category 1 - Layer 2`) →
/// `AS -CATEGORIZED→ Tag` for each category layer.
pub fn import_asdb(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    for (ln, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() < 2 {
            return Err(CrawlError::parse(
                "stanford",
                format!("line {ln}: {line:?}"),
            ));
        }
        let a = imp.as_node_str(&fields[0])?;
        for cat in fields[1..].iter().filter(|c| !c.is_empty()) {
            let t = imp.tag_node(cat);
            imp.link(a, Relationship::Categorized, t, props([]))?;
        }
    }
    Ok(())
}

/// Minimal CSV field splitter honouring double quotes.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => quoted = !quoted,
            ',' if !quoted => {
                fields.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn categories_become_tags() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::StanfordAsdb);
        let mut imp = Importer::new(&mut g, Reference::new("Stanford", "stanford.asdb", 0));
        import_asdb(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert!(g
            .lookup("Tag", "label", "Internet Service Provider (ISP)")
            .is_some());
        assert_eq!(g.label_count("AS"), w.ases.len());
    }

    #[test]
    fn csv_splitter_handles_quotes() {
        assert_eq!(split_csv("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv("a,\"b,c\",d"), vec!["a", "b,c", "d"]);
        assert_eq!(split_csv("\"x \"\"y\"\"\",z"), vec!["x \"y\"", "z"]);
    }
}
