//! Tranco list crawler.

use crate::base::{Importer, RANKING_TRANCO};
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

/// CSV `rank,domain` → `DomainName -RANK→ Ranking{'Tranco top 1M'}`
/// with the rank as a link property. Malformed rows are quarantined
/// under the session's [`crate::base::ImportPolicy`].
pub fn import_list(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let ranking = imp.ranking_node(RANKING_TRANCO);
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        imp.record(ln, line, |imp| {
            let (rank, domain) = line
                .split_once(',')
                .ok_or_else(|| CrawlError::parse("tranco", "missing comma"))?;
            let rank: i64 = rank
                .parse()
                .map_err(|_| CrawlError::parse("tranco", "bad rank"))?;
            let d = imp.domain_node(domain);
            imp.link(
                d,
                Relationship::Rank,
                ranking,
                props([("rank", Value::Int(rank))]),
            )
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn ranks_are_imported() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::TrancoList);
        let mut imp = Importer::new(&mut g, Reference::new("Tranco", "tranco.top1m", 0));
        import_list(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("DomainName"), w.domains.len());
        let ranking = g.lookup("Ranking", "name", RANKING_TRANCO).unwrap();
        assert_eq!(
            g.rels_of(ranking, iyp_graph::Direction::Both, None).count(),
            w.domains.len()
        );
        // Rank 1 is stored on the link.
        let first = g
            .lookup("DomainName", "name", w.domains[0].name.as_str())
            .unwrap();
        let rel = g
            .rels_of(first, iyp_graph::Direction::Both, None)
            .next()
            .unwrap();
        assert_eq!(rel.prop("rank").unwrap().as_int(), Some(1));
    }

    #[test]
    fn bad_rows_are_quarantined_within_budget() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("Tranco", "x", 0));
        let mut text = String::from("x,example.com\nnocomma\n");
        for i in 1..=20 {
            text.push_str(&format!("{i},host{i}.example\n"));
        }
        import_list(&mut imp, &text).unwrap();
        assert_eq!(imp.quarantine().quarantined, 2);
        assert_eq!(imp.quarantine().records, 22);
        assert_eq!(imp.link_count(), 20);
        // The samples point at the offending rows.
        assert!(imp.quarantine().samples[0].contains("bad rank"));
        assert!(imp.quarantine().samples[1].contains("missing comma"));
    }

    #[test]
    fn strict_policy_rejects_bad_rows() {
        use crate::base::ImportPolicy;
        let mut g = Graph::new();
        let mut imp = Importer::with_policy(
            &mut g,
            Reference::new("Tranco", "x", 0),
            ImportPolicy::strict(),
        );
        assert!(import_list(&mut imp, "x,example.com\n").is_err());
    }
}
