//! Tranco list crawler.

use crate::base::{Importer, RANKING_TRANCO};
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

/// CSV `rank,domain` → `DomainName -RANK→ Ranking{'Tranco top 1M'}`
/// with the rank as a link property.
pub fn import_list(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let ranking = imp.ranking_node(RANKING_TRANCO);
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (rank, domain) = line
            .split_once(',')
            .ok_or_else(|| CrawlError::parse("tranco", format!("line {ln}: {line:?}")))?;
        let rank: i64 = rank
            .parse()
            .map_err(|_| CrawlError::parse("tranco", format!("line {ln}: bad rank")))?;
        let d = imp.domain_node(domain);
        imp.link(
            d,
            Relationship::Rank,
            ranking,
            props([("rank", Value::Int(rank))]),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn ranks_are_imported() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::TrancoList);
        let mut imp = Importer::new(&mut g, Reference::new("Tranco", "tranco.top1m", 0));
        import_list(&mut imp, &text).unwrap();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(g.label_count("DomainName"), w.domains.len());
        let ranking = g.lookup("Ranking", "name", RANKING_TRANCO).unwrap();
        assert_eq!(
            g.rels_of(ranking, iyp_graph::Direction::Both, None).count(),
            w.domains.len()
        );
        // Rank 1 is stored on the link.
        let first = g
            .lookup("DomainName", "name", w.domains[0].name.as_str())
            .unwrap();
        let rel = g
            .rels_of(first, iyp_graph::Direction::Both, None)
            .next()
            .unwrap();
        assert_eq!(rel.prop("rank").unwrap().as_int(), Some(1));
    }

    #[test]
    fn rejects_bad_rows() {
        let mut g = Graph::new();
        let mut imp = Importer::new(&mut g, Reference::new("Tranco", "x", 0));
        assert!(import_list(&mut imp, "x,example.com\n").is_err());
        assert!(import_list(&mut imp, "nocomma\n").is_err());
    }
}
