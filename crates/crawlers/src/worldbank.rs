//! World Bank population crawler.

use crate::base::Importer;
use crate::error::CrawlError;
use iyp_graph::{props, Value};
use iyp_ontology::Relationship;

/// Name of the Estimate node all countries link to.
pub const ESTIMATE_NAME: &str = "World Bank population estimate";

/// The API's `[meta, data]` pair → `Country -POPULATION→ Estimate` with
/// the value.
pub fn import_population(imp: &mut Importer<'_>, text: &str) -> Result<(), CrawlError> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| CrawlError::parse("worldbank", e.to_string()))?;
    let data = v
        .as_array()
        .and_then(|a| a.get(1))
        .and_then(|d| d.as_array())
        .ok_or_else(|| CrawlError::parse("worldbank", "expected [meta, data] pair"))?;
    let estimate = imp.estimate_node(ESTIMATE_NAME);
    for e in data {
        let cc = e["country"]["id"]
            .as_str()
            .ok_or_else(|| CrawlError::parse("worldbank", "missing country id"))?;
        let c = imp.country_node(cc)?;
        imp.link(
            c,
            Relationship::Population,
            estimate,
            props([
                ("value", e["value"].as_i64().into()),
                ("date", Value::Str(e["date"].as_str().unwrap_or("").into())),
            ]),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Graph;
    use iyp_ontology::{validate_graph, Reference};
    use iyp_simnet::{DatasetId, SimConfig, World};

    #[test]
    fn country_population_links() {
        let w = World::generate(&SimConfig::tiny(), 5);
        let mut g = Graph::new();
        let text = w.render_dataset(DatasetId::WorldBankPopulation);
        let mut imp = Importer::new(
            &mut g,
            Reference::new("World Bank", "worldbank.country_pop", 0),
        );
        import_population(&mut imp, &text).unwrap();
        let links = imp.link_count();
        assert!(validate_graph(&g).is_empty());
        assert_eq!(links, w.country_population.len());
        assert!(g.lookup("Estimate", "name", ESTIMATE_NAME).is_some());
    }
}
