//! Robustness tests: crawlers must never panic on malformed input —
//! they either import or return a parse error. (The paper imports
//! community data "as-is"; upstream formats do break.)

use iyp_crawlers::registry::import_dataset;
use iyp_graph::Graph;
use iyp_simnet::datasets::ALL_DATASETS;
use iyp_simnet::{SimConfig, World};
use proptest::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static World {
    static CELL: OnceLock<World> = OnceLock::new();
    CELL.get_or_init(|| World::generate(&SimConfig::tiny(), 3))
}

/// Applies a deterministic mutation to dataset text.
fn mutate(text: &str, kind: u8, pos: usize) -> String {
    let mut s = text.to_string();
    if s.is_empty() {
        return s;
    }
    let pos = pos % s.len();
    // Snap to a char boundary.
    let pos = (0..=pos)
        .rev()
        .find(|p| s.is_char_boundary(*p))
        .unwrap_or(0);
    match kind % 5 {
        0 => {
            // Truncate.
            s.truncate(pos);
            s
        }
        1 => {
            // Delete one char.
            if pos < s.len() {
                s.remove(pos);
            }
            s
        }
        2 => {
            // Insert garbage.
            s.insert_str(pos, "\u{1F980}garbage,|};");
            s
        }
        3 => {
            // Duplicate a slice.
            let tail = s[pos..].to_string();
            s.push_str(&tail);
            s
        }
        _ => {
            // Replace a char with a NUL-ish separator.
            if pos < s.len() {
                s.remove(pos);
                s.insert(pos, ';');
            }
            s
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// No crawler panics on mutated versions of its own dataset.
    #[test]
    fn crawlers_survive_mutations(ds_idx in 0usize..46, kind in any::<u8>(), pos in any::<usize>()) {
        let id = ALL_DATASETS[ds_idx];
        let text = world().render_dataset(id);
        let mutated = mutate(&text, kind, pos.max(1));
        let mut g = Graph::new();
        // Must return Ok or Err, never panic.
        let _ = import_dataset(&mut g, id, &mutated, 0);
    }

    /// No crawler panics on arbitrary noise.
    #[test]
    fn crawlers_survive_noise(ds_idx in 0usize..46, noise in "\\PC{0,200}") {
        let id = ALL_DATASETS[ds_idx];
        let mut g = Graph::new();
        let _ = import_dataset(&mut g, id, &noise, 0);
    }
}

#[test]
fn empty_input_never_panics() {
    for id in ALL_DATASETS {
        let mut g = Graph::new();
        let _ = import_dataset(&mut g, id, "", 0);
        let _ = import_dataset(&mut g, id, "\n\n\n", 0);
        let _ = import_dataset(&mut g, id, "{}", 0);
        let _ = import_dataset(&mut g, id, "[]", 0);
    }
}
