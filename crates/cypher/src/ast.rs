//! Abstract syntax tree for the Cypher subset.

use iyp_graph::Value;

/// How a query should be run: normally, or as an `EXPLAIN`/`PROFILE`
/// introspection request (leading keyword, as in openCypher).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Execute and return the result rows.
    #[default]
    Normal,
    /// Return the execution plan without running the query.
    Explain,
    /// Run the query and return the plan annotated with per-operator
    /// rows-produced and wall time.
    Profile,
}

/// A full query: a pipeline of clauses ending in `RETURN`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Execution mode (`EXPLAIN` / `PROFILE` prefix).
    pub mode: QueryMode,
    /// The clause pipeline, in source order.
    pub clauses: Vec<Clause>,
}

/// One pipeline clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `MATCH` / `OPTIONAL MATCH` over one or more comma-separated
    /// path patterns.
    Match {
        /// True for `OPTIONAL MATCH`.
        optional: bool,
        /// The path patterns.
        patterns: Vec<PathPattern>,
    },
    /// `WHERE` predicate (attached to the preceding MATCH/WITH rows).
    Where(Expr),
    /// `UNWIND expr AS var`.
    Unwind {
        /// The list expression.
        expr: Expr,
        /// Binding introduced per element.
        var: String,
    },
    /// `WITH` projection (keeps the pipeline going).
    With(Projection),
    /// Final `RETURN` projection.
    Return(Projection),
    /// `CREATE` new nodes/relationships (write queries only).
    Create(Vec<PathPattern>),
    /// `MERGE` a pattern: bind existing matches or create the pattern.
    Merge(PathPattern),
    /// `SET var.key = expr, …`.
    Set(Vec<SetItem>),
    /// `DELETE expr, …` / `DETACH DELETE …`.
    Delete {
        /// Expressions evaluating to nodes or relationships.
        exprs: Vec<Expr>,
        /// `DETACH`: also remove a node's relationships.
        detach: bool,
    },
}

/// One `SET` assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct SetItem {
    /// Variable holding the node or relationship.
    pub var: String,
    /// Property key.
    pub key: String,
    /// New value.
    pub value: Expr,
}

/// A projection: `RETURN`/`WITH` items plus modifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// True for `DISTINCT`.
    pub distinct: bool,
    /// Projected items.
    pub items: Vec<ProjItem>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `SKIP n`.
    pub skip: Option<Expr>,
    /// `LIMIT n`.
    pub limit: Option<Expr>,
}

/// One projected item with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjItem {
    /// The expression to project.
    pub expr: Expr,
    /// Alias (`AS name`); defaults to the source text of simple items.
    pub alias: String,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// True for descending.
    pub descending: bool,
}

/// A linear path pattern: `(n)-[r:T]->(m)-...`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// The first node.
    pub start: NodePattern,
    /// Subsequent (relationship, node) hops.
    pub hops: Vec<(RelPattern, NodePattern)>,
}

/// A node pattern: `(var:Label1:Label2 {prop: expr, ...})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Variable name, if bound.
    pub var: Option<String>,
    /// Required labels (conjunctive).
    pub labels: Vec<String>,
    /// Inline property equality constraints.
    pub props: Vec<(String, Expr)>,
}

/// Direction of a relationship pattern, from the perspective of the
/// left-hand node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelDir {
    /// `-[]->`
    Right,
    /// `<-[]-`
    Left,
    /// `-[]-`
    Undirected,
}

/// A relationship pattern: `-[var:TYPE1|TYPE2 {prop: expr} *1..3]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    /// Variable name, if bound.
    pub var: Option<String>,
    /// Allowed relationship types (disjunctive); empty = any.
    pub types: Vec<String>,
    /// Inline property equality constraints.
    pub props: Vec<(String, Expr)>,
    /// Direction.
    pub dir: RelDir,
    /// Variable-length bounds `(min, max)`; `None` = exactly one hop.
    /// `*` is `(1, VAR_LENGTH_CAP)`, `*n` is `(n, n)`, `*a..b` is
    /// `(a, b)`.
    pub var_length: Option<(u32, u32)>,
}

/// Upper bound substituted for an open-ended `*` (Cypher's unbounded
/// form); prevents accidental exponential traversals.
pub const VAR_LENGTH_CAP: u32 = 15;

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// `$param`.
    Param(String),
    /// Variable reference.
    Var(String),
    /// Property access `expr.key`.
    Prop(Box<Expr>, String),
    /// List literal.
    List(Vec<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull(Box<Expr>, bool),
    /// Function call; `distinct` applies to aggregates.
    Call {
        /// Lower-cased function name.
        name: String,
        /// `DISTINCT` inside the call parentheses.
        distinct: bool,
        /// Arguments; `count(*)` is encoded as `count` with zero args.
        args: Vec<Expr>,
    },
    /// List index / slice access `expr[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `CASE WHEN cond THEN val ... ELSE val END`.
    Case {
        /// (condition, result) pairs.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result; defaults to null.
        default: Option<Box<Expr>>,
    },
    /// `EXISTS { MATCH <patterns> [WHERE expr] }` — true when the
    /// pattern matches at least once given the current bindings.
    Exists {
        /// Patterns to probe.
        patterns: Vec<PathPattern>,
        /// Optional inner predicate.
        filter: Option<Box<Expr>>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Xor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    In,
    StartsWith,
    EndsWith,
    Contains,
}

impl Expr {
    /// True if the expression contains an aggregate function call
    /// (determines grouping in projections).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::Param(_) | Expr::Var(_) => false,
            Expr::Prop(e, _) => e.contains_aggregate(),
            Expr::List(es) => es.iter().any(Expr::contains_aggregate),
            Expr::Unary(_, e) => e.contains_aggregate(),
            Expr::Binary(_, a, b) => a.contains_aggregate() || b.contains_aggregate(),
            Expr::IsNull(e, _) => e.contains_aggregate(),
            Expr::Call { name, args, .. } => {
                is_aggregate_fn(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Index(a, b) => a.contains_aggregate() || b.contains_aggregate(),
            Expr::Case { branches, default } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || default.as_ref().is_some_and(|d| d.contains_aggregate())
            }
            Expr::Exists { .. } => false,
        }
    }
}

/// True if `name` (lower-case) is an aggregate function.
pub fn is_aggregate_fn(name: &str) -> bool {
    matches!(
        name,
        "count"
            | "collect"
            | "sum"
            | "avg"
            | "min"
            | "max"
            | "percentilecont"
            | "percentiledisc"
            | "stdev"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Call {
            name: "count".into(),
            distinct: true,
            args: vec![],
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Lit(Value::Int(1))),
            Box::new(agg),
        );
        assert!(nested.contains_aggregate());
        let plain = Expr::Call {
            name: "toupper".into(),
            distinct: false,
            args: vec![Expr::Var("x".into())],
        };
        assert!(!plain.contains_aggregate());
    }
}
