//! Epoch-keyed query and plan caching.
//!
//! The paper's workloads re-run a small set of queries against a graph
//! that only changes when a build or a journaled write lands — exactly
//! the shape where a result cache turns repeat traffic into O(1)
//! lookups. This module provides:
//!
//! - [`QueryCache`]: an LRU, byte-bounded cache of full
//!   [`ResultSet`]s, keyed by `(graph_id, epoch, query text, params
//!   fingerprint)`. The graph's [`iyp_graph::Graph::epoch`] is bumped
//!   by every mutation (including journal replay), so **writes
//!   invalidate implicitly**: a stale entry's key simply never matches
//!   again, and no stale read is ever servable. `graph_id` is
//!   process-unique per store instance, so two graphs that happen to
//!   share an epoch can never collide.
//! - A process-global AST cache consulted by
//!   [`crate::Statement::prepare`], so re-preparing the same text
//!   skips the parser.
//! - A process-global [`QueryCache`] (see [`global`]) used by the
//!   [`crate::query`]-family shims and the CLI. It starts **disabled**
//!   (capacity 0); enable it with [`QueryCache::set_capacity`] or the
//!   `IYP_QUERY_CACHE_MB` environment variable. The server builds its
//!   own instance from `serve --cache-mb N` instead.
//!
//! Hits, misses, evictions, and resident bytes are counted in
//! telemetry (`iyp_cypher_cache_*`). All methods take `&self` and are
//! safe to call from concurrent reader threads (one internal mutex; the
//! critical sections are hash-map probes, never query execution).

use crate::ast::Query;
use crate::exec::{Params, ResultSet};
use crate::rtval::RtVal;
use iyp_graph::{Graph, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key for one result: which store state, which query, which
/// parameters. Epoch keying makes invalidation implicit — see the
/// module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ResultKey {
    graph_id: u64,
    epoch: u64,
    text: String,
    params_fp: String,
}

/// A strict-LRU map with external size accounting: every entry carries
/// a byte weight, and inserts evict least-recently-used entries until
/// the total fits the capacity. Recency is a monotonic tick per access,
/// kept in a `BTreeMap<tick, key>` mirror, so get/insert/evict are all
/// O(log n).
struct Lru<K: Eq + Hash + Clone, V> {
    capacity: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<K, (V, usize, u64)>,
    order: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let (value, _, old_tick) = self.map.get_mut(key)?;
        let value = value.clone();
        let old = std::mem::replace(old_tick, tick);
        self.order.remove(&old);
        self.order.insert(tick, key.clone());
        Some(value)
    }

    /// Inserts (replacing any previous entry) and evicts LRU entries
    /// until the cache fits its capacity again. Returns the number of
    /// entries evicted. Entries larger than the whole capacity are
    /// rejected (returning 0) rather than flushing everything else.
    fn insert(&mut self, key: K, value: V, weight: usize) -> usize {
        if weight > self.capacity {
            return 0;
        }
        if let Some((_, old_weight, old_tick)) = self.map.remove(&key) {
            self.bytes -= old_weight;
            self.order.remove(&old_tick);
        }
        self.tick += 1;
        self.map.insert(key.clone(), (value, weight, self.tick));
        self.order.insert(self.tick, key);
        self.bytes += weight;
        let mut evicted = 0;
        while self.bytes > self.capacity {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order.remove(&oldest).expect("tick present");
            let (_, w, _) = self.map.remove(&victim).expect("key present");
            self.bytes -= w;
            evicted += 1;
        }
        evicted
    }

    fn set_capacity(&mut self, capacity: usize) -> usize {
        self.capacity = capacity;
        let mut evicted = 0;
        while self.bytes > self.capacity {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order.remove(&oldest).expect("tick present");
            let (_, w, _) = self.map.remove(&victim).expect("key present");
            self.bytes -= w;
            evicted += 1;
        }
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.bytes = 0;
    }
}

/// An LRU, byte-bounded cache of full query results. See the module
/// docs for keying and invalidation semantics.
pub struct QueryCache {
    inner: Mutex<Lru<ResultKey, Arc<ResultSet>>>,
}

impl QueryCache {
    /// A cache bounded to `max_bytes` of (approximate) resident result
    /// data. Capacity 0 disables the cache: every lookup misses without
    /// touching the hit/miss counters, and inserts are dropped.
    pub fn new(max_bytes: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Lru::new(max_bytes)),
        }
    }

    /// Convenience: a cache bounded to `mb` mebibytes.
    pub fn with_capacity_mb(mb: usize) -> QueryCache {
        QueryCache::new(mb << 20)
    }

    /// True when the cache can hold anything at all.
    pub fn is_enabled(&self) -> bool {
        self.lock().capacity > 0
    }

    /// Resizes the byte budget (0 disables), evicting as needed.
    pub fn set_capacity(&self, max_bytes: usize) {
        let evicted;
        let bytes;
        {
            let mut inner = self.lock();
            evicted = inner.set_capacity(max_bytes);
            if max_bytes == 0 {
                inner.clear();
            }
            bytes = inner.bytes;
        }
        if evicted > 0 {
            iyp_telemetry::counter(iyp_telemetry::names::CYPHER_CACHE_EVICTIONS_TOTAL)
                .add(evicted as u64);
        }
        iyp_telemetry::gauge(iyp_telemetry::names::CYPHER_CACHE_BYTES).set(bytes as i64);
    }

    /// Looks up the result of `text` with `params` against the current
    /// state of `graph`. A `Some` is guaranteed byte-identical to what
    /// executing the query now would produce: the key embeds the
    /// graph's epoch, which every mutation bumps.
    pub fn get(&self, graph: &Graph, text: &str, params: &Params) -> Option<Arc<ResultSet>> {
        let key = ResultKey {
            graph_id: graph.graph_id(),
            epoch: graph.epoch(),
            text: text.to_string(),
            params_fp: fingerprint(params),
        };
        let found = {
            let mut inner = self.lock();
            if inner.capacity == 0 {
                return None;
            }
            inner.get(&key)
        };
        let counter = if found.is_some() {
            iyp_telemetry::names::CYPHER_CACHE_HITS_TOTAL
        } else {
            iyp_telemetry::names::CYPHER_CACHE_MISSES_TOTAL
        };
        iyp_telemetry::counter(counter).incr();
        found
    }

    /// Stores a result under the current `(graph_id, epoch)`. No-op on
    /// a disabled cache or for results larger than the whole budget.
    pub fn insert(&self, graph: &Graph, text: &str, params: &Params, result: Arc<ResultSet>) {
        let weight = approx_result_bytes(&result) + text.len();
        let key = ResultKey {
            graph_id: graph.graph_id(),
            epoch: graph.epoch(),
            text: text.to_string(),
            params_fp: fingerprint(params),
        };
        let evicted;
        let bytes;
        {
            let mut inner = self.lock();
            if inner.capacity == 0 {
                return;
            }
            evicted = inner.insert(key, result, weight);
            bytes = inner.bytes;
        }
        if evicted > 0 {
            iyp_telemetry::counter(iyp_telemetry::names::CYPHER_CACHE_EVICTIONS_TOTAL)
                .add(evicted as u64);
        }
        iyp_telemetry::gauge(iyp_telemetry::names::CYPHER_CACHE_BYTES).set(bytes as i64);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes currently held.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Drops every cached result (the budget is kept).
    pub fn clear(&self) {
        self.lock().clear();
        iyp_telemetry::gauge(iyp_telemetry::names::CYPHER_CACHE_BYTES).set(0);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lru<ResultKey, Arc<ResultSet>>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The process-global result cache used by the [`crate::query`] shims
/// and [`crate::Statement`] runs that don't attach their own cache.
/// Starts disabled (capacity 0) unless `IYP_QUERY_CACHE_MB` is set, so
/// existing workloads keep their exact memory profile until someone
/// opts in (`--cache-mb` in the CLI).
pub fn global() -> &'static QueryCache {
    static GLOBAL: OnceLock<QueryCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let mb = std::env::var("IYP_QUERY_CACHE_MB")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0);
        QueryCache::with_capacity_mb(mb)
    })
}

/// Parsed-AST cache shared by every [`crate::Statement::prepare`]:
/// re-preparing the same text returns the same `Arc<Query>` without
/// touching the parser. Entry count bounded (LRU), content immutable,
/// so there is nothing to invalidate.
pub(crate) fn cached_ast(text: &str) -> Option<Arc<Query>> {
    ast_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&text.to_string())
}

pub(crate) fn store_ast(text: &str, ast: Arc<Query>) {
    ast_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(text.to_string(), ast, 1);
}

fn ast_cache() -> &'static Mutex<Lru<String, Arc<Query>>> {
    static ASTS: OnceLock<Mutex<Lru<String, Arc<Query>>>> = OnceLock::new();
    // Weight 1 per entry: the bound is an entry count, not bytes.
    ASTS.get_or_init(|| Mutex::new(Lru::new(512)))
}

/// A canonical, collision-free rendering of a parameter map: keys
/// sorted, every value length- or bit-prefixed so distinct maps can
/// never serialize identically (`{"a": "1"}` vs `{"a": 1}`, float
/// `1.0` vs int `1`, nested lists, embedded separators).
pub fn fingerprint(params: &Params) -> String {
    let mut keys: Vec<&String> = params.keys().collect();
    keys.sort();
    let mut out = String::new();
    for k in keys {
        out.push_str(&format!("{}:{}=", k.len(), k));
        fp_value(&params[k], &mut out);
    }
    out
}

fn fp_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("n;"),
        Value::Bool(b) => out.push_str(if *b { "b1;" } else { "b0;" }),
        Value::Int(i) => out.push_str(&format!("i{i};")),
        // Bit pattern, not display text: -0.0 vs 0.0 and NaN payloads
        // stay distinct, and no float-formatting ambiguity.
        Value::Float(f) => out.push_str(&format!("f{:016x};", f.to_bits())),
        Value::Str(s) => out.push_str(&format!("s{}:{};", s.len(), s)),
        Value::List(items) => {
            out.push_str(&format!("l{}[", items.len()));
            for item in items {
                fp_value(item, out);
            }
            out.push(']');
        }
    }
}

/// Approximate resident bytes of a result set (struct overhead plus
/// heap payloads). Used for the cache's byte accounting — a budget,
/// not an allocator-exact measurement.
pub fn approx_result_bytes(rs: &ResultSet) -> usize {
    let mut bytes = std::mem::size_of::<ResultSet>();
    for c in &rs.columns {
        bytes += std::mem::size_of::<String>() + c.len();
    }
    for row in &rs.rows {
        bytes += std::mem::size_of::<Vec<RtVal>>();
        for v in row {
            bytes += approx_rtval_bytes(v);
        }
    }
    bytes
}

fn approx_rtval_bytes(v: &RtVal) -> usize {
    std::mem::size_of::<RtVal>()
        + match v {
            RtVal::Scalar(s) => approx_value_bytes(s),
            RtVal::Node(_) | RtVal::Rel(_) => 0,
            RtVal::List(items) => items.iter().map(approx_rtval_bytes).sum(),
        }
}

fn approx_value_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => s.len(),
        Value::List(items) => items
            .iter()
            .map(|i| std::mem::size_of::<Value>() + approx_value_bytes(i))
            .sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::Props;

    fn rs(n: i64) -> Arc<ResultSet> {
        Arc::new(ResultSet {
            columns: vec!["n".into()],
            rows: vec![vec![RtVal::Scalar(Value::Int(n))]],
        })
    }

    #[test]
    fn hit_after_insert_and_implicit_invalidation_on_write() {
        let cache = QueryCache::new(1 << 20);
        let mut g = Graph::new();
        g.merge_node("AS", "asn", 1u32, Props::new());
        let p = Params::new();
        assert!(cache.get(&g, "Q", &p).is_none());
        cache.insert(&g, "Q", &p, rs(1));
        assert_eq!(cache.get(&g, "Q", &p).unwrap().single_int(), Some(1));
        // Any mutation bumps the epoch; the old key no longer matches.
        g.merge_node("AS", "asn", 2u32, Props::new());
        assert!(cache.get(&g, "Q", &p).is_none());
    }

    #[test]
    fn distinct_graphs_never_collide() {
        let cache = QueryCache::new(1 << 20);
        let g1 = Graph::new();
        let g2 = Graph::new();
        let p = Params::new();
        cache.insert(&g1, "Q", &p, rs(1));
        // Same text, same epoch (0), different instance: no hit.
        assert!(cache.get(&g2, "Q", &p).is_none());
        assert_eq!(cache.get(&g1, "Q", &p).unwrap().single_int(), Some(1));
    }

    #[test]
    fn params_fingerprint_distinguishes_types_and_shapes() {
        let mut a = Params::new();
        a.insert("x".into(), Value::Int(1));
        let mut b = Params::new();
        b.insert("x".into(), Value::Str("1".into()));
        let mut c = Params::new();
        c.insert("x".into(), Value::Float(1.0));
        let mut d = Params::new();
        d.insert("x".into(), Value::List(vec![Value::Int(1)]));
        let fps = [
            fingerprint(&a),
            fingerprint(&b),
            fingerprint(&c),
            fingerprint(&d),
        ];
        for (i, x) in fps.iter().enumerate() {
            for y in &fps[i + 1..] {
                assert_ne!(x, y);
            }
        }
        // Key order does not matter.
        let mut e = Params::new();
        e.insert("b".into(), Value::Int(2));
        e.insert("a".into(), Value::Int(1));
        let mut f = Params::new();
        f.insert("a".into(), Value::Int(1));
        f.insert("b".into(), Value::Int(2));
        assert_eq!(fingerprint(&e), fingerprint(&f));
    }

    #[test]
    fn lru_evicts_oldest_under_byte_pressure() {
        let g = Graph::new();
        let p = Params::new();
        let one = approx_result_bytes(&rs(0)) + 1; // weight of each entry ("A".len() == 1)
        let cache = QueryCache::new(2 * one + 1); // room for two entries
        cache.insert(&g, "A", &p, rs(1));
        cache.insert(&g, "B", &p, rs(2));
        assert_eq!(cache.len(), 2);
        // Touch A so B is the LRU victim.
        assert!(cache.get(&g, "A", &p).is_some());
        cache.insert(&g, "C", &p, rs(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&g, "A", &p).is_some());
        assert!(cache.get(&g, "B", &p).is_none());
        assert!(cache.get(&g, "C", &p).is_some());
        assert!(cache.bytes() <= 2 * one + 1);
    }

    #[test]
    fn oversized_results_are_rejected_not_destructive() {
        let g = Graph::new();
        let p = Params::new();
        let cache = QueryCache::new(64);
        let big = Arc::new(ResultSet {
            columns: vec!["s".into()],
            rows: vec![vec![RtVal::Scalar(Value::Str("x".repeat(1024)))]],
        });
        cache.insert(&g, "SMALL", &p, rs(1));
        let before = cache.len();
        cache.insert(&g, "BIG", &p, big);
        assert!(cache.get(&g, "BIG", &p).is_none());
        assert_eq!(cache.len(), before, "oversized insert must not evict");
    }

    #[test]
    fn disabled_cache_is_inert() {
        let g = Graph::new();
        let p = Params::new();
        let cache = QueryCache::new(0);
        assert!(!cache.is_enabled());
        cache.insert(&g, "Q", &p, rs(1));
        assert!(cache.get(&g, "Q", &p).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn set_capacity_shrinks_and_disables() {
        let g = Graph::new();
        let p = Params::new();
        let cache = QueryCache::new(1 << 20);
        cache.insert(&g, "A", &p, rs(1));
        cache.insert(&g, "B", &p, rs(2));
        cache.set_capacity(0);
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
        cache.set_capacity(1 << 20);
        assert!(cache.is_enabled());
        cache.insert(&g, "A", &p, rs(1));
        assert!(cache.get(&g, "A", &p).is_some());
    }
}
