//! Cooperative query cancellation and deadlines.
//!
//! A [`Cancel`] token is threaded through the executor via
//! [`crate::eval::EvalCtx`] and polled at row boundaries — the serial
//! row loops, the candidate loops of the pattern matcher, the
//! projection paths, and inside the `par` worker chunks — so a hostile
//! or runaway query stops within one row's worth of work instead of
//! pinning its thread. Queries run without a token pay only an
//! `Option` check per row.

use crate::error::CypherError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A deadline/cancel token. `Sync`: parallel workers poll it too.
#[derive(Debug)]
pub struct Cancel {
    started: Instant,
    deadline: Option<Instant>,
    cancelled: AtomicBool,
}

impl Cancel {
    /// A token with no deadline; it only trips via [`Cancel::cancel`].
    pub fn new() -> Cancel {
        Cancel {
            started: Instant::now(),
            deadline: None,
            cancelled: AtomicBool::new(false),
        }
    }

    /// A token that trips once `limit` wall-clock time has elapsed.
    pub fn with_timeout(limit: Duration) -> Cancel {
        let started = Instant::now();
        Cancel {
            started,
            deadline: started.checked_add(limit),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Trips the token; every subsequent [`Cancel::check`] fails.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Wall-clock time since the token was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Polls the token; returns `CypherError::Timeout` once tripped.
    /// Called at row boundaries, so one poll per unit of real work.
    #[inline]
    pub fn check(&self) -> Result<(), CypherError> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(self.timeout_error());
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.cancelled.store(true, Ordering::Relaxed);
                return Err(self.timeout_error());
            }
        }
        Ok(())
    }

    fn timeout_error(&self) -> CypherError {
        CypherError::Timeout {
            after_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

impl Default for Cancel {
    fn default() -> Self {
        Cancel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes() {
        let c = Cancel::new();
        assert!(c.check().is_ok());
        assert!(!c.is_cancelled());
    }

    #[test]
    fn cancelled_token_fails() {
        let c = Cancel::new();
        c.cancel();
        assert!(c.is_cancelled());
        assert!(matches!(c.check(), Err(CypherError::Timeout { .. })));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let c = Cancel::with_timeout(Duration::ZERO);
        assert!(c.check().is_err());
        // The trip is sticky.
        assert!(c.is_cancelled());
    }

    #[test]
    fn generous_deadline_passes() {
        let c = Cancel::with_timeout(Duration::from_secs(3600));
        assert!(c.check().is_ok());
    }

    #[test]
    fn timeout_error_is_structured() {
        let c = Cancel::with_timeout(Duration::ZERO);
        let e = c.check().unwrap_err();
        assert!(e.to_string().starts_with("timeout: "), "{e}");
    }
}
