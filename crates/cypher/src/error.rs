//! Query errors.

use std::fmt;

/// Errors raised while lexing, parsing, or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CypherError {
    /// Lexical error with byte position.
    Lex { pos: usize, msg: String },
    /// Parse error with token position and message.
    Parse { pos: usize, msg: String },
    /// Runtime error (type mismatch, unknown function, …).
    Runtime(String),
    /// The query was cancelled at a row boundary after exceeding its
    /// deadline (or being cancelled explicitly).
    Timeout {
        /// Wall-clock milliseconds the query had run when cancelled.
        after_ms: u64,
    },
}

impl CypherError {
    pub(crate) fn runtime(msg: impl Into<String>) -> Self {
        CypherError::Runtime(msg.into())
    }
}

impl fmt::Display for CypherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CypherError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            CypherError::Parse { pos, msg } => write!(f, "parse error near token {pos}: {msg}"),
            CypherError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            CypherError::Timeout { after_ms } => write!(
                f,
                "timeout: query cancelled at a row boundary after {after_ms} ms"
            ),
        }
    }
}

impl std::error::Error for CypherError {}
