//! Expression evaluation (non-aggregate).

use crate::ast::{BinOp, Expr, PathPattern, UnaryOp};
use crate::error::CypherError;
use crate::rtval::RtVal;
use iyp_graph::{Graph, Value};
use std::collections::HashMap;

/// A row of variable bindings.
pub type Row = HashMap<String, RtVal>;

/// Callback used to evaluate `EXISTS { … }` subqueries; installed by
/// the executor (which owns the pattern matcher). `Sync` because the
/// parallel matcher evaluates predicates from worker threads.
pub type ExistsHook<'g> =
    dyn Fn(&[PathPattern], &Row, Option<&Expr>) -> Result<bool, CypherError> + Sync + 'g;

/// Evaluation context: the graph plus query parameters.
pub struct EvalCtx<'g> {
    /// The graph being queried.
    pub graph: &'g Graph,
    /// Query parameters (`$name`).
    pub params: &'g HashMap<String, Value>,
    /// `EXISTS { … }` evaluator, when running under the executor.
    pub exists: Option<&'g ExistsHook<'g>>,
    /// Deadline/cancel token, polled at row boundaries.
    pub cancel: Option<&'g crate::cancel::Cancel>,
}

impl<'g> EvalCtx<'g> {
    /// A context with no `EXISTS` hook and no cancel token.
    pub fn new(graph: &'g Graph, params: &'g HashMap<String, Value>) -> EvalCtx<'g> {
        EvalCtx {
            graph,
            params,
            exists: None,
            cancel: None,
        }
    }

    /// Polls the cancel token, if any. Called at row boundaries by the
    /// executor; a query with no token pays only this `Option` check.
    #[inline]
    pub fn check_cancel(&self) -> Result<(), CypherError> {
        match self.cancel {
            None => Ok(()),
            Some(c) => c.check(),
        }
    }
    /// Evaluates an expression in a row. Aggregate calls are rejected —
    /// the executor evaluates those over groups.
    pub fn eval(&self, expr: &Expr, row: &Row) -> Result<RtVal, CypherError> {
        match expr {
            Expr::Lit(v) => Ok(RtVal::Scalar(v.clone())),
            Expr::Param(p) => Ok(RtVal::Scalar(
                self.params.get(p).cloned().unwrap_or(Value::Null),
            )),
            Expr::Var(v) => row
                .get(v)
                .cloned()
                .ok_or_else(|| CypherError::runtime(format!("undefined variable `{v}`"))),
            Expr::Prop(e, key) => {
                let base = self.eval(e, row)?;
                Ok(base.prop(self.graph, key))
            }
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval(e, row)?);
                }
                // Keep as scalar list when possible (common case).
                if out.iter().all(|v| matches!(v, RtVal::Scalar(_))) {
                    Ok(RtVal::Scalar(Value::List(
                        out.into_iter()
                            .map(|v| match v {
                                RtVal::Scalar(s) => s,
                                _ => unreachable!(),
                            })
                            .collect(),
                    )))
                } else {
                    Ok(RtVal::List(out))
                }
            }
            Expr::Unary(op, e) => {
                let v = self.eval(e, row)?;
                match op {
                    UnaryOp::Not => Ok(match truth(&v) {
                        Some(b) => RtVal::Scalar(Value::Bool(!b)),
                        None => RtVal::null(),
                    }),
                    UnaryOp::Neg => match v.as_scalar() {
                        Some(Value::Int(i)) => Ok(RtVal::Scalar(Value::Int(-i))),
                        Some(Value::Float(f)) => Ok(RtVal::Scalar(Value::Float(-f))),
                        Some(Value::Null) => Ok(RtVal::null()),
                        _ => Err(CypherError::runtime("cannot negate a non-number")),
                    },
                }
            }
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b, row),
            Expr::IsNull(e, negated) => {
                let v = self.eval(e, row)?;
                let is_null = v.is_null();
                Ok(RtVal::Scalar(Value::Bool(if *negated {
                    !is_null
                } else {
                    is_null
                })))
            }
            Expr::Call { name, args, .. } => self.eval_fn(name, args, row),
            Expr::Index(e, idx) => {
                let list = self.eval(e, row)?;
                let i = self.eval(idx, row)?;
                let Some(Value::Int(i)) = i.as_scalar().cloned() else {
                    return Ok(RtVal::null());
                };
                let items = match list.as_list() {
                    Some(items) => items,
                    None => return Ok(RtVal::null()),
                };
                let n = items.len() as i64;
                let i = if i < 0 { i + n } else { i };
                if i < 0 || i >= n {
                    Ok(RtVal::null())
                } else {
                    Ok(items[i as usize].clone())
                }
            }
            Expr::Case { branches, default } => {
                for (cond, val) in branches {
                    if truth(&self.eval(cond, row)?) == Some(true) {
                        return self.eval(val, row);
                    }
                }
                match default {
                    Some(d) => self.eval(d, row),
                    None => Ok(RtVal::null()),
                }
            }
            Expr::Exists { patterns, filter } => match self.exists {
                Some(hook) => {
                    let found = hook(patterns, row, filter.as_deref())?;
                    Ok(RtVal::Scalar(Value::Bool(found)))
                }
                None => Err(CypherError::runtime(
                    "EXISTS { … } is not supported in this context",
                )),
            },
        }
    }

    fn eval_binary(&self, op: BinOp, a: &Expr, b: &Expr, row: &Row) -> Result<RtVal, CypherError> {
        // Three-valued logic short-circuits.
        match op {
            BinOp::And => {
                let l = truth(&self.eval(a, row)?);
                if l == Some(false) {
                    return Ok(RtVal::Scalar(Value::Bool(false)));
                }
                let r = truth(&self.eval(b, row)?);
                return Ok(match (l, r) {
                    (_, Some(false)) => RtVal::Scalar(Value::Bool(false)),
                    (Some(true), Some(true)) => RtVal::Scalar(Value::Bool(true)),
                    _ => RtVal::null(),
                });
            }
            BinOp::Or => {
                let l = truth(&self.eval(a, row)?);
                if l == Some(true) {
                    return Ok(RtVal::Scalar(Value::Bool(true)));
                }
                let r = truth(&self.eval(b, row)?);
                return Ok(match (l, r) {
                    (_, Some(true)) => RtVal::Scalar(Value::Bool(true)),
                    (Some(false), Some(false)) => RtVal::Scalar(Value::Bool(false)),
                    _ => RtVal::null(),
                });
            }
            BinOp::Xor => {
                let l = truth(&self.eval(a, row)?);
                let r = truth(&self.eval(b, row)?);
                return Ok(match (l, r) {
                    (Some(x), Some(y)) => RtVal::Scalar(Value::Bool(x ^ y)),
                    _ => RtVal::null(),
                });
            }
            _ => {}
        }

        let lhs = self.eval(a, row)?;
        let rhs = self.eval(b, row)?;
        match op {
            BinOp::Eq | BinOp::Ne => {
                let eq = rt_eq(&lhs, &rhs);
                Ok(match eq {
                    None => RtVal::null(),
                    Some(e) => RtVal::Scalar(Value::Bool(if op == BinOp::Eq { e } else { !e })),
                })
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let (Some(x), Some(y)) = (lhs.as_scalar(), rhs.as_scalar()) else {
                    return Ok(RtVal::null());
                };
                if x.is_null() || y.is_null() {
                    return Ok(RtVal::null());
                }
                // Comparable kinds: both numbers or both strings.
                let cmp = match (x, y) {
                    (Value::Str(a), Value::Str(b)) => a.cmp(b),
                    _ => match (x.as_float(), y.as_float()) {
                        (Some(a), Some(b)) => {
                            a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
                        }
                        _ => return Ok(RtVal::null()),
                    },
                };
                use std::cmp::Ordering::*;
                let b = match op {
                    BinOp::Lt => cmp == Less,
                    BinOp::Le => cmp != Greater,
                    BinOp::Gt => cmp == Greater,
                    BinOp::Ge => cmp != Less,
                    _ => unreachable!(),
                };
                Ok(RtVal::Scalar(Value::Bool(b)))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::Pow => {
                self.arith(op, &lhs, &rhs)
            }
            BinOp::In => {
                if lhs.is_null() {
                    return Ok(RtVal::null());
                }
                let Some(items) = rhs.as_list() else {
                    return Ok(RtVal::null());
                };
                let found = items.iter().any(|i| rt_eq(&lhs, i) == Some(true));
                Ok(RtVal::Scalar(Value::Bool(found)))
            }
            BinOp::StartsWith | BinOp::EndsWith | BinOp::Contains => {
                let (Some(Value::Str(s)), Some(Value::Str(t))) = (lhs.as_scalar(), rhs.as_scalar())
                else {
                    return Ok(RtVal::null());
                };
                let b = match op {
                    BinOp::StartsWith => s.starts_with(t.as_str()),
                    BinOp::EndsWith => s.ends_with(t.as_str()),
                    BinOp::Contains => s.contains(t.as_str()),
                    _ => unreachable!(),
                };
                Ok(RtVal::Scalar(Value::Bool(b)))
            }
            BinOp::And | BinOp::Or | BinOp::Xor => unreachable!("handled above"),
        }
    }

    fn arith(&self, op: BinOp, lhs: &RtVal, rhs: &RtVal) -> Result<RtVal, CypherError> {
        let (Some(x), Some(y)) = (lhs.as_scalar(), rhs.as_scalar()) else {
            return Ok(RtVal::null());
        };
        if x.is_null() || y.is_null() {
            return Ok(RtVal::null());
        }
        // String / list concatenation with +.
        if op == BinOp::Add {
            if let (Value::Str(a), Value::Str(b)) = (x, y) {
                return Ok(RtVal::Scalar(Value::Str(format!("{a}{b}"))));
            }
            if let (Value::List(a), Value::List(b)) = (x, y) {
                let mut out = a.clone();
                out.extend(b.clone());
                return Ok(RtVal::Scalar(Value::List(out)));
            }
            // string + number renders the number.
            if let (Value::Str(a), other) = (x, y) {
                return Ok(RtVal::Scalar(Value::Str(format!("{a}{other}"))));
            }
            if let (other, Value::Str(b)) = (x, y) {
                return Ok(RtVal::Scalar(Value::Str(format!("{other}{b}"))));
            }
        }
        match (x, y) {
            (Value::Int(a), Value::Int(b)) => {
                let r = match op {
                    BinOp::Add => a.checked_add(*b),
                    BinOp::Sub => a.checked_sub(*b),
                    BinOp::Mul => a.checked_mul(*b),
                    BinOp::Div => {
                        if *b == 0 {
                            return Err(CypherError::runtime("division by zero"));
                        }
                        a.checked_div(*b)
                    }
                    BinOp::Mod => {
                        if *b == 0 {
                            return Err(CypherError::runtime("modulo by zero"));
                        }
                        a.checked_rem(*b)
                    }
                    BinOp::Pow => {
                        return Ok(RtVal::Scalar(Value::Float((*a as f64).powf(*b as f64))))
                    }
                    _ => unreachable!(),
                };
                r.map(|v| RtVal::Scalar(Value::Int(v)))
                    .ok_or_else(|| CypherError::runtime("integer overflow"))
            }
            _ => {
                let (Some(a), Some(b)) = (x.as_float(), y.as_float()) else {
                    return Err(CypherError::runtime(format!(
                        "type error: cannot apply {op:?} to {x} and {y}"
                    )));
                };
                let r = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Mod => a % b,
                    BinOp::Pow => a.powf(b),
                    _ => unreachable!(),
                };
                Ok(RtVal::Scalar(Value::Float(r)))
            }
        }
    }

    fn eval_fn(&self, name: &str, args: &[Expr], row: &Row) -> Result<RtVal, CypherError> {
        if crate::ast::is_aggregate_fn(name) {
            return Err(CypherError::runtime(format!(
                "aggregate function {name}() in a non-aggregating position"
            )));
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, row)?);
        }
        let arg_str = |i: usize| -> Option<String> {
            vals.get(i)
                .and_then(|v| v.as_scalar())
                .and_then(|v| v.as_str())
                .map(String::from)
        };
        match name {
            "toupper" => Ok(RtVal::Scalar(match arg_str(0) {
                Some(s) => Value::Str(s.to_uppercase()),
                None => Value::Null,
            })),
            "tolower" => Ok(RtVal::Scalar(match arg_str(0) {
                Some(s) => Value::Str(s.to_lowercase()),
                None => Value::Null,
            })),
            "trim" => Ok(RtVal::Scalar(match arg_str(0) {
                Some(s) => Value::Str(s.trim().to_string()),
                None => Value::Null,
            })),
            "reverse" => Ok(RtVal::Scalar(match arg_str(0) {
                Some(s) => Value::Str(s.chars().rev().collect()),
                None => Value::Null,
            })),
            "replace" => {
                let (Some(s), Some(from), Some(to)) = (arg_str(0), arg_str(1), arg_str(2)) else {
                    return Ok(RtVal::null());
                };
                Ok(RtVal::Scalar(Value::Str(s.replace(&from, &to))))
            }
            "split" => {
                let (Some(s), Some(sep)) = (arg_str(0), arg_str(1)) else {
                    return Ok(RtVal::null());
                };
                Ok(RtVal::Scalar(Value::List(
                    s.split(sep.as_str())
                        .map(|p| Value::Str(p.to_string()))
                        .collect(),
                )))
            }
            "substring" => {
                let Some(s) = arg_str(0) else {
                    return Ok(RtVal::null());
                };
                let start = vals
                    .get(1)
                    .and_then(|v| v.as_scalar())
                    .and_then(|v| v.as_int())
                    .unwrap_or(0)
                    .max(0) as usize;
                let len = vals
                    .get(2)
                    .and_then(|v| v.as_scalar())
                    .and_then(|v| v.as_int());
                let chars: Vec<char> = s.chars().collect();
                let end = match len {
                    Some(l) => (start + l.max(0) as usize).min(chars.len()),
                    None => chars.len(),
                };
                let start = start.min(chars.len());
                Ok(RtVal::Scalar(Value::Str(
                    chars[start..end].iter().collect(),
                )))
            }
            "size" => match vals.first() {
                Some(RtVal::Scalar(Value::Str(s))) => {
                    Ok(RtVal::Scalar(Value::Int(s.chars().count() as i64)))
                }
                Some(v) => match v.as_list() {
                    Some(l) => Ok(RtVal::Scalar(Value::Int(l.len() as i64))),
                    None => Ok(RtVal::null()),
                },
                None => Ok(RtVal::null()),
            },
            "head" => match vals.first().and_then(|v| v.as_list()) {
                Some(l) => Ok(l.first().cloned().unwrap_or_else(RtVal::null)),
                None => Ok(RtVal::null()),
            },
            "last" => match vals.first().and_then(|v| v.as_list()) {
                Some(l) => Ok(l.last().cloned().unwrap_or_else(RtVal::null)),
                None => Ok(RtVal::null()),
            },
            "coalesce" => Ok(vals
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or_else(RtVal::null)),
            "abs" => match vals.first().and_then(|v| v.as_scalar()) {
                Some(Value::Int(i)) => Ok(RtVal::Scalar(Value::Int(i.abs()))),
                Some(Value::Float(f)) => Ok(RtVal::Scalar(Value::Float(f.abs()))),
                _ => Ok(RtVal::null()),
            },
            "round" => match vals
                .first()
                .and_then(|v| v.as_scalar())
                .and_then(|v| v.as_float())
            {
                Some(f) => Ok(RtVal::Scalar(Value::Float(f.round()))),
                None => Ok(RtVal::null()),
            },
            "floor" => match vals
                .first()
                .and_then(|v| v.as_scalar())
                .and_then(|v| v.as_float())
            {
                Some(f) => Ok(RtVal::Scalar(Value::Float(f.floor()))),
                None => Ok(RtVal::null()),
            },
            "ceil" => match vals
                .first()
                .and_then(|v| v.as_scalar())
                .and_then(|v| v.as_float())
            {
                Some(f) => Ok(RtVal::Scalar(Value::Float(f.ceil()))),
                None => Ok(RtVal::null()),
            },
            "tointeger" => match vals.first().and_then(|v| v.as_scalar()) {
                Some(Value::Int(i)) => Ok(RtVal::Scalar(Value::Int(*i))),
                Some(Value::Float(f)) => Ok(RtVal::Scalar(Value::Int(*f as i64))),
                Some(Value::Str(s)) => Ok(RtVal::Scalar(
                    s.trim()
                        .parse::<i64>()
                        .map(Value::Int)
                        .unwrap_or(Value::Null),
                )),
                _ => Ok(RtVal::null()),
            },
            "tofloat" => match vals.first().and_then(|v| v.as_scalar()) {
                Some(Value::Int(i)) => Ok(RtVal::Scalar(Value::Float(*i as f64))),
                Some(Value::Float(f)) => Ok(RtVal::Scalar(Value::Float(*f))),
                Some(Value::Str(s)) => Ok(RtVal::Scalar(
                    s.trim()
                        .parse::<f64>()
                        .map(Value::Float)
                        .unwrap_or(Value::Null),
                )),
                _ => Ok(RtVal::null()),
            },
            "tostring" => match vals.first() {
                Some(RtVal::Scalar(Value::Null)) | None => Ok(RtVal::null()),
                Some(v) => Ok(RtVal::Scalar(Value::Str(v.render(self.graph)))),
            },
            "labels" => match vals.first().and_then(|v| v.as_node()) {
                Some(id) => {
                    let labels = self
                        .graph
                        .node(id)
                        .map(|n| {
                            n.labels
                                .iter()
                                .map(|l| Value::Str(self.graph.symbols().label_name(*l).into()))
                                .collect()
                        })
                        .unwrap_or_default();
                    Ok(RtVal::Scalar(Value::List(labels)))
                }
                None => Ok(RtVal::null()),
            },
            "type" => match vals.first().and_then(|v| v.as_rel()) {
                Some(id) => Ok(RtVal::Scalar(match self.graph.rel(id) {
                    Some(r) => {
                        Value::Str(self.graph.symbols().rel_type_name(r.rel_type).to_string())
                    }
                    None => Value::Null,
                })),
                None => Ok(RtVal::null()),
            },
            "id" => match vals.first() {
                Some(RtVal::Node(n)) => Ok(RtVal::Scalar(Value::Int(n.0 as i64))),
                Some(RtVal::Rel(r)) => Ok(RtVal::Scalar(Value::Int(r.0 as i64))),
                _ => Ok(RtVal::null()),
            },
            "startnode" | "endnode" => match vals.first().and_then(|v| v.as_rel()) {
                Some(id) => match self.graph.rel(id) {
                    Some(r) => Ok(RtVal::Node(if name == "startnode" { r.src } else { r.dst })),
                    None => Ok(RtVal::null()),
                },
                None => Ok(RtVal::null()),
            },
            "keys" => {
                let keys = match vals.first() {
                    Some(RtVal::Node(n)) => self
                        .graph
                        .node(*n)
                        .map(|n| n.props.keys().cloned().collect::<Vec<_>>()),
                    Some(RtVal::Rel(r)) => self
                        .graph
                        .rel(*r)
                        .map(|r| r.props.keys().cloned().collect::<Vec<_>>()),
                    _ => None,
                };
                Ok(match keys {
                    Some(k) => RtVal::Scalar(Value::List(k.into_iter().map(Value::Str).collect())),
                    None => RtVal::null(),
                })
            }
            "range" => {
                let get = |i: usize| {
                    vals.get(i)
                        .and_then(|v| v.as_scalar())
                        .and_then(|v| v.as_int())
                };
                let (Some(start), Some(end)) = (get(0), get(1)) else {
                    return Ok(RtVal::null());
                };
                let step = get(2).unwrap_or(1);
                if step == 0 {
                    return Err(CypherError::runtime("range() step must be non-zero"));
                }
                let mut out = Vec::new();
                let mut x = start;
                while (step > 0 && x <= end) || (step < 0 && x >= end) {
                    out.push(Value::Int(x));
                    if out.len() > 1_000_000 {
                        return Err(CypherError::runtime("range() too large"));
                    }
                    x += step;
                }
                Ok(RtVal::Scalar(Value::List(out)))
            }
            "properties" => match vals.first() {
                Some(RtVal::Node(n)) => Ok(RtVal::Scalar(Value::List(
                    self.graph
                        .node(*n)
                        .map(|n| {
                            n.props
                                .iter()
                                .map(|(k, v)| Value::List(vec![Value::Str(k.clone()), v.clone()]))
                                .collect()
                        })
                        .unwrap_or_default(),
                ))),
                _ => Ok(RtVal::null()),
            },
            other => Err(CypherError::runtime(format!("unknown function {other}()"))),
        }
    }
}

/// Three-valued truthiness: Some(true/false) or None for null.
pub fn truth(v: &RtVal) -> Option<bool> {
    match v {
        RtVal::Scalar(Value::Null) => None,
        RtVal::Scalar(Value::Bool(b)) => Some(*b),
        RtVal::Scalar(v) => Some(v.is_truthy()),
        _ => Some(true),
    }
}

/// Cypher equality over runtime values; `None` means unknown (null).
pub fn rt_eq(a: &RtVal, b: &RtVal) -> Option<bool> {
    match (a, b) {
        (RtVal::Scalar(x), RtVal::Scalar(y)) => x.cypher_eq(y),
        (RtVal::Node(x), RtVal::Node(y)) => Some(x == y),
        (RtVal::Rel(x), RtVal::Rel(y)) => Some(x == y),
        (RtVal::List(x), RtVal::List(y)) => {
            if x.len() != y.len() {
                return Some(false);
            }
            let mut all = Some(true);
            for (i, j) in x.iter().zip(y.iter()) {
                match rt_eq(i, j) {
                    Some(true) => {}
                    Some(false) => return Some(false),
                    None => all = None,
                }
            }
            all
        }
        (RtVal::List(_), RtVal::Scalar(Value::List(_)))
        | (RtVal::Scalar(Value::List(_)), RtVal::List(_)) => {
            let (Some(x), Some(y)) = (a.as_list(), b.as_list()) else {
                return Some(false);
            };
            rt_eq(&RtVal::List(x), &RtVal::List(y))
        }
        (RtVal::Scalar(Value::Null), _) | (_, RtVal::Scalar(Value::Null)) => None,
        _ => Some(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Clause;
    use crate::parser::parse;
    use iyp_graph::props;

    fn eval_str(expr_text: &str) -> RtVal {
        // Parse via a dummy RETURN.
        let q = parse(&format!("MATCH (n) RETURN {expr_text}")).unwrap();
        let Clause::Return(p) = &q.clauses[1] else {
            panic!()
        };
        let graph = Graph::new();
        let params = HashMap::new();
        let ctx = EvalCtx::new(&graph, &params);
        let mut row = Row::new();
        row.insert("n".into(), RtVal::null());
        ctx.eval(&p.items[0].expr, &row).unwrap()
    }

    fn scalar(v: RtVal) -> Value {
        v.as_scalar().unwrap().clone()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(scalar(eval_str("1 + 2 * 3")), Value::Int(7));
        assert_eq!(scalar(eval_str("(1 + 2) * 3")), Value::Int(9));
        assert_eq!(scalar(eval_str("7 / 2")), Value::Int(3));
        assert_eq!(scalar(eval_str("7.0 / 2")), Value::Float(3.5));
        assert_eq!(scalar(eval_str("7 % 3")), Value::Int(1));
        assert_eq!(scalar(eval_str("-5")), Value::Int(-5));
        assert_eq!(scalar(eval_str("2 ^ 10")), Value::Float(1024.0));
    }

    #[test]
    fn string_ops() {
        assert_eq!(scalar(eval_str("'a' + 'b'")), Value::Str("ab".into()));
        assert_eq!(scalar(eval_str("'ab' STARTS WITH 'a'")), Value::Bool(true));
        assert_eq!(scalar(eval_str("'ab' ENDS WITH 'a'")), Value::Bool(false));
        assert_eq!(scalar(eval_str("'abc' CONTAINS 'b'")), Value::Bool(true));
        assert_eq!(
            scalar(eval_str("toUpper('rpki')")),
            Value::Str("RPKI".into())
        );
        assert_eq!(scalar(eval_str("size('abc')")), Value::Int(3));
        assert_eq!(
            scalar(eval_str("split('a.b.c', '.')")),
            Value::List(vec!["a".into(), "b".into(), "c".into()])
        );
        assert_eq!(
            scalar(eval_str("substring('abcdef', 1, 3)")),
            Value::Str("bcd".into())
        );
        assert_eq!(
            scalar(eval_str("replace('a-b', '-', '.')")),
            Value::Str("a.b".into())
        );
    }

    #[test]
    fn null_propagation() {
        assert!(eval_str("null + 1").is_null());
        assert!(eval_str("null = 1").is_null());
        assert!(eval_str("null STARTS WITH 'a'").is_null());
        assert_eq!(scalar(eval_str("null IS NULL")), Value::Bool(true));
        assert_eq!(scalar(eval_str("1 IS NOT NULL")), Value::Bool(true));
        assert_eq!(scalar(eval_str("coalesce(null, null, 3)")), Value::Int(3));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(scalar(eval_str("true AND false")), Value::Bool(false));
        assert!(eval_str("true AND null").is_null());
        assert_eq!(scalar(eval_str("false AND null")), Value::Bool(false));
        assert_eq!(scalar(eval_str("true OR null")), Value::Bool(true));
        assert!(eval_str("false OR null").is_null());
        assert_eq!(scalar(eval_str("NOT false")), Value::Bool(true));
        assert!(eval_str("NOT null").is_null());
        assert_eq!(scalar(eval_str("true XOR false")), Value::Bool(true));
    }

    #[test]
    fn in_operator_and_lists() {
        assert_eq!(scalar(eval_str("2 IN [1,2,3]")), Value::Bool(true));
        assert_eq!(scalar(eval_str("5 IN [1,2,3]")), Value::Bool(false));
        assert_eq!(scalar(eval_str("[1,2,3][0]")), Value::Int(1));
        assert_eq!(scalar(eval_str("[1,2,3][-1]")), Value::Int(3));
        assert!(eval_str("[1,2,3][9]").is_null());
        assert_eq!(scalar(eval_str("head([4,5])")), Value::Int(4));
        assert_eq!(scalar(eval_str("last([4,5])")), Value::Int(5));
        assert_eq!(scalar(eval_str("size([4,5])")), Value::Int(2));
    }

    #[test]
    fn comparisons() {
        assert_eq!(scalar(eval_str("1 < 2")), Value::Bool(true));
        assert_eq!(scalar(eval_str("2.5 >= 2")), Value::Bool(true));
        assert_eq!(scalar(eval_str("'a' < 'b'")), Value::Bool(true));
        assert_eq!(scalar(eval_str("1 <> 2")), Value::Bool(true));
        assert!(eval_str("1 < 'a'").is_null());
    }

    #[test]
    fn case_expression() {
        assert_eq!(
            scalar(eval_str(
                "CASE WHEN 1 = 2 THEN 'x' WHEN 2 = 2 THEN 'y' ELSE 'z' END"
            )),
            Value::Str("y".into())
        );
        assert_eq!(
            scalar(eval_str("CASE WHEN false THEN 'x' END")),
            Value::Null
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(scalar(eval_str("toInteger('42')")), Value::Int(42));
        assert_eq!(scalar(eval_str("toInteger('x')")), Value::Null);
        assert_eq!(scalar(eval_str("toFloat('2.5')")), Value::Float(2.5));
        assert_eq!(scalar(eval_str("toString(42)")), Value::Str("42".into()));
        assert_eq!(scalar(eval_str("abs(-3)")), Value::Int(3));
        assert_eq!(scalar(eval_str("round(2.6)")), Value::Float(3.0));
    }

    #[test]
    fn division_by_zero_errors() {
        let q = parse("MATCH (n) RETURN 1 / 0").unwrap();
        let Clause::Return(p) = &q.clauses[1] else {
            panic!()
        };
        let graph = Graph::new();
        let params = HashMap::new();
        let ctx = EvalCtx::new(&graph, &params);
        let mut row = Row::new();
        row.insert("n".into(), RtVal::null());
        assert!(ctx.eval(&p.items[0].expr, &row).is_err());
    }

    #[test]
    fn graph_functions() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, props([("name", "IIJ".into())]));
        let b = g.merge_node("AS", "asn", 64496u32, Props::new());
        let r = g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        let params = HashMap::new();
        let ctx = EvalCtx::new(&g, &params);
        let mut row = Row::new();
        row.insert("a".into(), RtVal::Node(a));
        row.insert("r".into(), RtVal::Rel(r));

        let q = parse("MATCH (n) RETURN labels(a), type(r), id(a), a.name").unwrap();
        let Clause::Return(p) = &q.clauses[1] else {
            panic!()
        };
        let labels = ctx.eval(&p.items[0].expr, &row).unwrap();
        assert_eq!(
            labels.as_scalar().unwrap().as_list().unwrap()[0],
            Value::Str("AS".into())
        );
        let t = ctx.eval(&p.items[1].expr, &row).unwrap();
        assert_eq!(t.as_scalar().unwrap().as_str(), Some("PEERS_WITH"));
        let id = ctx.eval(&p.items[2].expr, &row).unwrap();
        assert_eq!(id.as_scalar().unwrap().as_int(), Some(a.0 as i64));
        let name = ctx.eval(&p.items[3].expr, &row).unwrap();
        assert_eq!(name.as_scalar().unwrap().as_str(), Some("IIJ"));
    }

    use iyp_graph::Props;
}
