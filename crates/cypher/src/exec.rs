//! Query execution: pattern matching, pipelines, aggregation.

use crate::ast::*;
use crate::cancel::Cancel;
use crate::error::CypherError;
use crate::eval::{rt_eq, truth, EvalCtx, Row};
use crate::par::{self, ParCapture};
use crate::plan::{annotate, plan_query, ClauseStat, PlanNode};
use crate::rtval::{GroupKey, RtVal};
use iyp_graph::{Direction, Graph, KeyValue, NodeId, Rel, RelId, Value};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Query parameters.
pub type Params = HashMap<String, Value>;

/// The result of a query: named columns and rows of runtime values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Column names (projection aliases).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<RtVal>>,
}

impl ResultSet {
    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Iterates the values of one column.
    pub fn column_values<'a>(&'a self, name: &str) -> Box<dyn Iterator<Item = &'a RtVal> + 'a> {
        match self.column(name) {
            Some(i) => Box::new(self.rows.iter().map(move |r| &r[i])),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Convenience: the single value of a one-row, one-column result.
    pub fn single(&self) -> Option<&RtVal> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Convenience: single integer result (e.g. `RETURN count(...)`).
    pub fn single_int(&self) -> Option<i64> {
        self.single()?.as_scalar()?.as_int()
    }

    /// Renders an ASCII table of the results (for examples and debugging).
    pub fn render(&self, graph: &Graph) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(self.columns.join(" | ").len().max(4)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.render(graph)).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// Parses and executes `text` against `graph` with the given parameters.
///
/// Queries prefixed with `EXPLAIN` return their execution plan (one
/// `plan` column, one row per plan line) without running; `PROFILE`
/// runs the query and returns the plan annotated with per-operator
/// rows-produced and wall time.
///
/// Thin shim over [`crate::Statement`]; the prepared AST and (when
/// [`crate::cache::global`] is enabled) the result are served from
/// their caches.
pub fn query(graph: &Graph, text: &str, params: &Params) -> Result<ResultSet, CypherError> {
    crate::Statement::prepare(text)?.params(params).run(graph)
}

/// Like [`query`], but polls `cancel` at row boundaries (including
/// inside parallel workers): once the token trips — by deadline or an
/// explicit [`Cancel::cancel`] — execution stops with
/// [`CypherError::Timeout`] within one row's worth of work. Results of
/// queries that finish before the deadline are identical to [`query`].
pub fn query_with_cancel(
    graph: &Graph,
    text: &str,
    params: &Params,
    cancel: &Cancel,
) -> Result<ResultSet, CypherError> {
    crate::Statement::prepare(text)?
        .params(params)
        .cancel(cancel)
        .run(graph)
}

/// Builds the execution plan for `text` without running it.
///
/// Thin shim over [`crate::Statement::explain`].
pub fn explain(graph: &Graph, text: &str) -> Result<PlanNode, CypherError> {
    Ok(crate::Statement::prepare(text)?.explain(graph))
}

/// Runs `text` and returns both its result and the execution plan
/// annotated with per-operator rows-produced and wall time.
///
/// Thin shim over [`crate::Statement::profile`].
pub fn profile(
    graph: &Graph,
    text: &str,
    params: &Params,
) -> Result<(ResultSet, PlanNode), CypherError> {
    crate::Statement::prepare(text)?
        .params(params)
        .profile(graph)
}

pub(crate) fn run_profiled(
    graph: &Graph,
    ast: &Query,
    params: &Params,
    cancel: Option<&Cancel>,
) -> Result<(ResultSet, PlanNode), CypherError> {
    let mut stats = Vec::with_capacity(ast.clauses.len());
    let result = execute_observed(graph, ast, params, Some(&mut stats), cancel)?;
    let plan = annotate(plan_query(graph, ast), &stats);
    Ok((result, plan))
}

/// Shapes a rendered plan as a result set: one `plan` column, one row
/// per plan line (so plans flow through the text protocol unchanged).
pub(crate) fn plan_result(plan: &PlanNode) -> ResultSet {
    ResultSet {
        columns: vec!["plan".to_string()],
        rows: plan
            .render_lines()
            .into_iter()
            .map(|line| vec![RtVal::Scalar(Value::Str(line))])
            .collect(),
    }
}

/// Executes a parsed query.
pub fn execute(graph: &Graph, ast: &Query, params: &Params) -> Result<ResultSet, CypherError> {
    execute_observed(graph, ast, params, None, None)
}

/// Executes the clause pipeline; when `stats` is provided, records
/// `(rows_produced, wall_time)` for every clause in pipeline order
/// (the `PROFILE` observer). When `cancel` is provided, it is polled
/// at row boundaries throughout the pipeline.
pub(crate) fn execute_observed(
    graph: &Graph,
    ast: &Query,
    params: &Params,
    mut stats: Option<&mut Vec<ClauseStat>>,
    cancel: Option<&Cancel>,
) -> Result<ResultSet, CypherError> {
    // EXISTS subqueries re-enter the matcher with a hook-less inner
    // context (one level of nesting; EXISTS-inside-EXISTS is rejected).
    let exists_hook = move |patterns: &[PathPattern],
                            row: &crate::eval::Row,
                            filter: Option<&Expr>|
          -> Result<bool, CypherError> {
        let inner = EvalCtx {
            graph,
            params,
            exists: None,
            cancel,
        };
        let mut matches: Vec<(crate::eval::Row, HashSet<RelId>)> =
            vec![(row.clone(), HashSet::new())];
        for pattern in patterns {
            let mut next = Vec::new();
            for (r, used) in matches {
                match_pattern(&inner, &r, &used, pattern, &mut next, None)?;
            }
            matches = next;
            if matches.is_empty() {
                return Ok(false);
            }
        }
        match filter {
            None => Ok(!matches.is_empty()),
            Some(f) => {
                for (r, _) in matches {
                    if truth(&inner.eval(f, &r)?) == Some(true) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    };
    let ctx = EvalCtx {
        graph,
        params,
        exists: Some(&exists_hook),
        cancel,
    };
    let mut rows: Vec<Row> = vec![Row::new()];
    let mut result: Option<ResultSet> = None;

    for clause in &ast.clauses {
        let started = stats.as_ref().map(|_| Instant::now());
        let mut cap = ParCapture::default();
        match clause {
            Clause::Match { optional, patterns } => {
                rows = exec_match(&ctx, rows, patterns, *optional, Some(&mut cap))?;
            }
            Clause::Where(expr) => {
                rows = exec_where(&ctx, rows, expr, Some(&mut cap))?;
            }
            Clause::Unwind { expr, var } => {
                let mut out = Vec::new();
                for row in rows {
                    let v = ctx.eval(expr, &row)?;
                    if let Some(items) = v.as_list() {
                        for item in items {
                            let mut r = row.clone();
                            r.insert(var.clone(), item);
                            out.push(r);
                        }
                    } else if !v.is_null() {
                        // UNWIND of a non-list single value yields one row.
                        let mut r = row.clone();
                        r.insert(var.clone(), v);
                        out.push(r);
                    }
                }
                rows = out;
            }
            Clause::With(proj) => {
                let (cols, projected) = project(&ctx, rows, proj)?;
                rows = projected
                    .into_iter()
                    .map(|vals| cols.iter().cloned().zip(vals).collect())
                    .collect();
            }
            Clause::Return(proj) => {
                let (cols, projected) = project(&ctx, rows, proj)?;
                result = Some(ResultSet {
                    columns: cols,
                    rows: projected,
                });
                rows = Vec::new();
            }
            Clause::Create(_) | Clause::Merge(_) | Clause::Set(_) | Clause::Delete { .. } => {
                return Err(CypherError::runtime(
                    "write clauses (CREATE/MERGE/SET/DELETE) need a mutable \
                     graph — use query_write()",
                ))
            }
        }
        if let Some(collector) = stats.as_deref_mut() {
            // RETURN drains `rows` into the result set; every other
            // clause leaves its output in `rows`.
            let produced = match (&result, clause) {
                (Some(rs), Clause::Return(_)) => rs.rows.len() as u64,
                _ => rows.len() as u64,
            };
            collector.push(ClauseStat {
                rows: produced,
                time: started.expect("profiling start").elapsed(),
                parallelism: cap.parallelism.max(1),
                chunk_rows: cap.chunk_rows,
            });
        }
    }

    result.ok_or_else(|| CypherError::runtime("query did not produce a RETURN"))
}

// ----------------------------------------------------------------------
// MATCH
// ----------------------------------------------------------------------

/// Runs a `MATCH` clause over the input rows. When the input row set is
/// large it is partitioned across worker threads (each row matches
/// independently); results merge in chunk order, so the output is
/// identical to serial execution.
pub(crate) fn exec_match(
    ctx: &EvalCtx<'_>,
    rows: Vec<Row>,
    patterns: &[PathPattern],
    optional: bool,
    mut cap: Option<&mut ParCapture>,
) -> Result<Vec<Row>, CypherError> {
    let threads = par::threads();
    if par::should_parallelize(rows.len(), threads) {
        let chunks = par::run_chunks(&rows, threads, |chunk| {
            let mut local = Vec::new();
            for row in chunk {
                ctx.check_cancel()?;
                match_row(ctx, row, patterns, optional, &mut local, None)?;
            }
            Ok(local)
        })?;
        if let Some(cap) = cap.as_deref_mut() {
            cap.record(threads, &chunks.iter().map(Vec::len).collect::<Vec<_>>());
        }
        return Ok(chunks.into_iter().flatten().collect());
    }
    let mut out = Vec::new();
    for row in &rows {
        ctx.check_cancel()?;
        match_row(ctx, row, patterns, optional, &mut out, cap.as_deref_mut())?;
    }
    Ok(out)
}

/// Matches every pattern of a `MATCH` clause against one input row.
fn match_row(
    ctx: &EvalCtx<'_>,
    row: &Row,
    patterns: &[PathPattern],
    optional: bool,
    out: &mut Vec<Row>,
    mut cap: Option<&mut ParCapture>,
) -> Result<(), CypherError> {
    let mut matches: Vec<(Row, HashSet<RelId>)> = vec![(row.clone(), HashSet::new())];
    for pattern in patterns {
        let mut next = Vec::new();
        for (r, used) in matches {
            match_pattern(ctx, &r, &used, pattern, &mut next, cap.as_deref_mut())?;
        }
        matches = next;
        if matches.is_empty() {
            break;
        }
    }
    if matches.is_empty() {
        if optional {
            let mut r = row.clone();
            for var in pattern_vars(patterns) {
                r.entry(var).or_insert_with(RtVal::null);
            }
            out.push(r);
        }
    } else {
        out.extend(matches.into_iter().map(|(r, _)| r));
    }
    Ok(())
}

/// Runs a `WHERE` clause. Large row sets evaluate the predicate on
/// worker threads; the kept rows preserve input order exactly.
fn exec_where(
    ctx: &EvalCtx<'_>,
    rows: Vec<Row>,
    expr: &Expr,
    cap: Option<&mut ParCapture>,
) -> Result<Vec<Row>, CypherError> {
    let threads = par::threads();
    if par::should_parallelize(rows.len(), threads) {
        let verdicts = par::run_chunks(&rows, threads, |chunk| {
            let mut keep = Vec::with_capacity(chunk.len());
            for row in chunk {
                ctx.check_cancel()?;
                keep.push(truth(&ctx.eval(expr, row)?) == Some(true));
            }
            Ok(keep)
        })?;
        if let Some(cap) = cap {
            let kept_per_chunk: Vec<usize> = verdicts
                .iter()
                .map(|c| c.iter().filter(|k| **k).count())
                .collect();
            cap.record(threads, &kept_per_chunk);
        }
        let keep: Vec<bool> = verdicts.into_iter().flatten().collect();
        return Ok(rows
            .into_iter()
            .zip(keep)
            .filter_map(|(r, k)| k.then_some(r))
            .collect());
    }
    let mut kept = Vec::with_capacity(rows.len());
    for row in rows {
        ctx.check_cancel()?;
        if truth(&ctx.eval(expr, &row)?) == Some(true) {
            kept.push(row);
        }
    }
    Ok(kept)
}

/// All variable names appearing in the patterns.
pub(crate) fn pattern_vars(patterns: &[PathPattern]) -> Vec<String> {
    let mut vars = Vec::new();
    for p in patterns {
        if let Some(v) = &p.start.var {
            vars.push(v.clone());
        }
        for (rel, node) in &p.hops {
            if let Some(v) = &rel.var {
                vars.push(v.clone());
            }
            if let Some(v) = &node.var {
                vars.push(v.clone());
            }
        }
    }
    vars
}

/// Matches a single linear pattern, appending `(row, used)` extensions.
/// Large anchor candidate sets are partitioned across worker threads;
/// chunk results merge in candidate order, matching serial output.
pub(crate) fn match_pattern(
    ctx: &EvalCtx<'_>,
    row: &Row,
    used: &HashSet<RelId>,
    pattern: &PathPattern,
    out: &mut Vec<(Row, HashSet<RelId>)>,
    cap: Option<&mut ParCapture>,
) -> Result<(), CypherError> {
    // Collect the node patterns as a flat list for anchor selection.
    let nodes: Vec<&NodePattern> = std::iter::once(&pattern.start)
        .chain(pattern.hops.iter().map(|(_, n)| n))
        .collect();

    // Anchor choice: a bound variable beats everything; otherwise the
    // node with an index-usable inline property; otherwise the node
    // whose (first) label has the smallest population; otherwise node 0.
    let mut anchor = 0usize;
    let mut anchor_kind = AnchorKind::Scan(usize::MAX);
    for (i, np) in nodes.iter().enumerate() {
        let kind = classify_anchor(ctx, row, np);
        if kind.better_than(&anchor_kind) {
            anchor_kind = kind;
            anchor = i;
        }
    }

    let anchor_np = nodes[anchor];
    let candidates = anchor_candidates(ctx, row, anchor_np)?;
    let threads = par::threads();
    if par::should_parallelize(candidates.len(), threads) {
        let chunks = par::run_chunks(&candidates, threads, |chunk| {
            let mut local = Vec::new();
            for cand in chunk {
                ctx.check_cancel()?;
                match_candidate(
                    ctx, row, used, pattern, anchor, anchor_np, *cand, &mut local,
                )?;
            }
            Ok(local)
        })?;
        if let Some(cap) = cap {
            cap.record(threads, &chunks.iter().map(Vec::len).collect::<Vec<_>>());
        }
        out.extend(chunks.into_iter().flatten());
        return Ok(());
    }
    for cand in candidates {
        ctx.check_cancel()?;
        match_candidate(ctx, row, used, pattern, anchor, anchor_np, cand, out)?;
    }
    Ok(())
}

/// Expands the pattern from one anchor candidate.
#[allow(clippy::too_many_arguments)]
fn match_candidate(
    ctx: &EvalCtx<'_>,
    row: &Row,
    used: &HashSet<RelId>,
    pattern: &PathPattern,
    anchor: usize,
    anchor_np: &NodePattern,
    cand: NodeId,
    out: &mut Vec<(Row, HashSet<RelId>)>,
) -> Result<(), CypherError> {
    if !node_matches(ctx, row, anchor_np, cand)? {
        return Ok(());
    }
    let mut r = row.clone();
    if let Some(var) = &anchor_np.var {
        r.insert(var.clone(), RtVal::Node(cand));
    }
    expand(ctx, pattern, anchor, cand, r, used.clone(), out)
}

#[derive(Debug, PartialEq, Eq)]
enum AnchorKind {
    /// Variable already bound — a single candidate.
    Bound,
    /// Inline key-property lookup — a single candidate.
    IndexLookup,
    /// Label scan of approximately `n` nodes.
    Scan(usize),
}

impl AnchorKind {
    fn better_than(&self, other: &AnchorKind) -> bool {
        use AnchorKind::*;
        match (self, other) {
            (Bound, Bound) => false,
            (Bound, _) => true,
            (IndexLookup, Bound) => false,
            (IndexLookup, IndexLookup) => false,
            (IndexLookup, Scan(_)) => true,
            (Scan(a), Scan(b)) => a < b,
            (Scan(_), _) => false,
        }
    }
}

fn classify_anchor(ctx: &EvalCtx<'_>, row: &Row, np: &NodePattern) -> AnchorKind {
    if let Some(var) = &np.var {
        if row.contains_key(var) {
            return AnchorKind::Bound;
        }
    }
    if !np.labels.is_empty() && !np.props.is_empty() {
        return AnchorKind::IndexLookup;
    }
    if let Some(first) = np.labels.first() {
        return AnchorKind::Scan(ctx.graph.label_count(first));
    }
    AnchorKind::Scan(ctx.graph.node_count())
}

/// Candidate node ids for an anchor pattern.
fn anchor_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
) -> Result<Vec<NodeId>, CypherError> {
    if let Some(var) = &np.var {
        if let Some(v) = row.get(var) {
            return match v.as_node() {
                Some(n) => Ok(vec![n]),
                None if v.is_null() => Ok(vec![]),
                None => Err(CypherError::runtime(format!(
                    "variable `{var}` is not a node"
                ))),
            };
        }
    }
    // Index lookup via an inline property on a labelled node.
    if let Some(label) = np.labels.first() {
        for (key, expr) in &np.props {
            let v = ctx.eval(expr, row)?;
            if let Some(scalar) = v.as_scalar() {
                if let Some(kv) = KeyValue::from_value(scalar) {
                    if let Some(hit) = ctx.graph.lookup(label, key, kv) {
                        return Ok(vec![hit]);
                    }
                    // A usable key that finds nothing may simply not be
                    // the identity key for this label; fall back to a
                    // scan only if the lookup index has no entry space.
                    // (Conservative: scan.)
                    break;
                }
            }
        }
        let smallest = np
            .labels
            .iter()
            .min_by_key(|l| ctx.graph.label_count(l))
            .expect("labels non-empty");
        return Ok(ctx.graph.nodes_with_label(smallest).collect());
    }
    Ok(ctx.graph.all_nodes().map(|n| n.id).collect())
}

/// Checks labels and inline props of a node pattern against a node.
fn node_matches(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
    node: NodeId,
) -> Result<bool, CypherError> {
    let Some(n) = ctx.graph.node(node) else {
        return Ok(false);
    };
    for label in &np.labels {
        match ctx.graph.symbols().get_label(label) {
            Some(id) if n.has_label(id) => {}
            _ => return Ok(false),
        }
    }
    for (key, expr) in &np.props {
        let want = ctx.eval(expr, row)?;
        let have = RtVal::Scalar(n.prop(key).cloned().unwrap_or(Value::Null));
        if rt_eq(&have, &want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Checks inline props of a relationship pattern.
fn rel_matches(
    ctx: &EvalCtx<'_>,
    row: &Row,
    rp: &RelPattern,
    rel: &Rel,
) -> Result<bool, CypherError> {
    if !rp.types.is_empty() {
        let name = ctx.graph.symbols().rel_type_name(rel.rel_type);
        if !rp.types.iter().any(|t| t == name) {
            return Ok(false);
        }
    }
    for (key, expr) in &rp.props {
        let want = ctx.eval(expr, row)?;
        let have = RtVal::Scalar(rel.prop(key).cloned().unwrap_or(Value::Null));
        if rt_eq(&have, &want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Expands the pattern in both directions from the anchor node.
#[allow(clippy::too_many_arguments)]
fn expand(
    ctx: &EvalCtx<'_>,
    pattern: &PathPattern,
    anchor: usize,
    anchor_node: NodeId,
    row: Row,
    used: HashSet<RelId>,
    out: &mut Vec<(Row, HashSet<RelId>)>,
) -> Result<(), CypherError> {
    // Node positions: 0..=hops.len(). Hop i sits between node i and i+1.
    // We expand rightward first (anchor..end), then leftward (anchor..0),
    // via a work stack of partial states.
    struct State {
        row: Row,
        used: HashSet<RelId>,
        right: usize, // next hop index to expand rightward
        left: usize,  // next hop index (+1) to expand leftward; 0 = done
        right_node: NodeId,
        left_node: NodeId,
    }
    let mut stack = vec![State {
        row,
        used,
        right: anchor,
        left: anchor,
        right_node: anchor_node,
        left_node: anchor_node,
    }];

    while let Some(st) = stack.pop() {
        // Expansion work stacks can blow up on dense graphs; poll the
        // cancel token per popped state, not just per row.
        ctx.check_cancel()?;
        if st.right < pattern.hops.len() {
            // Expand hop `st.right`: from node position st.right to +1.
            let (rp, np) = &pattern.hops[st.right];
            let dir = match rp.dir {
                RelDir::Right => Direction::Outgoing,
                RelDir::Left => Direction::Incoming,
                RelDir::Undirected => Direction::Both,
            };
            let on_match = |row: Row, used: HashSet<RelId>, node: NodeId| {
                stack.push(State {
                    row,
                    used,
                    right: st.right + 1,
                    left: st.left,
                    right_node: node,
                    left_node: st.left_node,
                });
            };
            if let Some((min, max)) = rp.var_length {
                step_var_length(
                    ctx,
                    &st.row,
                    &st.used,
                    st.right_node,
                    rp,
                    np,
                    dir,
                    min,
                    max,
                    on_match,
                )?;
            } else {
                step(ctx, &st.row, &st.used, st.right_node, rp, np, dir, on_match)?;
            }
        } else if st.left > 0 {
            // Expand hop `st.left - 1` leftward: from node position
            // st.left to st.left - 1 (directions invert).
            let hop_idx = st.left - 1;
            let (rp, np) = (&pattern.hops[hop_idx].0, node_at(pattern, hop_idx));
            let dir = match rp.dir {
                RelDir::Right => Direction::Incoming,
                RelDir::Left => Direction::Outgoing,
                RelDir::Undirected => Direction::Both,
            };
            let on_match = |row: Row, used: HashSet<RelId>, node: NodeId| {
                stack.push(State {
                    row,
                    used,
                    right: st.right,
                    left: hop_idx,
                    right_node: st.right_node,
                    left_node: node,
                });
            };
            if let Some((min, max)) = rp.var_length {
                step_var_length(
                    ctx,
                    &st.row,
                    &st.used,
                    st.left_node,
                    rp,
                    np,
                    dir,
                    min,
                    max,
                    on_match,
                )?;
            } else {
                step(ctx, &st.row, &st.used, st.left_node, rp, np, dir, on_match)?;
            }
        } else {
            out.push((st.row, st.used));
        }
    }
    Ok(())
}

/// The node pattern at position `idx` (0 = start).
fn node_at(pattern: &PathPattern, idx: usize) -> &NodePattern {
    if idx == 0 {
        &pattern.start
    } else {
        &pattern.hops[idx - 1].1
    }
}

/// Takes one step across a relationship pattern from `from`, invoking
/// `push` for every valid `(row, used, next_node)` extension.
#[allow(clippy::too_many_arguments)]
fn step(
    ctx: &EvalCtx<'_>,
    row: &Row,
    used: &HashSet<RelId>,
    from: NodeId,
    rp: &RelPattern,
    np: &NodePattern,
    dir: Direction,
    mut push: impl FnMut(Row, HashSet<RelId>, NodeId),
) -> Result<(), CypherError> {
    // Pre-resolve single-type filters through the interner.
    let type_filter = if rp.types.len() == 1 {
        match ctx.graph.symbols().get_rel_type(&rp.types[0]) {
            Some(t) => Some(t),
            None => return Ok(()), // unknown type matches nothing
        }
    } else {
        None
    };

    let bound_rel = rp.var.as_ref().and_then(|v| row.get(v)).cloned();

    let rels: Vec<&Rel> = ctx.graph.rels_of(from, dir, type_filter).collect();
    for rel in rels {
        if let Some(bound) = &bound_rel {
            if bound.as_rel() != Some(rel.id) {
                continue;
            }
        } else if used.contains(&rel.id) {
            continue;
        }
        if !rel_matches(ctx, row, rp, rel)? {
            continue;
        }
        let next = rel.other(from);
        // Directed traversal from `from`: ensure orientation is right
        // when dir is Outgoing/Incoming (rels_of already filters);
        // for self-loops `other` returns `from` which is fine.
        if !node_matches(ctx, row, np, next)? {
            continue;
        }
        if let Some(var) = &np.var {
            if let Some(existing) = row.get(var) {
                if existing.as_node() != Some(next) {
                    continue;
                }
            }
        }
        let mut new_row = row.clone();
        let mut new_used = used.clone();
        if let Some(var) = &rp.var {
            new_row.insert(var.clone(), RtVal::Rel(rel.id));
        }
        if bound_rel.is_none() {
            new_used.insert(rel.id);
        }
        if let Some(var) = &np.var {
            new_row.insert(var.clone(), RtVal::Node(next));
        }
        push(new_row, new_used, next);
    }
    Ok(())
}

/// Variable-length traversal: explores every path of `min..=max` hops
/// whose relationships all satisfy the pattern, invoking `push` once per
/// path endpoint (Cypher semantics: one row per *path*). The rel
/// variable, if any, binds the list of traversed relationships.
#[allow(clippy::too_many_arguments)]
fn step_var_length(
    ctx: &EvalCtx<'_>,
    row: &Row,
    used: &HashSet<RelId>,
    from: NodeId,
    rp: &RelPattern,
    np: &NodePattern,
    dir: Direction,
    min: u32,
    max: u32,
    mut push: impl FnMut(Row, HashSet<RelId>, NodeId),
) -> Result<(), CypherError> {
    let type_filter = if rp.types.len() == 1 {
        match ctx.graph.symbols().get_rel_type(&rp.types[0]) {
            Some(t) => Some(t),
            None => return Ok(()),
        }
    } else {
        None
    };

    struct PathState {
        node: NodeId,
        used: HashSet<RelId>,
        rels: Vec<RelId>,
    }
    let mut stack = vec![PathState {
        node: from,
        used: used.clone(),
        rels: Vec::new(),
    }];

    while let Some(st) = stack.pop() {
        // Var-length paths are the classic runaway: poll per state.
        ctx.check_cancel()?;
        let depth = st.rels.len() as u32;
        // Emit the endpoint when within bounds and the node pattern
        // accepts it.
        if depth >= min && node_matches(ctx, row, np, st.node)? {
            let node_ok = match np.var.as_ref().and_then(|v| row.get(v)) {
                Some(existing) => existing.as_node() == Some(st.node),
                None => true,
            };
            if node_ok {
                let mut new_row = row.clone();
                if let Some(var) = &rp.var {
                    new_row.insert(
                        var.clone(),
                        RtVal::List(st.rels.iter().map(|r| RtVal::Rel(*r)).collect()),
                    );
                }
                if let Some(var) = &np.var {
                    new_row.insert(var.clone(), RtVal::Node(st.node));
                }
                push(new_row, st.used.clone(), st.node);
            }
        }
        if depth >= max {
            continue;
        }
        let rels: Vec<&Rel> = ctx.graph.rels_of(st.node, dir, type_filter).collect();
        for rel in rels {
            if st.used.contains(&rel.id) {
                continue;
            }
            if !rel_matches(ctx, row, rp, rel)? {
                continue;
            }
            let mut used2 = st.used.clone();
            used2.insert(rel.id);
            let mut rels2 = st.rels.clone();
            rels2.push(rel.id);
            stack.push(PathState {
                node: rel.other(st.node),
                used: used2,
                rels: rels2,
            });
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Projection (WITH / RETURN)
// ----------------------------------------------------------------------

pub(crate) fn project(
    ctx: &EvalCtx<'_>,
    rows: Vec<Row>,
    proj: &Projection,
) -> Result<(Vec<String>, Vec<Vec<RtVal>>), CypherError> {
    let columns: Vec<String> = proj.items.iter().map(|i| i.alias.clone()).collect();
    let has_aggregate = proj.items.iter().any(|i| i.expr.contains_aggregate());

    // Produce raw output rows (plus a representative input row for each,
    // used by ORDER BY to reference pre-projection variables).
    let mut produced: Vec<(Vec<RtVal>, Row)> = Vec::new();

    if has_aggregate {
        // Group rows by the non-aggregate items. Key expressions are
        // evaluated (in parallel for large inputs, order preserved),
        // then rows merge serially into groups — first-occurrence
        // order, so grouping is deterministic and thread-count
        // independent. Keys are structural [`GroupKey`]s, not rendered
        // strings, so distinct values can no longer collide.
        let group_idx: Vec<usize> = proj
            .items
            .iter()
            .enumerate()
            .filter(|(_, i)| !i.expr.contains_aggregate())
            .map(|(k, _)| k)
            .collect();
        let eval_key = |row: &Row| -> Result<(Vec<RtVal>, Vec<GroupKey>), CypherError> {
            let mut key = Vec::with_capacity(group_idx.len());
            for &k in &group_idx {
                key.push(ctx.eval(&proj.items[k].expr, row)?);
            }
            let gk = key.iter().map(RtVal::group_key).collect();
            Ok((key, gk))
        };
        let threads = par::threads();
        let keys: Vec<(Vec<RtVal>, Vec<GroupKey>)> = if par::should_parallelize(rows.len(), threads)
        {
            par::run_chunks(&rows, threads, |chunk| {
                chunk.iter().map(&eval_key).collect()
            })?
            .into_iter()
            .flatten()
            .collect()
        } else {
            rows.iter().map(eval_key).collect::<Result<Vec<_>, _>>()?
        };
        let mut groups: Vec<(Vec<RtVal>, Vec<Row>)> = Vec::new();
        let mut index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
        for (row, (key, gk)) in rows.into_iter().zip(keys) {
            match index.get(&gk) {
                Some(&g) => groups[g].1.push(row),
                None => {
                    index.insert(gk, groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        // Aggregates over zero rows with no grouping keys still produce
        // one row (e.g. `RETURN count(*)` on an empty match).
        if groups.is_empty() && group_idx.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        for (key, group_rows) in groups {
            let mut out_row = Vec::with_capacity(proj.items.len());
            let mut key_iter = key.into_iter();
            for item in &proj.items {
                if item.expr.contains_aggregate() {
                    out_row.push(eval_aggregated(ctx, &item.expr, &group_rows)?);
                } else {
                    out_row.push(key_iter.next().expect("key arity"));
                }
            }
            let repr = group_rows.into_iter().next().unwrap_or_default();
            produced.push((out_row, repr));
        }
    } else {
        // Plain projection: evaluate items per row, in parallel for
        // large inputs (order preserved by chunk-order merge).
        let eval_row = |row: &Row| -> Result<Vec<RtVal>, CypherError> {
            let mut out_row = Vec::with_capacity(proj.items.len());
            for item in &proj.items {
                out_row.push(ctx.eval(&item.expr, row)?);
            }
            Ok(out_row)
        };
        let threads = par::threads();
        if par::should_parallelize(rows.len(), threads) {
            let outs = par::run_chunks(&rows, threads, |chunk| {
                chunk.iter().map(&eval_row).collect()
            })?;
            produced = outs.into_iter().flatten().zip(rows).collect();
        } else {
            for row in rows {
                let vals = eval_row(&row)?;
                produced.push((vals, row));
            }
        }
    }

    if proj.distinct {
        let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
        produced.retain(|(vals, _)| seen.insert(vals.iter().map(RtVal::group_key).collect()));
    }

    let ordered: Vec<Vec<RtVal>> = if proj.order_by.is_empty() {
        produced.into_iter().map(|(vals, _)| vals).collect()
    } else {
        // Decorate–sort–undecorate: ORDER BY sees projected aliases
        // plus the original bindings, so overlay the aliases onto the
        // representative row (consumed, not cloned) to evaluate keys,
        // then sort by the precomputed keys alone.
        let mut keyed: Vec<(Vec<RtVal>, Vec<RtVal>)> = Vec::with_capacity(produced.len());
        for (vals, mut scope) in produced {
            for (c, v) in columns.iter().zip(vals.iter()) {
                scope.insert(c.clone(), v.clone());
            }
            let mut keys = Vec::with_capacity(proj.order_by.len());
            for ok in &proj.order_by {
                keys.push(ctx.eval(&ok.expr, &scope)?);
            }
            keyed.push((keys, vals));
        }
        keyed.sort_by(|a, b| {
            for (i, ok) in proj.order_by.iter().enumerate() {
                let c = a.0[i].order(&b.0[i]);
                let c = if ok.descending { c.reverse() } else { c };
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        });
        keyed.into_iter().map(|(_, vals)| vals).collect()
    };

    let empty = Row::new();
    let skip = match &proj.skip {
        Some(e) => eval_usize(ctx, e, &empty, "SKIP")?,
        None => 0,
    };
    let limit = match &proj.limit {
        Some(e) => eval_usize(ctx, e, &empty, "LIMIT")?,
        None => usize::MAX,
    };

    let rows_out: Vec<Vec<RtVal>> = ordered.into_iter().skip(skip).take(limit).collect();
    Ok((columns, rows_out))
}

fn eval_usize(ctx: &EvalCtx<'_>, e: &Expr, row: &Row, what: &str) -> Result<usize, CypherError> {
    let v = ctx.eval(e, row)?;
    v.as_scalar()
        .and_then(|v| v.as_int())
        .filter(|i| *i >= 0)
        .map(|i| i as usize)
        .ok_or_else(|| CypherError::runtime(format!("{what} must be a non-negative integer")))
}

/// Evaluates an expression that contains aggregates over a group.
fn eval_aggregated(ctx: &EvalCtx<'_>, expr: &Expr, group: &[Row]) -> Result<RtVal, CypherError> {
    match expr {
        Expr::Call {
            name,
            distinct,
            args,
        } if is_aggregate_fn(name) => compute_aggregate(ctx, name, *distinct, args, group),
        _ if !expr.contains_aggregate() => {
            let repr = group.first().cloned().unwrap_or_default();
            ctx.eval(expr, &repr)
        }
        Expr::Binary(op, a, b) => {
            let x = eval_aggregated(ctx, a, group)?;
            let y = eval_aggregated(ctx, b, group)?;
            // Re-evaluate the binary op over materialised operands.
            let tmp_expr = Expr::Binary(
                *op,
                Box::new(Expr::Var("\u{1}lhs".into())),
                Box::new(Expr::Var("\u{1}rhs".into())),
            );
            let mut row = Row::new();
            row.insert("\u{1}lhs".into(), x);
            row.insert("\u{1}rhs".into(), y);
            ctx.eval(&tmp_expr, &row)
        }
        Expr::Unary(op, a) => {
            let x = eval_aggregated(ctx, a, group)?;
            let tmp = Expr::Unary(*op, Box::new(Expr::Var("\u{1}x".into())));
            let mut row = Row::new();
            row.insert("\u{1}x".into(), x);
            ctx.eval(&tmp, &row)
        }
        Expr::Call {
            name,
            distinct,
            args,
        } => {
            // Scalar function over aggregated arguments.
            let mut row = Row::new();
            let mut new_args = Vec::with_capacity(args.len());
            for (i, a) in args.iter().enumerate() {
                let v = eval_aggregated(ctx, a, group)?;
                let key = format!("\u{1}a{i}");
                row.insert(key.clone(), v);
                new_args.push(Expr::Var(key));
            }
            ctx.eval(
                &Expr::Call {
                    name: name.clone(),
                    distinct: *distinct,
                    args: new_args,
                },
                &row,
            )
        }
        other => Err(CypherError::runtime(format!(
            "unsupported aggregate expression shape: {other:?}"
        ))),
    }
}

fn compute_aggregate(
    ctx: &EvalCtx<'_>,
    name: &str,
    distinct: bool,
    args: &[Expr],
    group: &[Row],
) -> Result<RtVal, CypherError> {
    // count(*) has no args.
    if name == "count" && args.is_empty() {
        return Ok(RtVal::Scalar(Value::Int(group.len() as i64)));
    }
    let arg = args
        .first()
        .ok_or_else(|| CypherError::runtime(format!("{name}() requires an argument")))?;

    let mut values: Vec<RtVal> = Vec::with_capacity(group.len());
    for row in group {
        let v = ctx.eval(arg, row)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen: HashSet<GroupKey> = HashSet::new();
        values.retain(|v| seen.insert(v.group_key()));
    }

    match name {
        "count" => Ok(RtVal::Scalar(Value::Int(values.len() as i64))),
        "collect" => {
            if values.iter().all(|v| matches!(v, RtVal::Scalar(_))) {
                Ok(RtVal::Scalar(Value::List(
                    values
                        .into_iter()
                        .map(|v| match v {
                            RtVal::Scalar(s) => s,
                            _ => unreachable!(),
                        })
                        .collect(),
                )))
            } else {
                Ok(RtVal::List(values))
            }
        }
        "sum" => {
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut any_float = false;
            for v in &values {
                match v.as_scalar() {
                    Some(Value::Int(i)) => int_sum += i,
                    Some(Value::Float(f)) => {
                        any_float = true;
                        float_sum += f;
                    }
                    _ => return Err(CypherError::runtime("sum() over non-numbers")),
                }
            }
            Ok(RtVal::Scalar(if any_float {
                Value::Float(float_sum + int_sum as f64)
            } else {
                Value::Int(int_sum)
            }))
        }
        "avg" => {
            if values.is_empty() {
                return Ok(RtVal::null());
            }
            let mut sum = 0.0;
            for v in &values {
                sum += v
                    .as_scalar()
                    .and_then(|s| s.as_float())
                    .ok_or_else(|| CypherError::runtime("avg() over non-numbers"))?;
            }
            Ok(RtVal::Scalar(Value::Float(sum / values.len() as f64)))
        }
        "min" => Ok(values
            .into_iter()
            .min_by(|a, b| a.order(b))
            .unwrap_or_else(RtVal::null)),
        "max" => Ok(values
            .into_iter()
            .max_by(|a, b| a.order(b))
            .unwrap_or_else(RtVal::null)),
        "percentilecont" | "percentiledisc" => {
            let p_expr = args
                .get(1)
                .ok_or_else(|| CypherError::runtime(format!("{name}() needs a percentile")))?;
            let p = ctx
                .eval(p_expr, group.first().unwrap_or(&Row::new()))?
                .as_scalar()
                .and_then(|v| v.as_float())
                .ok_or_else(|| CypherError::runtime("percentile must be a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(CypherError::runtime("percentile must be in [0, 1]"));
            }
            let mut nums: Vec<f64> = Vec::with_capacity(values.len());
            for v in &values {
                nums.push(
                    v.as_scalar()
                        .and_then(|s| s.as_float())
                        .ok_or_else(|| CypherError::runtime("percentile over non-numbers"))?,
                );
            }
            if nums.is_empty() {
                return Ok(RtVal::null());
            }
            nums.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
            if name == "percentiledisc" {
                let idx = ((p * nums.len() as f64).ceil() as usize).clamp(1, nums.len()) - 1;
                Ok(RtVal::Scalar(Value::Float(nums[idx])))
            } else {
                let rank = p * (nums.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let frac = rank - lo as f64;
                Ok(RtVal::Scalar(Value::Float(
                    nums[lo] + (nums[hi] - nums[lo]) * frac,
                )))
            }
        }
        "stdev" => {
            if values.len() < 2 {
                return Ok(RtVal::Scalar(Value::Float(0.0)));
            }
            let mut nums: Vec<f64> = Vec::with_capacity(values.len());
            for v in &values {
                nums.push(
                    v.as_scalar()
                        .and_then(|s| s.as_float())
                        .ok_or_else(|| CypherError::runtime("stdev over non-numbers"))?,
                );
            }
            let mean = nums.iter().sum::<f64>() / nums.len() as f64;
            let var =
                nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (nums.len() - 1) as f64;
            Ok(RtVal::Scalar(Value::Float(var.sqrt())))
        }
        other => Err(CypherError::runtime(format!("unknown aggregate {other}()"))),
    }
}
