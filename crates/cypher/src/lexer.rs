//! Tokenizer for the Cypher subset.

use crate::error::CypherError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognised by the parser,
    /// case-insensitively; the original spelling is preserved here).
    Ident(String),
    /// Backtick-quoted identifier (allows spaces, e.g. `` `Tranco top 1M` ``).
    QuotedIdent(String),
    /// String literal (single- or double-quoted).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `$param` reference.
    Param(String),
    /// Punctuation / operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Colon,
    Comma,
    Dot,
    DotDot,
    Semicolon,
    Pipe,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Caret,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Arrow,     // ->
    BackArrow, // <-
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input`, skipping whitespace and `//` line comments and
/// `/* */` block comments.
pub fn tokenize(input: &str) -> Result<Vec<Token>, CypherError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CypherError::Lex {
                            pos: start,
                            msg: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(CypherError::Lex {
                            pos: start,
                            msg: "unterminated string literal".into(),
                        });
                    }
                    let ch = input[i..].chars().next().expect("in bounds");
                    if ch == quote {
                        i += 1;
                        break;
                    }
                    if ch == '\\' {
                        i += 1;
                        let esc = input[i..].chars().next().ok_or(CypherError::Lex {
                            pos: i,
                            msg: "dangling escape".into(),
                        })?;
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        });
                        i += esc.len_utf8();
                    } else {
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                tokens.push(Token::Str(s));
            }
            '`' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(CypherError::Lex {
                            pos: start,
                            msg: "unterminated quoted identifier".into(),
                        });
                    }
                    let ch = input[i..].chars().next().expect("in bounds");
                    i += ch.len_utf8();
                    if ch == '`' {
                        break;
                    }
                    s.push(ch);
                }
                tokens.push(Token::QuotedIdent(s));
            }
            '$' => {
                i += 1;
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if start == i {
                    return Err(CypherError::Lex {
                        pos: start,
                        msg: "empty parameter name".into(),
                    });
                }
                tokens.push(Token::Param(input[start..i].to_string()));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // Disambiguate `1..2` (range) from `1.5` (float).
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).map(|b| (*b as char).is_ascii_digit()) == Some(true);
                if is_float {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let f: f64 = input[start..i].parse().map_err(|_| CypherError::Lex {
                        pos: start,
                        msg: "bad float literal".into(),
                    })?;
                    tokens.push(Token::Float(f));
                } else {
                    let v: i64 = input[start..i].parse().map_err(|_| CypherError::Lex {
                        pos: start,
                        msg: "bad integer literal".into(),
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = input[i..].chars().next().expect("in bounds");
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    tokens.push(Token::DotDot);
                    i += 2;
                } else {
                    tokens.push(Token::Dot);
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '^' => {
                tokens.push(Token::Caret);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Token::BackArrow);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            other => {
                return Err(CypherError::Lex {
                    pos: i,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_listing_1() {
        let toks = tokenize(
            "// Select ASes originating prefixes\nMATCH (x:AS)-[:ORIGINATE]-(:Prefix)\nRETURN DISTINCT x.asn",
        )
        .unwrap();
        assert!(toks[0].is_kw("match"));
        assert_eq!(toks[1], Token::LParen);
        assert_eq!(toks[2], Token::Ident("x".into()));
        assert_eq!(toks[3], Token::Colon);
        assert!(toks.contains(&Token::Minus));
        assert!(toks.iter().any(|t| t.is_kw("RETURN")));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize(r#" 'RPKI Invalid' "double\'s" 'a\nb' "#).unwrap();
        assert_eq!(toks[0], Token::Str("RPKI Invalid".into()));
        assert_eq!(toks[1], Token::Str("double's".into()));
        assert_eq!(toks[2], Token::Str("a\nb".into()));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 3.5 1..3").unwrap();
        assert_eq!(toks[0], Token::Int(42));
        assert_eq!(toks[1], Token::Float(3.5));
        assert_eq!(toks[2], Token::Int(1));
        assert_eq!(toks[3], Token::DotDot);
        assert_eq!(toks[4], Token::Int(3));
    }

    #[test]
    fn arrows_and_comparisons() {
        let toks = tokenize("-> <- <> <= >= < > =").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Arrow,
                Token::BackArrow,
                Token::Neq,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Eq
            ]
        );
    }

    #[test]
    fn params_and_backticks() {
        let toks = tokenize("$tranco `Tranco top 1M`").unwrap();
        assert_eq!(toks[0], Token::Param("tranco".into()));
        assert_eq!(toks[1], Token::QuotedIdent("Tranco top 1M".into()));
    }

    #[test]
    fn block_comments() {
        let toks = tokenize("MATCH /* ignore\nme */ RETURN").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("$").is_err());
        assert!(tokenize("?").is_err());
        assert!(tokenize("/* open").is_err());
    }
}
