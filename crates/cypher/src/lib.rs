//! A Cypher query engine for the IYP property graph.
//!
//! The paper's entire user-facing surface is Cypher: every reproduced
//! study is a handful of `MATCH … WHERE … RETURN …` queries (Listings
//! 1–6). This crate implements the subset of openCypher those queries —
//! and realistic extensions of them — need:
//!
//! - `MATCH` / `OPTIONAL MATCH` with linear path patterns, inline
//!   property maps, multiple labels, and all three arrow directions;
//! - relationship-uniqueness semantics within a `MATCH` clause;
//! - `WHERE` with boolean operators, comparisons, `STARTS WITH` /
//!   `ENDS WITH` / `CONTAINS`, `IN`, `IS [NOT] NULL`;
//! - `WITH` pipelines, `UNWIND`, and `RETURN`, each with `DISTINCT`,
//!   aggregation (`count`, `collect`, `sum`, `avg`, `min`, `max`,
//!   `percentileCont`), `ORDER BY`, `SKIP` and `LIMIT`;
//! - scalar functions (`toUpper`, `size`, `coalesce`, `labels`, `type`,
//!   `id`, `split`, `substring`, `toInteger`, …) and `$parameters`;
//! - `//` comments, case-insensitive keywords.
//!
//! # Example
//!
//! Listing 2 of the paper — all MOAS prefixes — runs verbatim:
//!
//! ```
//! use iyp_graph::{Graph, Props};
//! use iyp_cypher::query;
//!
//! let mut g = Graph::new();
//! let a = g.merge_node("AS", "asn", 64496u32, Props::new());
//! let b = g.merge_node("AS", "asn", 64497u32, Props::new());
//! let p = g.merge_node("Prefix", "prefix", "192.0.2.0/24", Props::new());
//! g.create_rel(a, "ORIGINATE", p, Props::new()).unwrap();
//! g.create_rel(b, "ORIGINATE", p, Props::new()).unwrap();
//!
//! let rs = query(&g, "
//!     // Find Prefixes with two originating ASes
//!     MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
//!     WHERE x.asn <> y.asn
//!     RETURN DISTINCT p.prefix
//! ", &Default::default()).unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_str(), Some("192.0.2.0/24"));
//! ```

pub mod ast;
pub mod cache;
pub mod cancel;
pub mod error;
pub mod eval;
pub mod exec;
pub mod lexer;
pub mod par;
pub mod parser;
pub mod plan;
pub mod rtval;
pub mod statement;
pub mod write;

pub use cache::QueryCache;
pub use cancel::Cancel;
pub use error::CypherError;
pub use exec::{explain, profile, query, query_with_cancel, Params, ResultSet};
pub use par::{set_min_partition, set_threads, threads};
pub use plan::{ClauseStat, PlanNode};
pub use rtval::{GroupKey, RtVal};
pub use statement::Statement;
pub use write::{query_write, WriteSummary};
