//! Parallel execution of read-only query stages.
//!
//! The executor partitions large candidate/row sets into contiguous
//! chunks and runs each chunk on a scoped worker thread over `&Graph`
//! (reads only). Chunk results are merged back **in chunk order**, so
//! parallel execution is result-identical to serial execution.
//!
//! Thread count resolution, highest precedence first:
//! 1. [`set_threads`] (the `--threads` CLI flag);
//! 2. the `IYP_CYPHER_THREADS` environment variable;
//! 3. available hardware parallelism, capped at 8.
//!
//! Workers never re-parallelise: nested pattern matches (multi-pattern
//! `MATCH`, `EXISTS` subqueries) inside a worker run serially.

use crate::error::CypherError;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Minimum number of items a stage must have before it is worth
/// spawning workers (spawn cost is ~tens of microseconds per thread).
static MIN_PARTITION: AtomicUsize = AtomicUsize::new(DEFAULT_MIN_PARTITION);

/// Default for [`min_partition`].
pub const DEFAULT_MIN_PARTITION: usize = 128;

thread_local! {
    /// Set while running inside a worker so nested stages stay serial.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the engine thread count for this process (0 clears the
/// override, returning to `IYP_CYPHER_THREADS` / hardware detection).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of threads query stages may use right now. Always 1
/// inside a worker thread.
pub fn threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over != 0 {
        return over.max(1);
    }
    if let Ok(s) = std::env::var("IYP_CYPHER_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Overrides the minimum stage size for parallel execution (tests use
/// a tiny value to exercise the parallel path on small graphs).
pub fn set_min_partition(n: usize) {
    MIN_PARTITION.store(n.max(1), Ordering::SeqCst);
}

/// The current minimum stage size for parallel execution.
pub fn min_partition() -> usize {
    MIN_PARTITION.load(Ordering::Relaxed)
}

/// True when a stage over `len` items should run in parallel.
pub(crate) fn should_parallelize(len: usize, threads: usize) -> bool {
    threads > 1 && len >= min_partition()
}

/// Splits `items` into at most `threads` contiguous chunks and maps
/// each chunk on its own scoped thread, returning the per-chunk outputs
/// **in chunk order**. Errors are reported in chunk order too, matching
/// the error serial execution would surface first.
pub(crate) fn run_chunks<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Result<Vec<Vec<R>>, CypherError>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Result<Vec<R>, CypherError> + Sync,
{
    let n_chunks = threads.min(items.len()).max(1);
    let chunk_size = items.len().div_ceil(n_chunks);
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    iyp_telemetry::counter(iyp_telemetry::names::CYPHER_PARALLEL_CHUNKS_TOTAL)
        .add(chunks.len() as u64);
    let f = &f;
    let run_worker = |chunk: &[T]| {
        IN_WORKER.with(|w| w.set(true));
        let _span = iyp_telemetry::span(iyp_telemetry::names::CYPHER_WORKER_SECONDS);
        let out = f(chunk);
        IN_WORKER.with(|w| w.set(false));
        out
    };
    // The first chunk runs on the calling thread: one fewer spawn, and
    // the caller does useful work instead of blocking in join().
    let joined: Vec<Result<Vec<R>, CypherError>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = chunks[1..]
            .iter()
            .map(|chunk| {
                let chunk: &[T] = chunk;
                s.spawn(move |_| run_worker(chunk))
            })
            .collect();
        let mut results = vec![run_worker(chunks[0])];
        results.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("cypher worker panicked")),
        );
        results
    })
    .expect("cypher worker scope");
    joined.into_iter().collect()
}

/// Per-clause record of parallel work done, surfaced in `PROFILE`
/// output as `par=<threads>` and `chunks=<rows per chunk>`.
#[derive(Debug, Default, Clone)]
pub struct ParCapture {
    /// Widest parallelism any stage of the clause ran at.
    pub parallelism: usize,
    /// Rows produced per worker slot, summed across stages.
    pub chunk_rows: Vec<u64>,
}

impl ParCapture {
    /// Records one parallel stage: the thread count it used and how
    /// many rows each chunk produced.
    pub fn record(&mut self, threads: usize, per_chunk: &[usize]) {
        self.parallelism = self.parallelism.max(threads);
        if self.chunk_rows.len() < per_chunk.len() {
            self.chunk_rows.resize(per_chunk.len(), 0);
        }
        for (slot, rows) in per_chunk.iter().enumerate() {
            self.chunk_rows[slot] += *rows as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_order_is_preserved() {
        let items: Vec<u32> = (0..1000).collect();
        let out = run_chunks(&items, 4, |chunk| Ok(chunk.to_vec())).unwrap();
        let flat: Vec<u32> = out.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn first_chunk_error_wins() {
        let items: Vec<u32> = (0..100).collect();
        let err = run_chunks(&items, 4, |chunk| {
            if chunk[0] < 50 {
                Err(CypherError::runtime(format!("chunk at {}", chunk[0])))
            } else {
                Ok(vec![()])
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("chunk at 0"), "{err}");
    }

    #[test]
    fn workers_stay_serial_inside() {
        let items = [0u8; 8];
        let inner: Vec<usize> = run_chunks(&items, 4, |_| Ok(vec![threads()]))
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        assert!(inner.iter().all(|t| *t == 1), "{inner:?}");
    }

    #[test]
    fn capture_accumulates() {
        let mut cap = ParCapture::default();
        cap.record(4, &[10, 20]);
        cap.record(2, &[1, 2, 3]);
        assert_eq!(cap.parallelism, 4);
        assert_eq!(cap.chunk_rows, vec![11, 22, 3]);
    }
}
