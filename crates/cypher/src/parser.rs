//! Recursive-descent parser for the Cypher subset.

use crate::ast::*;
use crate::error::CypherError;
use crate::lexer::{tokenize, Token};
use iyp_graph::Value;

/// Parses a query string into an AST.
pub fn parse(input: &str) -> Result<Query, CypherError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos < p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> CypherError {
        CypherError::Parse {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), CypherError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), CypherError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    /// Any identifier (plain or backticked).
    fn ident(&mut self, what: &str) -> Result<String, CypherError> {
        match self.next().cloned() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Clauses
    // ------------------------------------------------------------------

    fn query(&mut self) -> Result<Query, CypherError> {
        let mode = if self.eat_kw("explain") {
            QueryMode::Explain
        } else if self.eat_kw("profile") {
            QueryMode::Profile
        } else {
            QueryMode::Normal
        };
        let mut clauses = Vec::new();
        let mut has_write = false;
        loop {
            if self.eat_kw("optional") {
                self.expect_kw("match")?;
                clauses.push(self.match_clause(true)?);
            } else if self.eat_kw("match") {
                clauses.push(self.match_clause(false)?);
            } else if self.eat_kw("where") {
                clauses.push(Clause::Where(self.expr()?));
            } else if self.eat_kw("unwind") {
                let expr = self.expr()?;
                self.expect_kw("as")?;
                let var = self.ident("variable after AS")?;
                clauses.push(Clause::Unwind { expr, var });
            } else if self.eat_kw("with") {
                clauses.push(Clause::With(self.projection()?));
            } else if self.eat_kw("create") {
                has_write = true;
                let mut patterns = vec![self.path_pattern()?];
                while self.eat(&Token::Comma) {
                    patterns.push(self.path_pattern()?);
                }
                clauses.push(Clause::Create(patterns));
            } else if self.eat_kw("merge") {
                has_write = true;
                clauses.push(Clause::Merge(self.path_pattern()?));
            } else if self.eat_kw("set") {
                has_write = true;
                let mut items = vec![self.set_item()?];
                while self.eat(&Token::Comma) {
                    items.push(self.set_item()?);
                }
                clauses.push(Clause::Set(items));
            } else if self.eat_kw("detach") {
                self.expect_kw("delete")?;
                has_write = true;
                clauses.push(self.delete_clause(true)?);
            } else if self.eat_kw("delete") {
                has_write = true;
                clauses.push(self.delete_clause(false)?);
            } else if self.eat_kw("return") {
                clauses.push(Clause::Return(self.projection()?));
                let _ = self.eat(&Token::Semicolon);
                break;
            } else if self.peek().is_none()
                || (self.peek() == Some(&Token::Semicolon) && self.pos + 1 == self.tokens.len())
            {
                let _ = self.eat(&Token::Semicolon);
                if has_write {
                    break; // write queries need no RETURN
                }
                return Err(self.err("query must end with RETURN"));
            } else {
                return Err(self.err(format!("unexpected token {:?}", self.peek())));
            }
        }
        Ok(Query { mode, clauses })
    }

    fn set_item(&mut self) -> Result<SetItem, CypherError> {
        let var = self.ident("variable in SET")?;
        self.expect(&Token::Dot, ". in SET target")?;
        let key = self.ident("property key in SET")?;
        self.expect(&Token::Eq, "= in SET")?;
        let value = self.expr()?;
        Ok(SetItem { var, key, value })
    }

    fn delete_clause(&mut self, detach: bool) -> Result<Clause, CypherError> {
        let mut exprs = vec![self.expr()?];
        while self.eat(&Token::Comma) {
            exprs.push(self.expr()?);
        }
        Ok(Clause::Delete { exprs, detach })
    }

    fn match_clause(&mut self, optional: bool) -> Result<Clause, CypherError> {
        let mut patterns = vec![self.path_pattern()?];
        while self.eat(&Token::Comma) {
            patterns.push(self.path_pattern()?);
        }
        Ok(Clause::Match { optional, patterns })
    }

    fn projection(&mut self) -> Result<Projection, CypherError> {
        let distinct = self.eat_kw("distinct");
        let mut items = vec![self.proj_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.proj_item()?);
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("desc") || self.eat_kw("descending") {
                    true
                } else {
                    let _ = self.eat_kw("asc") || self.eat_kw("ascending");
                    false
                };
                order_by.push(OrderKey { expr, descending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let skip = if self.eat_kw("skip") {
            Some(self.expr()?)
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Projection {
            distinct,
            items,
            order_by,
            skip,
            limit,
        })
    }

    fn proj_item(&mut self) -> Result<ProjItem, CypherError> {
        let start = self.pos;
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            self.ident("alias after AS")?
        } else {
            default_alias(&expr, &self.tokens[start..self.pos])
        };
        Ok(ProjItem { expr, alias })
    }

    // ------------------------------------------------------------------
    // Patterns
    // ------------------------------------------------------------------

    fn path_pattern(&mut self) -> Result<PathPattern, CypherError> {
        let start = self.node_pattern()?;
        let mut hops = Vec::new();
        loop {
            let dir_left = if self.eat(&Token::BackArrow) {
                true
            } else if self.eat(&Token::Minus) {
                false
            } else {
                break;
            };
            // Optional bracketed relationship detail.
            let (var, types, props, var_length) = if self.eat(&Token::LBracket) {
                let var = match self.peek() {
                    Some(Token::Ident(s)) if !s.eq_ignore_ascii_case("") => {
                        let v = s.clone();
                        self.pos += 1;
                        Some(v)
                    }
                    _ => None,
                };
                let mut types = Vec::new();
                if self.eat(&Token::Colon) {
                    types.push(self.ident("relationship type")?);
                    while self.eat(&Token::Pipe) {
                        let _ = self.eat(&Token::Colon);
                        types.push(self.ident("relationship type")?);
                    }
                }
                // Variable length: `*`, `*n`, `*a..b`, `*..b`, `*a..`.
                let var_length = if self.eat(&Token::Star) {
                    let min = match self.peek() {
                        Some(Token::Int(n)) => {
                            let n = *n;
                            self.pos += 1;
                            Some(n)
                        }
                        _ => None,
                    };
                    if self.eat(&Token::DotDot) {
                        let max = match self.peek() {
                            Some(Token::Int(n)) => {
                                let n = *n;
                                self.pos += 1;
                                Some(n)
                            }
                            _ => None,
                        };
                        Some((
                            min.unwrap_or(1).max(0) as u32,
                            max.unwrap_or(VAR_LENGTH_CAP as i64) as u32,
                        ))
                    } else {
                        match min {
                            Some(n) => Some((n as u32, n as u32)),
                            None => Some((1, VAR_LENGTH_CAP)),
                        }
                    }
                } else {
                    None
                };
                let props = if self.peek() == Some(&Token::LBrace) {
                    self.prop_map()?
                } else {
                    Vec::new()
                };
                self.expect(&Token::RBracket, "]")?;
                (var, types, props, var_length)
            } else {
                (None, Vec::new(), Vec::new(), None)
            };
            // Closing arrow.
            let dir = if self.eat(&Token::Arrow) {
                if dir_left {
                    return Err(self.err("relationship cannot point both ways"));
                }
                RelDir::Right
            } else if self.eat(&Token::Minus) {
                if dir_left {
                    RelDir::Left
                } else {
                    RelDir::Undirected
                }
            } else {
                return Err(self.err("expected - or -> to close relationship pattern"));
            };
            let node = self.node_pattern()?;
            hops.push((
                RelPattern {
                    var,
                    types,
                    props,
                    dir,
                    var_length,
                },
                node,
            ));
        }
        Ok(PathPattern { start, hops })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, CypherError> {
        self.expect(&Token::LParen, "( for node pattern")?;
        let mut np = NodePattern::default();
        if let Some(Token::Ident(s)) = self.peek() {
            np.var = Some(s.clone());
            self.pos += 1;
        }
        while self.eat(&Token::Colon) {
            np.labels.push(self.ident("label")?);
        }
        if self.peek() == Some(&Token::LBrace) {
            np.props = self.prop_map()?;
        }
        self.expect(&Token::RParen, ") to close node pattern")?;
        Ok(np)
    }

    fn prop_map(&mut self) -> Result<Vec<(String, Expr)>, CypherError> {
        self.expect(&Token::LBrace, "{")?;
        let mut props = Vec::new();
        if self.peek() != Some(&Token::RBrace) {
            loop {
                let key = self.ident("property key")?;
                self.expect(&Token::Colon, ": in property map")?;
                let value = self.expr()?;
                props.push((key, value));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RBrace, "}")?;
        Ok(props)
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CypherError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.xor_expr()?;
        while self.eat_kw("or") {
            let rhs = self.xor_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn xor_expr(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("xor") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, CypherError> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(e)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, CypherError> {
        let lhs = self.additive()?;
        // IS NULL / IS NOT NULL
        if self.at_kw("is") {
            self.pos += 1;
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull(Box::new(lhs), negated));
        }
        // STARTS WITH / ENDS WITH / CONTAINS / IN
        if self.eat_kw("starts") {
            self.expect_kw("with")?;
            let rhs = self.additive()?;
            return Ok(Expr::Binary(
                BinOp::StartsWith,
                Box::new(lhs),
                Box::new(rhs),
            ));
        }
        if self.eat_kw("ends") {
            self.expect_kw("with")?;
            let rhs = self.additive()?;
            return Ok(Expr::Binary(BinOp::EndsWith, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw("contains") {
            let rhs = self.additive()?;
            return Ok(Expr::Binary(BinOp::Contains, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw("in") {
            let rhs = self.additive()?;
            return Ok(Expr::Binary(BinOp::In, Box::new(lhs), Box::new(rhs)));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Neq) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                Some(Token::Caret) => BinOp::Pow,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CypherError> {
        if self.eat(&Token::Minus) {
            let e = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)));
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CypherError> {
        let mut e = self.atom()?;
        loop {
            if self.eat(&Token::Dot) {
                let key = self.ident("property name")?;
                e = Expr::Prop(Box::new(e), key);
            } else if self.eat(&Token::LBracket) {
                let idx = self.expr()?;
                self.expect(&Token::RBracket, "] after index")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, CypherError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Str(s)))
            }
            Some(Token::Param(p)) => {
                self.pos += 1;
                Ok(Expr::Param(p))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen, ") after expression")?;
                Ok(e)
            }
            Some(Token::LBracket) => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket, "] to close list")?;
                Ok(Expr::List(items))
            }
            Some(Token::Ident(name)) => {
                // Keywords as value atoms.
                if name.eq_ignore_ascii_case("true") {
                    self.pos += 1;
                    return Ok(Expr::Lit(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    self.pos += 1;
                    return Ok(Expr::Lit(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("null") {
                    self.pos += 1;
                    return Ok(Expr::Lit(Value::Null));
                }
                if name.eq_ignore_ascii_case("case") {
                    return self.case_expr();
                }
                // `EXISTS { MATCH <patterns> [WHERE expr] }` subquery.
                if name.eq_ignore_ascii_case("exists")
                    && self.tokens.get(self.pos + 1) == Some(&Token::LBrace)
                {
                    self.pos += 2; // exists {
                    let _ = self.eat_kw("match");
                    let mut patterns = vec![self.path_pattern()?];
                    while self.eat(&Token::Comma) {
                        patterns.push(self.path_pattern()?);
                    }
                    let filter = if self.eat_kw("where") {
                        Some(Box::new(self.expr()?))
                    } else {
                        None
                    };
                    self.expect(&Token::RBrace, "} to close EXISTS")?;
                    return Ok(Expr::Exists { patterns, filter });
                }
                self.pos += 1;
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if self.eat(&Token::Star) {
                        // count(*): zero args.
                    } else if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen, ") to close call")?;
                    return Ok(Expr::Call {
                        name: name.to_ascii_lowercase(),
                        distinct,
                        args,
                    });
                }
                Ok(Expr::Var(name))
            }
            Some(Token::QuotedIdent(name)) => {
                self.pos += 1;
                Ok(Expr::Var(name))
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, CypherError> {
        self.expect_kw("case")?;
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let val = self.expr()?;
            branches.push((cond, val));
        }
        let default = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        Ok(Expr::Case { branches, default })
    }
}

/// Default alias for an unaliased projection item: the source text,
/// re-rendered from tokens (e.g. `x.asn`, `count(DISTINCT pfx)`).
fn default_alias(expr: &Expr, tokens: &[Token]) -> String {
    // For the common cases render precisely; otherwise join token text.
    match expr {
        Expr::Var(v) => v.clone(),
        Expr::Prop(inner, key) => {
            if let Expr::Var(v) = inner.as_ref() {
                format!("{v}.{key}")
            } else {
                render_tokens(tokens)
            }
        }
        _ => render_tokens(tokens),
    }
}

fn render_tokens(tokens: &[Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        let frag = match t {
            Token::Ident(x) => x.clone(),
            Token::QuotedIdent(x) => format!("`{x}`"),
            Token::Str(x) => format!("'{x}'"),
            Token::Int(i) => i.to_string(),
            Token::Float(f) => f.to_string(),
            Token::Param(p) => format!("${p}"),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::LBracket => "[".into(),
            Token::RBracket => "]".into(),
            Token::LBrace => "{".into(),
            Token::RBrace => "}".into(),
            Token::Colon => ":".into(),
            Token::Comma => ",".into(),
            Token::Dot => ".".into(),
            Token::DotDot => "..".into(),
            Token::Semicolon => ";".into(),
            Token::Pipe => "|".into(),
            Token::Plus => "+".into(),
            Token::Minus => "-".into(),
            Token::Star => "*".into(),
            Token::Slash => "/".into(),
            Token::Percent => "%".into(),
            Token::Caret => "^".into(),
            Token::Eq => "=".into(),
            Token::Neq => "<>".into(),
            Token::Lt => "<".into(),
            Token::Le => "<=".into(),
            Token::Gt => ">".into(),
            Token::Ge => ">=".into(),
            Token::Arrow => "->".into(),
            Token::BackArrow => "<-".into(),
        };
        match frag.as_str() {
            "." | "(" | ")" | "[" | "]" => s.push_str(&frag),
            _ => {
                if !s.is_empty() && !s.ends_with(['.', '(', '[']) {
                    // no space after opening or dot
                }
                s.push_str(&frag);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing_1() {
        let q = parse(
            "// Select ASes originating prefixes
             MATCH (x:AS)-[:ORIGINATE]-(:Prefix)
             RETURN DISTINCT x.asn",
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 2);
        let Clause::Match { optional, patterns } = &q.clauses[0] else {
            panic!("expected MATCH");
        };
        assert!(!optional);
        assert_eq!(patterns.len(), 1);
        let p = &patterns[0];
        assert_eq!(p.start.var.as_deref(), Some("x"));
        assert_eq!(p.start.labels, vec!["AS"]);
        assert_eq!(p.hops.len(), 1);
        assert_eq!(p.hops[0].0.types, vec!["ORIGINATE"]);
        assert_eq!(p.hops[0].0.dir, RelDir::Undirected);
        assert_eq!(p.hops[0].1.labels, vec!["Prefix"]);
        let Clause::Return(proj) = &q.clauses[1] else {
            panic!("expected RETURN")
        };
        assert!(proj.distinct);
        assert_eq!(proj.items[0].alias, "x.asn");
    }

    #[test]
    fn parses_listing_2_moas() {
        let q = parse(
            "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
             WHERE x.asn <> y.asn
             RETURN DISTINCT p.prefix",
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 3);
        assert!(matches!(
            &q.clauses[1],
            Clause::Where(Expr::Binary(BinOp::Ne, _, _))
        ));
    }

    #[test]
    fn parses_listing_3_with_inline_props_and_reference() {
        let q = parse(
            "MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(pfx:Prefix)-[:CATEGORIZED]-(:Tag {label:'RPKI Valid'})
             WHERE org.name = 'CERN'
             MATCH (pfx)-[:PART_OF]-(:IP)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(h:HostName)
             RETURN distinct h.name",
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 4);
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!()
        };
        let tag = &patterns[0].hops[2].1;
        assert_eq!(tag.labels, vec!["Tag"]);
        assert_eq!(tag.props[0].0, "label");
        let Clause::Match { patterns, .. } = &q.clauses[2] else {
            panic!()
        };
        let rel = &patterns[0].hops[1].0;
        assert_eq!(rel.props[0].0, "reference_name");
    }

    #[test]
    fn parses_directed_arrows() {
        let q = parse("MATCH (a)-[:R]->(b)<-[:S]-(c) RETURN a").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!()
        };
        assert_eq!(patterns[0].hops[0].0.dir, RelDir::Right);
        assert_eq!(patterns[0].hops[1].0.dir, RelDir::Left);
    }

    #[test]
    fn parses_multiple_rel_types() {
        let q = parse("MATCH (a)-[:R|S|:T]-(b) RETURN a").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!()
        };
        assert_eq!(patterns[0].hops[0].0.types, vec!["R", "S", "T"]);
    }

    #[test]
    fn parses_count_star_and_aggregates() {
        let q = parse("MATCH (n) RETURN count(*), count(DISTINCT n), collect(n.x) AS xs").unwrap();
        let Clause::Return(p) = &q.clauses[1] else {
            panic!()
        };
        assert_eq!(p.items.len(), 3);
        let Expr::Call {
            name,
            distinct,
            args,
        } = &p.items[0].expr
        else {
            panic!()
        };
        assert_eq!(name, "count");
        assert!(!distinct);
        assert!(args.is_empty());
        let Expr::Call { distinct, .. } = &p.items[1].expr else {
            panic!()
        };
        assert!(distinct);
        assert_eq!(p.items[2].alias, "xs");
    }

    #[test]
    fn parses_with_order_skip_limit() {
        let q = parse(
            "MATCH (n:AS)
             WITH n.asn AS asn, count(*) AS c
             WHERE c > 2
             RETURN asn ORDER BY c DESC, asn SKIP 1 LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 4);
        let Clause::Return(p) = &q.clauses[3] else {
            panic!()
        };
        assert_eq!(p.order_by.len(), 2);
        assert!(p.order_by[0].descending);
        assert!(!p.order_by[1].descending);
        assert!(p.skip.is_some());
        assert!(p.limit.is_some());
    }

    #[test]
    fn parses_starts_with_and_in() {
        let q = parse(
            "MATCH (t:Tag) WHERE t.label STARTS WITH 'RPKI Invalid' AND t.x IN [1,2,3] RETURN t",
        )
        .unwrap();
        let Clause::Where(e) = &q.clauses[1] else {
            panic!()
        };
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn parses_unwind_and_params() {
        let q = parse("UNWIND $asns AS a MATCH (n:AS {asn: a}) RETURN n.asn").unwrap();
        assert!(matches!(&q.clauses[0], Clause::Unwind { .. }));
    }

    #[test]
    fn parses_case() {
        let q = parse(
            "MATCH (n) RETURN CASE WHEN n.af = 4 THEN 'v4' WHEN n.af = 6 THEN 'v6' ELSE '?' END AS fam",
        )
        .unwrap();
        let Clause::Return(p) = &q.clauses[1] else {
            panic!()
        };
        assert!(matches!(&p.items[0].expr, Expr::Case { branches, .. } if branches.len() == 2));
        assert_eq!(p.items[0].alias, "fam");
    }

    #[test]
    fn parses_is_null() {
        let q = parse("MATCH (n) WHERE n.x IS NOT NULL AND n.y IS NULL RETURN n").unwrap();
        let Clause::Where(Expr::Binary(BinOp::And, a, b)) = &q.clauses[1] else {
            panic!()
        };
        assert!(matches!(a.as_ref(), Expr::IsNull(_, true)));
        assert!(matches!(b.as_ref(), Expr::IsNull(_, false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("MATCH (n)").is_err()); // no RETURN
        assert!(parse("RETURN").is_err());
        assert!(parse("MATCH (n RETURN n").is_err());
        assert!(parse("MATCH (a)<-[:R]->(b) RETURN a").is_err());
        assert!(parse("MATCH (n) RETURN n extra").is_err());
    }

    #[test]
    fn backticked_ranking_name() {
        let q = parse("MATCH (r:Ranking {name: 'Tranco top 1M'})-[:RANK]-(d) RETURN d").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!()
        };
        assert_eq!(patterns[0].start.props[0].0, "name");
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        for q in [
            "match (n) return n",
            "MATCH (n) RETURN n",
            "Match (n) Return n",
            "mAtCh (n) rEtUrN n",
        ] {
            assert!(parse(q).is_ok(), "{q}");
        }
    }

    #[test]
    fn keyword_like_identifiers_work_as_variables() {
        // `matcher`, `returned` must not be eaten as keywords.
        let q = parse("MATCH (matcher:AS) RETURN matcher.asn").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!()
        };
        assert_eq!(patterns[0].start.var.as_deref(), Some("matcher"));
    }

    #[test]
    fn var_length_forms() {
        for (q, expected) in [
            ("MATCH (a)-[:R*]-(b) RETURN a", (1, VAR_LENGTH_CAP)),
            ("MATCH (a)-[:R*3]-(b) RETURN a", (3, 3)),
            ("MATCH (a)-[:R*2..5]-(b) RETURN a", (2, 5)),
            ("MATCH (a)-[:R*..4]-(b) RETURN a", (1, 4)),
            ("MATCH (a)-[:R*2..]-(b) RETURN a", (2, VAR_LENGTH_CAP)),
        ] {
            let ast = parse(q).unwrap();
            let Clause::Match { patterns, .. } = &ast.clauses[0] else {
                panic!()
            };
            assert_eq!(patterns[0].hops[0].0.var_length, Some(expected), "{q}");
        }
    }

    #[test]
    fn exists_subquery_parses() {
        let q = parse(
            "MATCH (a:AS) WHERE EXISTS { MATCH (a)-[:ORIGINATE]-(p:Prefix) WHERE p.af = 4 } RETURN a",
        )
        .unwrap();
        let Clause::Where(Expr::Exists { patterns, filter }) = &q.clauses[1] else {
            panic!("{:?}", q.clauses[1]);
        };
        assert_eq!(patterns.len(), 1);
        assert!(filter.is_some());
    }

    #[test]
    fn write_clause_shapes() {
        assert!(parse("CREATE (:AS {asn: 1})").is_ok());
        assert!(parse("MERGE (t:Tag {label: 'x'})").is_ok());
        assert!(parse("MATCH (a) SET a.x = 1, a.y = 'z'").is_ok());
        assert!(parse("MATCH (a) DETACH DELETE a").is_ok());
        assert!(parse("MATCH (a)-[r]-() DELETE r, a").is_ok());
        // Reads still require RETURN.
        assert!(parse("MATCH (a)").is_err());
        // SET without assignment fails.
        assert!(parse("MATCH (a) SET a").is_err());
    }

    #[test]
    fn semicolons_and_whitespace_are_tolerated() {
        assert!(parse("MATCH (n) RETURN n;").is_ok());
        assert!(parse("  \n\tMATCH (n)\n\nRETURN n\n").is_ok());
        assert!(parse("CREATE (:AS {asn: 1});").is_ok());
    }

    #[test]
    fn deeply_nested_expressions() {
        assert!(
            parse("MATCH (n) WHERE ((n.a + 1) * (n.b - 2)) / (n.c % 3) > -(n.d ^ 2) RETURN n")
                .is_ok()
        );
        assert!(parse(
            "MATCH (n) RETURN CASE WHEN n.x IN [1, [2, 3], 'a'] THEN coalesce(n.y, n.z, 0) ELSE size(split(n.s, '.')) END"
        )
        .is_ok());
    }
}
