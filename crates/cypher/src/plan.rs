//! Execution plans for `EXPLAIN` and `PROFILE`.
//!
//! The executor is a clause pipeline, so the plan is a linear operator
//! chain rooted at `ProduceResults`. `EXPLAIN` builds the chain from
//! the AST plus graph statistics (which anchor the matcher would pick,
//! how many nodes a label scan would touch); `PROFILE` additionally
//! runs the query and annotates every operator with the rows it
//! produced and the wall time it consumed.

use crate::ast::*;
use iyp_graph::Graph;
use std::time::Duration;

/// Per-clause measurements collected by the `PROFILE` observer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClauseStat {
    /// Rows the clause produced.
    pub rows: u64,
    /// Wall time the clause consumed.
    pub time: Duration,
    /// Widest parallelism any stage of the clause ran at (1 = serial).
    pub parallelism: usize,
    /// Rows produced per worker slot, summed across parallel stages.
    pub chunk_rows: Vec<u64>,
}

/// One operator in an execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Operator name, e.g. `NodeByLabelScan`, `Filter`, `ProduceResults`.
    pub op: String,
    /// Human-readable operator arguments.
    pub detail: String,
    /// Input operators (the pipeline has exactly zero or one).
    pub children: Vec<PlanNode>,
    /// Rows this operator produced (`PROFILE` only).
    pub rows: Option<u64>,
    /// Wall time spent in this operator (`PROFILE` only).
    pub time: Option<Duration>,
    /// Worker threads the operator ran on (`PROFILE` only; absent or 1
    /// means it ran serially).
    pub parallelism: Option<usize>,
    /// Rows produced per worker slot (`PROFILE` only, parallel runs).
    pub chunk_rows: Option<Vec<u64>>,
    /// Index of the source clause this operator corresponds to, when
    /// it maps one-to-one (used to attach `PROFILE` measurements).
    pub clause: Option<usize>,
    /// Whether the query-result cache answered (`"hit"`) or was
    /// populated (`"miss"`) by this run. Set on the root operator only,
    /// by `PROFILE` when a cache is enabled; rendered as `cache=hit`
    /// in the annotation notes.
    pub cache: Option<&'static str>,
}

impl PlanNode {
    /// A bare operator node.
    pub fn new(op: impl Into<String>, detail: impl Into<String>) -> Self {
        PlanNode {
            op: op.into(),
            detail: detail.into(),
            children: Vec::new(),
            rows: None,
            time: None,
            parallelism: None,
            chunk_rows: None,
            clause: None,
            cache: None,
        }
    }

    /// Pretty-prints the plan as an indented operator tree, one line
    /// per operator, annotations aligned right when present.
    pub fn render(&self) -> String {
        let mut lines = Vec::new();
        self.render_into(0, &mut lines);
        lines.join("\n")
    }

    /// The plan as individual display lines (used to shape a
    /// [`crate::ResultSet`] for the text protocol).
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        self.render_into(0, &mut lines);
        lines
    }

    fn render_into(&self, depth: usize, out: &mut Vec<String>) {
        let indent = if depth == 0 {
            String::new()
        } else {
            format!("{}+- ", "   ".repeat(depth - 1))
        };
        let mut line = format!("{indent}{}", self.op);
        if !self.detail.is_empty() {
            line.push_str(&format!(" ({})", self.detail));
        }
        let mut notes = Vec::new();
        if let Some(rows) = self.rows {
            notes.push(format!("rows={rows}"));
        }
        if let Some(t) = self.time {
            notes.push(format!("time={:.3}ms", t.as_secs_f64() * 1e3));
        }
        if let Some(par) = self.parallelism.filter(|p| *p > 1) {
            notes.push(format!("par={par}"));
            if let Some(chunks) = self.chunk_rows.as_ref().filter(|c| !c.is_empty()) {
                let per: Vec<String> = chunks.iter().map(u64::to_string).collect();
                notes.push(format!("chunks={}", per.join("/")));
            }
        }
        if let Some(c) = self.cache {
            notes.push(format!("cache={c}"));
        }
        if !notes.is_empty() {
            line.push_str(&format!("  [{}]", notes.join(" ")));
        }
        out.push(line);
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }

    /// Depth-first operator list, root first (pipelines are linear, so
    /// this is execution order reversed).
    pub fn flatten(&self) -> Vec<&PlanNode> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.flatten());
        }
        out
    }

    /// Finds the first operator whose name matches.
    pub fn find(&self, op: &str) -> Option<&PlanNode> {
        self.flatten().into_iter().find(|n| n.op == op)
    }
}

/// Builds the execution plan for a parsed query without running it.
/// The chain is rooted at the final clause (`ProduceResults`); leaves
/// are the data-access operators.
pub fn plan_query(graph: &Graph, ast: &Query) -> PlanNode {
    let mut chain: Option<PlanNode> = None;
    let mut bound: Vec<String> = Vec::new();
    for (i, clause) in ast.clauses.iter().enumerate() {
        let mut node = plan_clause(graph, clause, &bound);
        node.clause = Some(i);
        for var in clause_vars(clause) {
            if !bound.contains(&var) {
                bound.push(var);
            }
        }
        if let Some(prev) = chain.take() {
            node.children.push(prev);
        }
        chain = Some(node);
    }
    chain.unwrap_or_else(|| PlanNode::new("EmptyPlan", ""))
}

/// Attaches `PROFILE` measurements (rows produced, wall time, and
/// parallel-stage data per clause, in pipeline order) to a plan built
/// by [`plan_query`].
pub fn annotate(mut plan: PlanNode, stats: &[ClauseStat]) -> PlanNode {
    fn walk(node: &mut PlanNode, stats: &[ClauseStat]) {
        if let Some(stat) = node.clause.and_then(|i| stats.get(i)) {
            node.rows = Some(stat.rows);
            node.time = Some(stat.time);
            if stat.parallelism > 1 {
                node.parallelism = Some(stat.parallelism);
                node.chunk_rows = Some(stat.chunk_rows.clone());
            }
        }
        for child in &mut node.children {
            walk(child, stats);
        }
    }
    walk(&mut plan, stats);
    plan
}

fn plan_clause(graph: &Graph, clause: &Clause, bound: &[String]) -> PlanNode {
    match clause {
        Clause::Match { optional, patterns } => {
            let op = if *optional { "OptionalMatch" } else { "Match" };
            let mut node = PlanNode::new(op, summarize_patterns(patterns));
            // Describe the access path for each pattern the way the
            // matcher will pick it: bound variable, index seek, or the
            // cheapest label scan.
            for p in patterns {
                node.children.push(access_path(graph, p, bound));
            }
            node
        }
        Clause::Where(e) => PlanNode::new("Filter", expr_summary(e)),
        Clause::Unwind { var, .. } => PlanNode::new("Unwind", format!("AS {var}")),
        Clause::With(proj) => projection_node("Projection", proj),
        Clause::Return(proj) => projection_node("ProduceResults", proj),
        Clause::Create(_) => PlanNode::new("Create", ""),
        Clause::Merge(_) => PlanNode::new("Merge", ""),
        Clause::Set(_) => PlanNode::new("SetProperties", ""),
        Clause::Delete { detach, .. } => {
            PlanNode::new(if *detach { "DetachDelete" } else { "Delete" }, "")
        }
    }
}

fn projection_node(op: &str, proj: &Projection) -> PlanNode {
    let mut parts = Vec::new();
    if proj.distinct {
        parts.push("DISTINCT".to_string());
    }
    parts.push(
        proj.items
            .iter()
            .map(|i| i.alias.clone())
            .collect::<Vec<_>>()
            .join(", "),
    );
    if !proj.order_by.is_empty() {
        parts.push(format!("ORDER BY {} key(s)", proj.order_by.len()));
    }
    if proj.skip.is_some() {
        parts.push("SKIP".into());
    }
    if proj.limit.is_some() {
        parts.push("LIMIT".into());
    }
    PlanNode::new(op, parts.join(" "))
}

/// Mirrors the matcher's anchor selection: which node of the pattern
/// execution starts from, and what that costs.
fn access_path(graph: &Graph, pattern: &PathPattern, bound: &[String]) -> PlanNode {
    let nodes: Vec<&NodePattern> = std::iter::once(&pattern.start)
        .chain(pattern.hops.iter().map(|(_, n)| n))
        .collect();
    // Rank: bound var < index lookup < smallest label scan.
    let mut best: Option<(usize, PlanNode)> = None;
    for np in &nodes {
        let var = np.var.clone().unwrap_or_else(|| "_".into());
        let (rank, node) = if np.var.as_ref().is_some_and(|v| bound.contains(v)) {
            (0usize, PlanNode::new("BoundVariable", var))
        } else if !np.labels.is_empty() && !np.props.is_empty() {
            (
                1,
                PlanNode::new(
                    "NodeIndexSeek",
                    format!("{var}:{} {{{}}}", np.labels.join(":"), np.props[0].0),
                ),
            )
        } else if let Some(first) = np.labels.first() {
            let count = graph.label_count(first);
            (
                2 + count,
                PlanNode::new("NodeByLabelScan", format!("{var}:{first} (~{count} nodes)")),
            )
        } else {
            let count = graph.node_count();
            (
                2 + count,
                PlanNode::new("AllNodesScan", format!("{var} (~{count} nodes)")),
            )
        };
        if best.as_ref().is_none_or(|(r, _)| rank < *r) {
            best = Some((rank, node));
        }
    }
    let mut access = best.map(|(_, n)| n).expect("pattern has at least one node");
    if !pattern.hops.is_empty() {
        let mut expand = PlanNode::new("Expand", format!("{} hop(s)", pattern.hops.len()));
        expand.children.push(access);
        access = expand;
    }
    access
}

/// Variables introduced by a clause (tracked for anchor planning).
fn clause_vars(clause: &Clause) -> Vec<String> {
    match clause {
        Clause::Match { patterns, .. } | Clause::Create(patterns) => {
            crate::exec::pattern_vars(patterns)
        }
        Clause::Merge(p) => crate::exec::pattern_vars(std::slice::from_ref(p)),
        Clause::Unwind { var, .. } => vec![var.clone()],
        Clause::With(proj) => proj.items.iter().map(|i| i.alias.clone()).collect(),
        _ => Vec::new(),
    }
}

/// Compact single-line rendering of a set of path patterns.
pub fn summarize_patterns(patterns: &[PathPattern]) -> String {
    patterns
        .iter()
        .map(pattern_summary)
        .collect::<Vec<_>>()
        .join(", ")
}

fn pattern_summary(p: &PathPattern) -> String {
    let mut s = node_summary(&p.start);
    for (rel, node) in &p.hops {
        let types = if rel.types.is_empty() {
            String::new()
        } else {
            format!(":{}", rel.types.join("|"))
        };
        let var = rel.var.clone().unwrap_or_default();
        let body = if var.is_empty() && types.is_empty() {
            String::new()
        } else {
            format!("[{var}{types}]")
        };
        let arrow = match rel.dir {
            RelDir::Right => format!("-{body}->"),
            RelDir::Left => format!("<-{body}-"),
            RelDir::Undirected => format!("-{body}-"),
        };
        s.push_str(&arrow);
        s.push_str(&node_summary(node));
    }
    s
}

fn node_summary(n: &NodePattern) -> String {
    let mut s = String::from("(");
    if let Some(v) = &n.var {
        s.push_str(v);
    }
    for l in &n.labels {
        s.push(':');
        s.push_str(l);
    }
    if !n.props.is_empty() {
        s.push_str(" {");
        s.push_str(
            &n.props
                .iter()
                .map(|(k, _)| format!("{k}: …"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push('}');
    }
    s.push(')');
    s
}

/// Compact single-line rendering of an expression (for `Filter` rows).
pub fn expr_summary(e: &Expr) -> String {
    match e {
        Expr::Lit(iyp_graph::Value::Str(s)) => format!("'{s}'"),
        Expr::Lit(v) => format!("{v}"),
        Expr::Param(p) => format!("${p}"),
        Expr::Var(v) => v.clone(),
        Expr::Prop(b, k) => format!("{}.{k}", expr_summary(b)),
        Expr::List(items) => format!(
            "[{}]",
            items
                .iter()
                .map(expr_summary)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Expr::Unary(UnaryOp::Not, b) => format!("NOT {}", expr_summary(b)),
        Expr::Unary(UnaryOp::Neg, b) => format!("-{}", expr_summary(b)),
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Xor => "XOR",
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Pow => "^",
                BinOp::In => "IN",
                BinOp::StartsWith => "STARTS WITH",
                BinOp::EndsWith => "ENDS WITH",
                BinOp::Contains => "CONTAINS",
            };
            format!("{} {sym} {}", expr_summary(a), expr_summary(b))
        }
        Expr::IsNull(b, negated) => format!(
            "{} IS {}NULL",
            expr_summary(b),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Call {
            name,
            distinct,
            args,
        } => format!(
            "{name}({}{})",
            if *distinct { "DISTINCT " } else { "" },
            args.iter().map(expr_summary).collect::<Vec<_>>().join(", ")
        ),
        Expr::Index(a, b) => format!("{}[{}]", expr_summary(a), expr_summary(b)),
        Expr::Case { .. } => "CASE … END".into(),
        Expr::Exists { patterns, .. } => {
            format!("EXISTS {{ {} }}", summarize_patterns(patterns))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use iyp_graph::{Graph, Props};

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 64496u32, Props::new());
        let p = g.merge_node("Prefix", "prefix", "192.0.2.0/24", Props::new());
        g.create_rel(a, "ORIGINATE", p, Props::new()).unwrap();
        g
    }

    #[test]
    fn plan_is_rooted_at_produce_results() {
        let g = sample_graph();
        let ast =
            parse("MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) WHERE a.asn > 0 RETURN p.prefix").unwrap();
        let plan = plan_query(&g, &ast);
        assert_eq!(plan.op, "ProduceResults");
        assert!(plan.find("Filter").is_some());
        assert!(plan.find("Match").is_some());
        let rendered = plan.render();
        assert!(
            rendered.contains("NodeByLabelScan") || rendered.contains("Expand"),
            "{rendered}"
        );
    }

    #[test]
    fn index_seek_beats_label_scan() {
        let g = sample_graph();
        let ast = parse("MATCH (a:AS {asn: 64496}) RETURN a.asn").unwrap();
        let plan = plan_query(&g, &ast);
        assert!(plan.render().contains("NodeIndexSeek"), "{}", plan.render());
    }

    #[test]
    fn annotate_attaches_stats_in_pipeline_order() {
        let g = sample_graph();
        let ast = parse("MATCH (a:AS) RETURN count(*)").unwrap();
        let plan = plan_query(&g, &ast);
        let stats = vec![
            ClauseStat {
                rows: 7,
                time: Duration::from_millis(1),
                parallelism: 4,
                chunk_rows: vec![2, 2, 2, 1],
            },
            ClauseStat {
                rows: 1,
                time: Duration::from_millis(2),
                parallelism: 1,
                chunk_rows: Vec::new(),
            },
        ];
        let annotated = annotate(plan, &stats);
        assert_eq!(annotated.rows, Some(1)); // ProduceResults is last
        assert_eq!(annotated.children[0].rows, Some(7)); // Match is first
                                                         // Parallel stages surface as par=/chunks= notes on their operator.
        assert!(annotated.parallelism.is_none());
        assert_eq!(annotated.children[0].parallelism, Some(4));
        let rendered = annotated.render();
        assert!(rendered.contains("par=4"), "{rendered}");
        assert!(rendered.contains("chunks=2/2/2/1"), "{rendered}");
    }

    #[test]
    fn expr_summary_is_compact() {
        let ast = parse("MATCH (a) WHERE a.asn <> 3 AND a.name STARTS WITH 'x' RETURN a").unwrap();
        let Clause::Where(e) = &ast.clauses[1] else {
            panic!("expected WHERE")
        };
        assert_eq!(expr_summary(e), "a.asn <> 3 AND a.name STARTS WITH 'x'");
    }
}
