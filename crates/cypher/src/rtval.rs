//! Runtime values: scalars plus graph entities.

use iyp_graph::{Graph, NodeId, RelId, Value};
use std::cmp::Ordering;

/// A value flowing through the query pipeline. Unlike [`Value`], rows can
/// carry whole nodes and relationships (e.g. `RETURN d, COLLECT(pfx)` in
/// Listing 6), which keep their identity for `DISTINCT` and grouping.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    /// A scalar (or scalar list) value.
    Scalar(Value),
    /// A node reference.
    Node(NodeId),
    /// A relationship reference.
    Rel(RelId),
    /// A list that may contain graph entities (result of `collect`).
    List(Vec<RtVal>),
}

impl RtVal {
    /// Null scalar.
    pub fn null() -> RtVal {
        RtVal::Scalar(Value::Null)
    }

    /// True if this is a null scalar.
    pub fn is_null(&self) -> bool {
        matches!(self, RtVal::Scalar(Value::Null))
    }

    /// The scalar inside, if this is a scalar.
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            RtVal::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// The node id inside, if this is a node.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            RtVal::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// The relationship id inside, if this is a relationship.
    pub fn as_rel(&self) -> Option<RelId> {
        match self {
            RtVal::Rel(r) => Some(*r),
            _ => None,
        }
    }

    /// The list inside, if this is a list of any kind.
    pub fn as_list(&self) -> Option<Vec<RtVal>> {
        match self {
            RtVal::List(l) => Some(l.clone()),
            RtVal::Scalar(Value::List(l)) => {
                Some(l.iter().map(|v| RtVal::Scalar(v.clone())).collect())
            }
            _ => None,
        }
    }

    /// Property lookup: nodes and relationships resolve against the
    /// graph; anything else yields null (Cypher semantics).
    pub fn prop(&self, graph: &Graph, key: &str) -> RtVal {
        let v = match self {
            RtVal::Node(n) => graph.node(*n).and_then(|n| n.prop(key)).cloned(),
            RtVal::Rel(r) => graph.rel(*r).and_then(|r| r.prop(key)).cloned(),
            _ => None,
        };
        RtVal::Scalar(v.unwrap_or(Value::Null))
    }

    /// Total ordering for `ORDER BY`, `DISTINCT`, and grouping.
    /// Entities order by kind then id; scalars by [`Value::order`].
    pub fn order(&self, other: &RtVal) -> Ordering {
        fn rank(v: &RtVal) -> u8 {
            match v {
                RtVal::Scalar(_) => 0,
                RtVal::Node(_) => 1,
                RtVal::Rel(_) => 2,
                RtVal::List(_) => 3,
            }
        }
        match (self, other) {
            (RtVal::Scalar(a), RtVal::Scalar(b)) => a.order(b),
            (RtVal::Node(a), RtVal::Node(b)) => a.cmp(b),
            (RtVal::Rel(a), RtVal::Rel(b)) => a.cmp(b),
            (RtVal::List(a), RtVal::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.order(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Renders the value for display; nodes render as `(labels key)`.
    pub fn render(&self, graph: &Graph) -> String {
        match self {
            RtVal::Scalar(v) => v.to_string(),
            RtVal::Node(id) => match graph.node(*id) {
                Some(n) => {
                    let labels: Vec<&str> = n
                        .labels
                        .iter()
                        .map(|l| graph.symbols().label_name(*l))
                        .collect();
                    format!("(:{} #{})", labels.join(":"), id.0)
                }
                None => format!("(#{}?)", id.0),
            },
            RtVal::Rel(id) => match graph.rel(*id) {
                Some(r) => format!("[:{} #{}]", graph.symbols().rel_type_name(r.rel_type), id.0),
                None => format!("[#{}?]", id.0),
            },
            RtVal::List(l) => {
                let items: Vec<String> = l.iter().map(|v| v.render(graph)).collect();
                format!("[{}]", items.join(", "))
            }
        }
    }
}

impl From<Value> for RtVal {
    fn from(v: Value) -> Self {
        RtVal::Scalar(v)
    }
}

/// A hashable structural key for grouping and `DISTINCT`.
///
/// Replaces the old `render()`-string fingerprints, which conflated
/// values that render identically (`1` vs `"1"`, nodes vs their
/// rendering) and broke on strings containing the join separator.
/// Structure is preserved exactly; the only normalisation is numeric:
/// a whole `Float` maps to the same key as the equal `Int` (Cypher
/// equivalence: `1` and `1.0` are the same grouping key), `-0.0`
/// collapses to `0`, and all NaNs share one key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// Null (all nulls group together, as with the old fingerprints).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer, or a float exactly equal to one.
    Int(i64),
    /// A non-integral float, by bit pattern (NaN canonicalised).
    Float(u64),
    /// A string, structurally (no separator to collide with).
    Str(String),
    /// A node, by identity.
    Node(u64),
    /// A relationship, by identity.
    Rel(u64),
    /// A list; scalar lists and entity lists with equal elements agree.
    List(Vec<GroupKey>),
}

impl GroupKey {
    fn of_value(v: &Value) -> GroupKey {
        match v {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Int(*i),
            Value::Float(f) => GroupKey::of_float(*f),
            Value::Str(s) => GroupKey::Str(s.clone()),
            Value::List(l) => GroupKey::List(l.iter().map(GroupKey::of_value).collect()),
        }
    }

    fn of_float(f: f64) -> GroupKey {
        if f.is_nan() {
            return GroupKey::Float(f64::NAN.to_bits());
        }
        // A whole float within i64 range is equivalent to the integer
        // (this also folds -0.0 into 0).
        if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
            let i = f as i64;
            if i as f64 == f {
                return GroupKey::Int(i);
            }
        }
        GroupKey::Float(f.to_bits())
    }
}

impl RtVal {
    /// The structural grouping/`DISTINCT` key of this value.
    pub fn group_key(&self) -> GroupKey {
        if iyp_telemetry::enabled() {
            iyp_telemetry::counter(iyp_telemetry::names::CYPHER_GROUP_KEYS_TOTAL).incr();
        }
        self.group_key_inner()
    }

    fn group_key_inner(&self) -> GroupKey {
        match self {
            RtVal::Scalar(v) => GroupKey::of_value(v),
            RtVal::Node(n) => GroupKey::Node(n.0),
            RtVal::Rel(r) => GroupKey::Rel(r.0),
            RtVal::List(l) => GroupKey::List(l.iter().map(RtVal::group_key_inner).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::{props, Props};

    #[test]
    fn prop_resolution() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, props([("name", "IIJ".into())]));
        let v = RtVal::Node(a);
        assert_eq!(
            v.prop(&g, "name").as_scalar().unwrap().as_str(),
            Some("IIJ")
        );
        assert!(v.prop(&g, "missing").is_null());
        assert!(RtVal::Scalar(Value::Int(1)).prop(&g, "x").is_null());
    }

    #[test]
    fn ordering_entities() {
        let a = RtVal::Node(NodeId(1));
        let b = RtVal::Node(NodeId(2));
        assert_eq!(a.order(&b), Ordering::Less);
        assert_eq!(a.order(&a), Ordering::Equal);
        // Scalars sort before nodes.
        assert_eq!(RtVal::Scalar(Value::Int(9)).order(&a), Ordering::Less);
    }

    #[test]
    fn list_coercion() {
        let l = RtVal::Scalar(Value::List(vec![Value::Int(1), Value::Int(2)]));
        assert_eq!(l.as_list().unwrap().len(), 2);
        let l2 = RtVal::List(vec![RtVal::Node(NodeId(0))]);
        assert_eq!(l2.as_list().unwrap().len(), 1);
        assert!(RtVal::Scalar(Value::Int(1)).as_list().is_none());
    }

    #[test]
    fn group_key_semantics() {
        let int1 = RtVal::Scalar(Value::Int(1)).group_key();
        let float1 = RtVal::Scalar(Value::Float(1.0)).group_key();
        let str1 = RtVal::Scalar(Value::Str("1".into())).group_key();
        // Cypher numeric equivalence: 1 and 1.0 share a key …
        assert_eq!(int1, float1);
        // … but the string "1" does not (the old render-fingerprint
        // conflated all three).
        assert_ne!(int1, str1);
        // Entities are identity, not their rendering or their id number.
        assert_ne!(RtVal::Node(NodeId(1)).group_key(), int1);
        assert_ne!(
            RtVal::Node(NodeId(1)).group_key(),
            RtVal::Rel(RelId(1)).group_key()
        );
        // Strings embedding the old \u{1} separator can no longer
        // collide with multi-value keys.
        let embedded = RtVal::Scalar(Value::Str("a\u{1}b".into())).group_key();
        let split = RtVal::List(vec![
            RtVal::Scalar(Value::Str("a".into())),
            RtVal::Scalar(Value::Str("b".into())),
        ])
        .group_key();
        assert_ne!(embedded, split);
        // Scalar lists and entity-shaped lists with equal elements agree.
        assert_eq!(
            RtVal::Scalar(Value::List(vec![Value::Int(2), Value::Int(3)])).group_key(),
            RtVal::List(vec![
                RtVal::Scalar(Value::Int(2)),
                RtVal::Scalar(Value::Int(3))
            ])
            .group_key()
        );
        // Float edge cases: -0.0 folds into 0; NaNs share one key; a
        // non-integral float keeps its own key.
        assert_eq!(
            RtVal::Scalar(Value::Float(-0.0)).group_key(),
            RtVal::Scalar(Value::Int(0)).group_key()
        );
        assert_eq!(
            RtVal::Scalar(Value::Float(f64::NAN)).group_key(),
            RtVal::Scalar(Value::Float(-f64::NAN)).group_key()
        );
        assert_ne!(
            RtVal::Scalar(Value::Float(1.5)).group_key(),
            RtVal::Scalar(Value::Int(1)).group_key()
        );
    }

    #[test]
    fn render() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        let b = g.merge_node("AS", "asn", 2u32, Props::new());
        let r = g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        assert!(RtVal::Node(a).render(&g).contains(":AS"));
        assert!(RtVal::Rel(r).render(&g).contains("PEERS_WITH"));
        assert_eq!(
            RtVal::List(vec![RtVal::Scalar(Value::Int(1))]).render(&g),
            "[1]"
        );
    }
}
