//! Runtime values: scalars plus graph entities.

use iyp_graph::{Graph, NodeId, RelId, Value};
use std::cmp::Ordering;

/// A value flowing through the query pipeline. Unlike [`Value`], rows can
/// carry whole nodes and relationships (e.g. `RETURN d, COLLECT(pfx)` in
/// Listing 6), which keep their identity for `DISTINCT` and grouping.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    /// A scalar (or scalar list) value.
    Scalar(Value),
    /// A node reference.
    Node(NodeId),
    /// A relationship reference.
    Rel(RelId),
    /// A list that may contain graph entities (result of `collect`).
    List(Vec<RtVal>),
}

impl RtVal {
    /// Null scalar.
    pub fn null() -> RtVal {
        RtVal::Scalar(Value::Null)
    }

    /// True if this is a null scalar.
    pub fn is_null(&self) -> bool {
        matches!(self, RtVal::Scalar(Value::Null))
    }

    /// The scalar inside, if this is a scalar.
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            RtVal::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// The node id inside, if this is a node.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            RtVal::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// The relationship id inside, if this is a relationship.
    pub fn as_rel(&self) -> Option<RelId> {
        match self {
            RtVal::Rel(r) => Some(*r),
            _ => None,
        }
    }

    /// The list inside, if this is a list of any kind.
    pub fn as_list(&self) -> Option<Vec<RtVal>> {
        match self {
            RtVal::List(l) => Some(l.clone()),
            RtVal::Scalar(Value::List(l)) => {
                Some(l.iter().map(|v| RtVal::Scalar(v.clone())).collect())
            }
            _ => None,
        }
    }

    /// Property lookup: nodes and relationships resolve against the
    /// graph; anything else yields null (Cypher semantics).
    pub fn prop(&self, graph: &Graph, key: &str) -> RtVal {
        let v = match self {
            RtVal::Node(n) => graph.node(*n).and_then(|n| n.prop(key)).cloned(),
            RtVal::Rel(r) => graph.rel(*r).and_then(|r| r.prop(key)).cloned(),
            _ => None,
        };
        RtVal::Scalar(v.unwrap_or(Value::Null))
    }

    /// Total ordering for `ORDER BY`, `DISTINCT`, and grouping.
    /// Entities order by kind then id; scalars by [`Value::order`].
    pub fn order(&self, other: &RtVal) -> Ordering {
        fn rank(v: &RtVal) -> u8 {
            match v {
                RtVal::Scalar(_) => 0,
                RtVal::Node(_) => 1,
                RtVal::Rel(_) => 2,
                RtVal::List(_) => 3,
            }
        }
        match (self, other) {
            (RtVal::Scalar(a), RtVal::Scalar(b)) => a.order(b),
            (RtVal::Node(a), RtVal::Node(b)) => a.cmp(b),
            (RtVal::Rel(a), RtVal::Rel(b)) => a.cmp(b),
            (RtVal::List(a), RtVal::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.order(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Renders the value for display; nodes render as `(labels key)`.
    pub fn render(&self, graph: &Graph) -> String {
        match self {
            RtVal::Scalar(v) => v.to_string(),
            RtVal::Node(id) => match graph.node(*id) {
                Some(n) => {
                    let labels: Vec<&str> = n
                        .labels
                        .iter()
                        .map(|l| graph.symbols().label_name(*l))
                        .collect();
                    format!("(:{} #{})", labels.join(":"), id.0)
                }
                None => format!("(#{}?)", id.0),
            },
            RtVal::Rel(id) => match graph.rel(*id) {
                Some(r) => format!("[:{} #{}]", graph.symbols().rel_type_name(r.rel_type), id.0),
                None => format!("[#{}?]", id.0),
            },
            RtVal::List(l) => {
                let items: Vec<String> = l.iter().map(|v| v.render(graph)).collect();
                format!("[{}]", items.join(", "))
            }
        }
    }
}

impl From<Value> for RtVal {
    fn from(v: Value) -> Self {
        RtVal::Scalar(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::{props, Props};

    #[test]
    fn prop_resolution() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, props([("name", "IIJ".into())]));
        let v = RtVal::Node(a);
        assert_eq!(
            v.prop(&g, "name").as_scalar().unwrap().as_str(),
            Some("IIJ")
        );
        assert!(v.prop(&g, "missing").is_null());
        assert!(RtVal::Scalar(Value::Int(1)).prop(&g, "x").is_null());
    }

    #[test]
    fn ordering_entities() {
        let a = RtVal::Node(NodeId(1));
        let b = RtVal::Node(NodeId(2));
        assert_eq!(a.order(&b), Ordering::Less);
        assert_eq!(a.order(&a), Ordering::Equal);
        // Scalars sort before nodes.
        assert_eq!(RtVal::Scalar(Value::Int(9)).order(&a), Ordering::Less);
    }

    #[test]
    fn list_coercion() {
        let l = RtVal::Scalar(Value::List(vec![Value::Int(1), Value::Int(2)]));
        assert_eq!(l.as_list().unwrap().len(), 2);
        let l2 = RtVal::List(vec![RtVal::Node(NodeId(0))]);
        assert_eq!(l2.as_list().unwrap().len(), 1);
        assert!(RtVal::Scalar(Value::Int(1)).as_list().is_none());
    }

    #[test]
    fn render() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        let b = g.merge_node("AS", "asn", 2u32, Props::new());
        let r = g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        assert!(RtVal::Node(a).render(&g).contains(":AS"));
        assert!(RtVal::Rel(r).render(&g).contains("PEERS_WITH"));
        assert_eq!(
            RtVal::List(vec![RtVal::Scalar(Value::Int(1))]).render(&g),
            "[1]"
        );
    }
}
