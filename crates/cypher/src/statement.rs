//! Prepared statements: the first-class query API.
//!
//! [`Statement`] replaces the old `query` / `query_with_cancel` /
//! `explain` / `profile` free-function spread (those remain as thin
//! shims). Preparing parses once — re-preparing the same text reuses a
//! process-global AST cache — and running consults an epoch-keyed
//! [`QueryCache`] so repeated hot queries against an unchanged graph
//! skip execution entirely:
//!
//! ```
//! use iyp_cypher::{Cancel, Params, Statement};
//! use iyp_graph::{Graph, Props, Value};
//!
//! let mut g = Graph::new();
//! g.merge_node("AS", "asn", 2497u32, Props::new());
//! let mut params = Params::new();
//! params.insert("asn".to_string(), Value::Int(2497));
//! let cancel = Cancel::new();
//! let n = Statement::prepare("MATCH (a:AS {asn: $asn}) RETURN count(a)")?
//!     .params(&params)
//!     .cancel(&cancel)
//!     .run(&g)?;
//! assert_eq!(n.single_int(), Some(1));
//! # Ok::<(), iyp_cypher::CypherError>(())
//! ```
//!
//! Cache semantics: a statement run consults its attached cache (or
//! the [`crate::cache::global`] one when none is attached; attach with
//! [`Statement::cache`], opt out with [`Statement::no_cache`]). A hit
//! still polls the cancel token once, so `--query-timeout` semantics
//! hold — an already-expired deadline reports `timeout` rather than
//! sneaking a result out of the cache. `PROFILE` runs annotate the
//! plan root with `cache=hit|miss` whenever a cache is enabled; on a
//! hit the plan carries no per-operator stats because nothing ran.

use crate::ast::{Query, QueryMode};
use crate::cache::{self, QueryCache};
use crate::cancel::Cancel;
use crate::error::CypherError;
use crate::exec::{execute_observed, plan_result, run_profiled, Params, ResultSet};
use crate::parser::parse;
use crate::plan::{plan_query, PlanNode};
use iyp_graph::Graph;
use std::sync::{Arc, OnceLock};

/// A parsed, reusable query. See the module docs for an example.
pub struct Statement<'a> {
    text: String,
    ast: Arc<Query>,
    params: Option<&'a Params>,
    cancel: Option<&'a Cancel>,
    cache: Option<&'a QueryCache>,
    use_cache: bool,
}

fn empty_params() -> &'static Params {
    static EMPTY: OnceLock<Params> = OnceLock::new();
    EMPTY.get_or_init(Params::new)
}

impl<'a> Statement<'a> {
    /// Parses `text` into a reusable statement. The parsed AST is
    /// shared through a process-global cache, so preparing the same
    /// text twice does not re-run the parser.
    pub fn prepare(text: &str) -> Result<Statement<'static>, CypherError> {
        let ast = match cache::cached_ast(text) {
            Some(ast) => ast,
            None => {
                let ast = Arc::new(parse(text)?);
                cache::store_ast(text, Arc::clone(&ast));
                ast
            }
        };
        Ok(Statement {
            text: text.to_string(),
            ast,
            params: None,
            cancel: None,
            cache: None,
            use_cache: true,
        })
    }

    /// Attaches query parameters (`$name` placeholders).
    pub fn params<'b>(self, params: &'b Params) -> Statement<'b>
    where
        'a: 'b,
    {
        Statement {
            text: self.text,
            ast: self.ast,
            params: Some(params),
            cancel: self.cancel,
            cache: self.cache,
            use_cache: self.use_cache,
        }
    }

    /// Attaches a cancel token, polled at row boundaries during
    /// execution — and once on a cache hit, so deadlines behave the
    /// same whether or not the cache answers.
    pub fn cancel<'b>(self, cancel: &'b Cancel) -> Statement<'b>
    where
        'a: 'b,
    {
        Statement {
            text: self.text,
            ast: self.ast,
            params: self.params,
            cancel: Some(cancel),
            cache: self.cache,
            use_cache: self.use_cache,
        }
    }

    /// Uses `cache` for this statement's runs instead of the
    /// process-global one (the server attaches its own per-service
    /// cache this way).
    pub fn cache<'b>(self, cache: &'b QueryCache) -> Statement<'b>
    where
        'a: 'b,
    {
        Statement {
            text: self.text,
            ast: self.ast,
            params: self.params,
            cancel: self.cancel,
            cache: Some(cache),
            use_cache: self.use_cache,
        }
    }

    /// Disables result caching for this statement's runs (the AST is
    /// still reused).
    pub fn no_cache(mut self) -> Statement<'a> {
        self.use_cache = false;
        self
    }

    /// The statement's query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Runs the statement and returns an owned result (cloning only if
    /// the result is simultaneously held by the cache — see
    /// [`Statement::run_shared`] to avoid that).
    pub fn run(&self, graph: &Graph) -> Result<ResultSet, CypherError> {
        let shared = self.run_shared(graph)?;
        Ok(Arc::try_unwrap(shared).unwrap_or_else(|arc| (*arc).clone()))
    }

    /// Runs the statement. On a cache hit this returns the cached
    /// result without executing anything; the result is byte-identical
    /// to what execution would produce because the cache key embeds
    /// the graph's mutation epoch.
    ///
    /// `EXPLAIN`/`PROFILE`-prefixed statements return their plan as a
    /// one-`plan`-column result, exactly like [`crate::query`].
    pub fn run_shared(&self, graph: &Graph) -> Result<Arc<ResultSet>, CypherError> {
        let _span = iyp_telemetry::span(iyp_telemetry::names::CYPHER_QUERY_SECONDS);
        iyp_telemetry::counter(iyp_telemetry::names::CYPHER_QUERIES_TOTAL).incr();
        let params = match self.params {
            Some(p) => p,
            None => empty_params(),
        };
        match self.ast.mode {
            QueryMode::Normal => {
                let cache = self.effective_cache();
                if let Some(cache) = cache {
                    if let Some(hit) = cache.get(graph, &self.text, params) {
                        if let Some(token) = self.cancel {
                            token.check()?;
                        }
                        return Ok(hit);
                    }
                }
                let result = Arc::new(execute_observed(
                    graph,
                    &self.ast,
                    params,
                    None,
                    self.cancel,
                )?);
                if let Some(cache) = cache {
                    cache.insert(graph, &self.text, params, Arc::clone(&result));
                }
                Ok(result)
            }
            QueryMode::Explain => Ok(Arc::new(plan_result(&plan_query(graph, &self.ast)))),
            QueryMode::Profile => {
                let (_, plan) = self.profile_impl(graph)?;
                Ok(Arc::new(plan_result(&plan)))
            }
        }
    }

    /// Builds the execution plan without running anything.
    pub fn explain(&self, graph: &Graph) -> PlanNode {
        plan_query(graph, &self.ast)
    }

    /// Runs the statement and returns both its result and the
    /// execution plan. With a cache enabled the plan root is annotated
    /// `cache=hit` (served without executing; no per-operator stats)
    /// or `cache=miss` (executed and now cached).
    pub fn profile(&self, graph: &Graph) -> Result<(ResultSet, PlanNode), CypherError> {
        let (rows, plan) = self.profile_impl(graph)?;
        Ok((
            Arc::try_unwrap(rows).unwrap_or_else(|arc| (*arc).clone()),
            plan,
        ))
    }

    fn profile_impl(&self, graph: &Graph) -> Result<(Arc<ResultSet>, PlanNode), CypherError> {
        let params = match self.params {
            Some(p) => p,
            None => empty_params(),
        };
        let cache = self.effective_cache();
        if let Some(cache) = cache {
            if let Some(hit) = cache.get(graph, &self.text, params) {
                if let Some(token) = self.cancel {
                    token.check()?;
                }
                let mut plan = plan_query(graph, &self.ast);
                plan.cache = Some("hit");
                return Ok((hit, plan));
            }
        }
        let (rows, mut plan) = run_profiled(graph, &self.ast, params, self.cancel)?;
        let rows = Arc::new(rows);
        if let Some(cache) = cache {
            plan.cache = Some("miss");
            cache.insert(graph, &self.text, params, Arc::clone(&rows));
        }
        Ok((rows, plan))
    }

    /// The cache this run will consult: the attached one, else the
    /// global one — and only if it is enabled and `no_cache` was not
    /// requested.
    fn effective_cache(&self) -> Option<&QueryCache> {
        if !self.use_cache {
            return None;
        }
        let cache = self.cache.unwrap_or_else(|| cache::global());
        if cache.is_enabled() {
            Some(cache)
        } else {
            None
        }
    }
}
