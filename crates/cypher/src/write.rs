//! Write-query execution: `CREATE`, `MERGE`, `SET`, `DELETE`.
//!
//! The paper's local-instance workflow (§6.1) has users *adding* to the
//! knowledge graph — tagging the resources under study, importing
//! confidential data, materialising intermediate results ("we added
//! temporal SPoF relationships in the knowledge graph"). This module
//! executes the Cypher write clauses against a mutable graph.

use crate::ast::*;
use crate::error::CypherError;
use crate::eval::{truth, EvalCtx, Row};
use crate::exec::{exec_match, match_pattern, project, Params, ResultSet};
use crate::parser::parse;
use crate::rtval::RtVal;
use iyp_graph::{Graph, NodeId, Props, RelId, Value};
use std::collections::HashSet;

/// Counters describing the effects of a write query (the summary Neo4j
/// prints after an update).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteSummary {
    /// Nodes created.
    pub nodes_created: usize,
    /// Relationships created.
    pub rels_created: usize,
    /// Properties written by `SET`.
    pub props_set: usize,
    /// Nodes deleted.
    pub nodes_deleted: usize,
    /// Relationships deleted.
    pub rels_deleted: usize,
}

/// Parses and executes a (possibly writing) query against a mutable
/// graph. Returns the `RETURN` result (empty when the query has none)
/// and the write counters.
pub fn query_write(
    graph: &mut Graph,
    text: &str,
    params: &Params,
) -> Result<(ResultSet, WriteSummary), CypherError> {
    let _span = iyp_telemetry::span(iyp_telemetry::names::CYPHER_QUERY_SECONDS);
    iyp_telemetry::counter(iyp_telemetry::names::CYPHER_WRITE_QUERIES_TOTAL).incr();
    let ast = parse(text)?;
    if ast.mode != QueryMode::Normal {
        return Err(CypherError::runtime(
            "EXPLAIN/PROFILE are not supported for write queries",
        ));
    }
    execute_write(graph, &ast, params)
}

/// Executes a parsed query with write support.
pub fn execute_write(
    graph: &mut Graph,
    ast: &Query,
    params: &Params,
) -> Result<(ResultSet, WriteSummary), CypherError> {
    let mut rows: Vec<Row> = vec![Row::new()];
    let mut result: Option<ResultSet> = None;
    let mut summary = WriteSummary::default();

    for clause in &ast.clauses {
        match clause {
            Clause::Match { optional, patterns } => {
                let ctx = EvalCtx::new(graph, params);
                rows = exec_match(&ctx, rows, patterns, *optional, None)?;
            }
            Clause::Where(expr) => {
                let ctx = EvalCtx::new(graph, params);
                let mut kept = Vec::with_capacity(rows.len());
                for row in rows {
                    if truth(&ctx.eval(expr, &row)?) == Some(true) {
                        kept.push(row);
                    }
                }
                rows = kept;
            }
            Clause::Unwind { expr, var } => {
                let ctx = EvalCtx::new(graph, params);
                let mut out = Vec::new();
                for row in rows {
                    let v = ctx.eval(expr, &row)?;
                    if let Some(items) = v.as_list() {
                        for item in items {
                            let mut r = row.clone();
                            r.insert(var.clone(), item);
                            out.push(r);
                        }
                    } else if !v.is_null() {
                        let mut r = row.clone();
                        r.insert(var.clone(), v);
                        out.push(r);
                    }
                }
                rows = out;
            }
            Clause::With(proj) => {
                let ctx = EvalCtx::new(graph, params);
                let (cols, projected) = project(&ctx, rows, proj)?;
                rows = projected
                    .into_iter()
                    .map(|vals| cols.iter().cloned().zip(vals).collect())
                    .collect();
            }
            Clause::Return(proj) => {
                let ctx = EvalCtx::new(graph, params);
                let (cols, projected) = project(&ctx, rows, proj)?;
                result = Some(ResultSet {
                    columns: cols,
                    rows: projected,
                });
                rows = Vec::new();
            }
            Clause::Create(patterns) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut r = row;
                    for pattern in patterns {
                        r = create_pattern(graph, params, r, pattern, &mut summary)?;
                    }
                    out.push(r);
                }
                rows = out;
            }
            Clause::Merge(pattern) => {
                let mut out = Vec::new();
                for row in rows {
                    // Try to match first.
                    let matches = {
                        let ctx = EvalCtx::new(graph, params);
                        let mut found = Vec::new();
                        match_pattern(&ctx, &row, &HashSet::new(), pattern, &mut found, None)?;
                        found
                    };
                    if matches.is_empty() {
                        out.push(create_pattern(graph, params, row, pattern, &mut summary)?);
                    } else {
                        out.extend(matches.into_iter().map(|(r, _)| r));
                    }
                }
                rows = out;
            }
            Clause::Set(items) => {
                // Evaluate all assignments against the pre-SET state.
                let mut planned: Vec<(RtVal, String, Value)> = Vec::new();
                {
                    let ctx = EvalCtx::new(graph, params);
                    for row in &rows {
                        for item in items {
                            let target = row.get(&item.var).cloned().ok_or_else(|| {
                                CypherError::runtime(format!(
                                    "SET target `{}` is not bound",
                                    item.var
                                ))
                            })?;
                            let value = ctx.eval(&item.value, row)?;
                            let scalar = match value {
                                RtVal::Scalar(s) => s,
                                other => {
                                    return Err(CypherError::runtime(format!(
                                        "SET value must be a scalar, got {other:?}"
                                    )))
                                }
                            };
                            planned.push((target, item.key.clone(), scalar));
                        }
                    }
                }
                for (target, key, value) in planned {
                    match target {
                        RtVal::Node(n) => graph
                            .set_node_prop(n, &key, value)
                            .map_err(|e| CypherError::runtime(e.to_string()))?,
                        RtVal::Rel(r) => graph
                            .set_rel_prop(r, &key, value)
                            .map_err(|e| CypherError::runtime(e.to_string()))?,
                        other => {
                            return Err(CypherError::runtime(format!(
                                "SET target must be a node or relationship, got {other:?}"
                            )))
                        }
                    }
                    summary.props_set += 1;
                }
            }
            Clause::Delete { exprs, detach } => {
                let mut nodes: Vec<NodeId> = Vec::new();
                let mut rels: Vec<RelId> = Vec::new();
                {
                    let ctx = EvalCtx::new(graph, params);
                    for row in &rows {
                        for e in exprs {
                            match ctx.eval(e, row)? {
                                RtVal::Node(n) => nodes.push(n),
                                RtVal::Rel(r) => rels.push(r),
                                RtVal::Scalar(Value::Null) => {}
                                other => {
                                    return Err(CypherError::runtime(format!(
                                    "DELETE target must be a node or relationship, got {other:?}"
                                )))
                                }
                            }
                        }
                    }
                }
                rels.sort();
                rels.dedup();
                nodes.sort();
                nodes.dedup();
                for r in rels {
                    // The rel may already be gone via an earlier detach.
                    if graph.rel(r).is_some() {
                        graph
                            .delete_rel(r)
                            .map_err(|e| CypherError::runtime(e.to_string()))?;
                        summary.rels_deleted += 1;
                    }
                }
                for n in nodes {
                    let Some(node) = graph.node(n) else { continue };
                    if !detach && node.degree() > 0 {
                        return Err(CypherError::runtime(
                            "cannot DELETE a node that still has relationships \
                             (use DETACH DELETE)",
                        ));
                    }
                    summary.rels_deleted += node.degree();
                    graph
                        .delete_node(n)
                        .map_err(|e| CypherError::runtime(e.to_string()))?;
                    summary.nodes_deleted += 1;
                }
            }
        }
    }

    let result = result.unwrap_or(ResultSet {
        columns: Vec::new(),
        rows: Vec::new(),
    });
    Ok((result, summary))
}

/// Evaluates a pattern's inline property maps into concrete values.
fn eval_props(
    graph: &Graph,
    params: &Params,
    row: &Row,
    props: &[(String, Expr)],
) -> Result<Props, CypherError> {
    let ctx = EvalCtx::new(graph, params);
    let mut out = Props::new();
    for (k, e) in props {
        match ctx.eval(e, row)? {
            RtVal::Scalar(v) => {
                out.insert(k.clone(), v);
            }
            other => {
                return Err(CypherError::runtime(format!(
                    "property `{k}` must be a scalar, got {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

/// Creates one path pattern, binding its variables into the row.
fn create_pattern(
    graph: &mut Graph,
    params: &Params,
    mut row: Row,
    pattern: &PathPattern,
    summary: &mut WriteSummary,
) -> Result<Row, CypherError> {
    let resolve_node = |graph: &mut Graph,
                        row: &mut Row,
                        np: &NodePattern,
                        summary: &mut WriteSummary|
     -> Result<NodeId, CypherError> {
        if let Some(var) = &np.var {
            if let Some(bound) = row.get(var) {
                return bound.as_node().ok_or_else(|| {
                    CypherError::runtime(format!("`{var}` is bound but is not a node"))
                });
            }
        }
        let props = eval_props(graph, params, row, &np.props)?;
        let labels: Vec<&str> = np.labels.iter().map(String::as_str).collect();
        if labels.is_empty() {
            return Err(CypherError::runtime(
                "CREATE/MERGE requires at least one label on new nodes",
            ));
        }
        let id = graph.create_node(&labels, props);
        summary.nodes_created += 1;
        if let Some(var) = &np.var {
            row.insert(var.clone(), RtVal::Node(id));
        }
        Ok(id)
    };

    let mut prev = resolve_node(graph, &mut row, &pattern.start, summary)?;
    for (rp, np) in &pattern.hops {
        if rp.var_length.is_some() {
            return Err(CypherError::runtime(
                "variable-length relationships cannot be created",
            ));
        }
        if rp.types.len() != 1 {
            return Err(CypherError::runtime(
                "CREATE/MERGE relationships need exactly one type",
            ));
        }
        let next = resolve_node(graph, &mut row, np, summary)?;
        let (src, dst) = match rp.dir {
            RelDir::Right => (prev, next),
            RelDir::Left => (next, prev),
            RelDir::Undirected => {
                return Err(CypherError::runtime(
                    "CREATE/MERGE relationships must be directed (use -> or <-)",
                ))
            }
        };
        let props = eval_props(graph, params, &row, &rp.props)?;
        let rel = graph
            .create_rel(src, &rp.types[0], dst, props)
            .map_err(|e| CypherError::runtime(e.to_string()))?;
        summary.rels_created += 1;
        if let Some(var) = &rp.var {
            row.insert(var.clone(), RtVal::Rel(rel));
        }
        prev = next;
    }
    Ok(row)
}
