//! Cached vs uncached equivalence: for any graph and any query shape,
//! a result served from the epoch-keyed [`iyp_cypher::QueryCache`]
//! must be identical to uncached execution — same columns, same rows,
//! same order — and a mutation must invalidate so the next run sees
//! the new graph, not the cached past.

use iyp_cypher::{Params, QueryCache, Statement};
use iyp_graph::{props, Graph, Props, Value};
use proptest::prelude::*;

/// Builds a random AS/Prefix/Organization graph from a compact
/// description. Property values are chosen to stress grouping: asn
/// collides across nodes, names embed `\u{1}`, and tiers mix ints.
fn build_graph(ases: &[u16], links: &[(u8, u8)]) -> Graph {
    let mut g = Graph::new();
    let mut nodes = Vec::new();
    for (i, asn) in ases.iter().enumerate() {
        nodes.push(g.merge_node(
            "AS",
            "asn",
            *asn as i64,
            props([
                ("tier", Value::Int((i % 3) as i64)),
                ("name", Value::Str(format!("as\u{1}{}", asn % 8))),
            ]),
        ));
    }
    for (k, (a, b)) in links.iter().enumerate() {
        if nodes.is_empty() {
            break;
        }
        let s = nodes[*a as usize % nodes.len()];
        let d = nodes[*b as usize % nodes.len()];
        let p = g.merge_node(
            "Prefix",
            "prefix",
            format!("10.{}.0.0/16", k % 7),
            props([("af", Value::Int(4))]),
        );
        g.create_rel(s, "ORIGINATE", p, Props::new()).unwrap();
        if s != d {
            g.create_rel(s, "PEERS_WITH", d, Props::new()).unwrap();
        }
        if k % 3 == 0 {
            let o = g.merge_node(
                "Organization",
                "name",
                format!("org{}", k % 4),
                Props::new(),
            );
            g.create_rel(s, "MANAGED_BY", o, Props::new()).unwrap();
        }
    }
    g
}

/// Query shapes covering the executor stages whose results flow into
/// the cache: projection, WHERE, aggregates, grouped aggregates,
/// DISTINCT, ORDER BY, SKIP/LIMIT, OPTIONAL MATCH, multi-pattern
/// MATCH, WITH-stage grouping, and parameters (which feed the cache
/// key's fingerprint).
const QUERIES: &[&str] = &[
    "MATCH (a:AS) RETURN a.asn",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, p.prefix",
    "MATCH (a:AS) WHERE a.tier > 0 RETURN a.asn ORDER BY a.asn",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN count(*)",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, count(p) ORDER BY a.asn",
    "MATCH (a:AS) RETURN a.tier, count(*), min(a.asn), max(a.asn) ORDER BY a.tier",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN DISTINCT p.prefix ORDER BY p.prefix",
    "MATCH (a:AS) RETURN DISTINCT a.name",
    "MATCH (a:AS) RETURN a.asn ORDER BY a.asn DESC SKIP 1 LIMIT 3",
    "MATCH (a:AS) OPTIONAL MATCH (a)-[:MANAGED_BY]->(o:Organization) \
     RETURN a.asn, o.name ORDER BY a.asn",
    "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) RETURN a.asn, b.asn ORDER BY a.asn, b.asn",
    "MATCH (a:AS) WITH a.tier AS t, count(a) AS n WHERE n > 1 RETURN t, n ORDER BY t",
    "MATCH (a:AS) WHERE a.tier >= $tier RETURN a.asn, a.name ORDER BY a.asn",
    "MATCH (a:AS {asn: $asn}) RETURN a.asn, a.tier",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cached_results_are_identical_to_uncached(
        ases in proptest::collection::vec(0u16..48, 0..16),
        links in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..24),
        tier in 0i64..3,
        asn in 0i64..48,
    ) {
        let mut g = build_graph(&ases, &links);
        let cache = QueryCache::new(8 << 20);
        let mut params = Params::new();
        params.insert("tier".to_string(), Value::Int(tier));
        params.insert("asn".to_string(), Value::Int(asn));
        for q in QUERIES {
            let stmt = Statement::prepare(q).unwrap().params(&params);
            // Uncached ground truth, then a cold (miss) run that
            // populates the cache, then a warm (hit) run.
            let uncached = stmt.no_cache().run(&g).unwrap();
            let stmt = Statement::prepare(q).unwrap().params(&params).cache(&cache);
            let cold = stmt.run(&g).unwrap();
            let warm = stmt.run(&g).unwrap();
            prop_assert_eq!(&uncached, &cold, "cold run diverged for {}", q);
            prop_assert_eq!(&uncached, &warm, "cached run diverged for {}", q);
        }
        // A mutation bumps the epoch: every cached entry stops
        // matching, and the re-run reflects the new graph, not the
        // cached past.
        g.merge_node("AS", "asn", 9999i64, props([("tier", Value::Int(0))]));
        for q in QUERIES {
            let stmt = Statement::prepare(q).unwrap().params(&params);
            let fresh = stmt.no_cache().run(&g).unwrap();
            let stmt = Statement::prepare(q).unwrap().params(&params).cache(&cache);
            let after_write = stmt.run(&g).unwrap();
            prop_assert_eq!(&fresh, &after_write, "stale result served for {}", q);
        }
    }
}
