//! Cooperative cancellation: a tripped token stops the executor at a
//! row boundary with a structured `timeout:` error, while a generous
//! deadline leaves results byte-identical to the plain `query` path.

use iyp_cypher::{query, query_with_cancel, Cancel, CypherError, Params};
use iyp_graph::{props, Graph, Props, Value};
use std::time::Duration;

/// A small but well-connected AS/Prefix graph: enough rows that every
/// executor stage (match, expand, where, return) sees real work.
fn dense_graph() -> Graph {
    let mut g = Graph::new();
    let mut ases = Vec::new();
    for asn in 0..40i64 {
        ases.push(g.merge_node("AS", "asn", asn, props([("tier", Value::Int(asn % 3))])));
    }
    for (i, &a) in ases.iter().enumerate() {
        for &b in &ases[i + 1..] {
            if (i * 7) % 3 == 0 {
                g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
            }
        }
        let p = g.merge_node("Prefix", "prefix", format!("10.{i}.0.0/16"), Props::new());
        g.create_rel(a, "ORIGINATE", p, Props::new()).unwrap();
    }
    g
}

const QUERIES: &[&str] = &[
    "MATCH (a:AS) RETURN a.asn ORDER BY a.asn",
    "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) WHERE a.asn < b.asn RETURN count(*)",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, p.prefix ORDER BY a.asn",
    "MATCH (a:AS)-[:PEERS_WITH*1..2]-(b:AS) RETURN count(*)",
];

#[test]
fn pre_cancelled_token_times_out() {
    let g = dense_graph();
    let params = Params::default();
    for q in QUERIES {
        let cancel = Cancel::new();
        cancel.cancel();
        let err = query_with_cancel(&g, q, &params, &cancel).unwrap_err();
        assert!(
            matches!(err, CypherError::Timeout { .. }),
            "{q}: expected Timeout, got {err:?}"
        );
        assert!(err.to_string().starts_with("timeout: "), "{err}");
    }
}

#[test]
fn zero_deadline_times_out() {
    let g = dense_graph();
    let params = Params::default();
    let cancel = Cancel::with_timeout(Duration::ZERO);
    let err = query_with_cancel(&g, QUERIES[3], &params, &cancel).unwrap_err();
    assert!(matches!(err, CypherError::Timeout { .. }), "{err:?}");
}

#[test]
fn generous_deadline_matches_plain_query() {
    let g = dense_graph();
    let params = Params::default();
    for q in QUERIES {
        let plain = query(&g, q, &params).unwrap();
        let cancel = Cancel::with_timeout(Duration::from_secs(3600));
        let timed = query_with_cancel(&g, q, &params, &cancel).unwrap();
        assert_eq!(plain.columns, timed.columns, "{q}");
        assert_eq!(plain.rows, timed.rows, "{q}");
    }
}
