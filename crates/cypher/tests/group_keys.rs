//! Regression tests for group/DISTINCT key semantics.
//!
//! The projection stage used to fingerprint rows by joining rendered
//! values with a `\u{1}` separator, which conflated values that render
//! identically (`1` vs `"1"`) and rows whose strings embed the
//! separator itself. Keys are now structural ([`iyp_cypher::GroupKey`]);
//! these tests pin the corrected behaviour at the query level.

use iyp_cypher::{query, Params, RtVal};
use iyp_graph::{Graph, Value};

fn run(q: &str) -> Vec<Vec<RtVal>> {
    run_with(q, &Params::new())
}

fn run_with(q: &str, params: &Params) -> Vec<Vec<RtVal>> {
    let g = Graph::new();
    query(&g, q, params).expect(q).rows
}

fn ints(rows: &[Vec<RtVal>], col: usize) -> Vec<i64> {
    rows.iter()
        .map(|r| match &r[col] {
            RtVal::Scalar(Value::Int(i)) => *i,
            other => panic!("expected int, got {other:?}"),
        })
        .collect()
}

#[test]
fn distinct_keeps_int_and_string_apart_but_merges_int_and_float() {
    // 1 and 1.0 are the same value (Cypher numeric equivalence);
    // '1' is a different value even though it renders identically.
    let rows = run("UNWIND [1, 1.0, '1', 1] AS x RETURN DISTINCT x");
    assert_eq!(rows.len(), 2, "{rows:?}");
    assert_eq!(rows[0][0], RtVal::Scalar(Value::Int(1)));
    assert_eq!(rows[1][0], RtVal::Scalar(Value::Str("1".into())));
}

#[test]
fn grouping_keeps_int_and_string_apart_but_merges_int_and_float() {
    let rows = run("UNWIND [1, 1.0, '1', 1] AS x RETURN x, count(*)");
    assert_eq!(rows.len(), 2, "{rows:?}");
    // Groups appear in first-occurrence order.
    assert_eq!(rows[0][0], RtVal::Scalar(Value::Int(1)));
    assert_eq!(ints(&rows, 1), vec![3, 1]);
}

#[test]
fn aggregate_distinct_uses_structural_keys() {
    let rows = run("UNWIND [1, 1.0, '1', '1', 2] AS x RETURN count(DISTINCT x)");
    assert_eq!(ints(&rows, 0), vec![3]); // 1/1.0, '1', 2
}

#[test]
fn strings_embedding_the_old_separator_do_not_collide() {
    // Under the old scheme both rows fingerprinted to "a\u{1}\u{1}b":
    // ("a\u{1}", "b") and ("a", "\u{1}b") joined with a \u{1} separator
    // are indistinguishable. Structurally they are four distinct rows.
    let mut params = Params::new();
    params.insert(
        "xs".into(),
        Value::List(vec![Value::Str("a\u{1}".into()), Value::Str("a".into())]),
    );
    params.insert(
        "ys".into(),
        Value::List(vec![Value::Str("b".into()), Value::Str("\u{1}b".into())]),
    );
    let rows = run_with(
        "UNWIND $xs AS x UNWIND $ys AS y RETURN DISTINCT x, y",
        &params,
    );
    assert_eq!(rows.len(), 4, "{rows:?}");

    // Same shape through grouped aggregation: four groups of one.
    let rows = run_with(
        "UNWIND $xs AS x UNWIND $ys AS y RETURN x, y, count(*)",
        &params,
    );
    assert_eq!(rows.len(), 4, "{rows:?}");
    assert_eq!(ints(&rows, 2), vec![1, 1, 1, 1]);
}

#[test]
fn lists_of_mixed_types_group_structurally() {
    // [1, 2] and ['1', '2'] render alike but are different lists;
    // a repeated [1, 2] (even spelled [1.0, 2]) is the same list.
    let rows = run("UNWIND [[1, 2], ['1', '2'], [1.0, 2], [1, '2']] AS x \
                    RETURN x, count(*)");
    assert_eq!(rows.len(), 3, "{rows:?}");
    assert_eq!(ints(&rows, 1), vec![2, 1, 1]);
}

#[test]
fn distinct_on_collected_lists_matches_scalar_lists() {
    // collect() produces an RtVal list; a literal list is a scalar
    // list. Equal element values must produce equal keys regardless.
    let rows = run("UNWIND [1, 1] AS x WITH collect(x) AS c \
         UNWIND [c, [1, 1]] AS l RETURN DISTINCT l");
    assert_eq!(rows.len(), 1, "{rows:?}");
}

#[test]
fn null_boolean_and_zero_keep_separate_groups() {
    let rows = run("UNWIND [null, false, 0, ''] AS x RETURN x, count(*)");
    assert_eq!(rows.len(), 4, "{rows:?}");
    assert_eq!(ints(&rows, 1), vec![1, 1, 1, 1]);
}

#[test]
fn negative_zero_and_nan_group_deterministically() {
    // -0.0 groups with 0; NaN is one group (not one per occurrence).
    let rows = run("UNWIND [0, -0.0, 0.0/0.0, 0.0/0.0] AS x RETURN x, count(*)");
    assert_eq!(rows.len(), 2, "{rows:?}");
    assert_eq!(ints(&rows, 1), vec![2, 2]);
}
