//! Serial vs parallel equivalence: for any graph and any query shape,
//! the parallel executor must return a [`iyp_cypher::ResultSet`] that
//! is identical to serial execution — same columns, same rows, same
//! order.
//!
//! This file holds a single property because the thread count and
//! partition threshold are process-wide knobs; a second test function
//! running concurrently in this binary would race on them.

use iyp_cypher::{query, set_min_partition, set_threads, Params};
use iyp_graph::{props, Graph, Props, Value};
use proptest::prelude::*;

/// Builds a random AS/Prefix/Organization graph from a compact
/// description. Property values are chosen to stress grouping: asn
/// collides across nodes, names embed `\u{1}`, and tiers mix ints.
fn build_graph(ases: &[u16], links: &[(u8, u8)]) -> Graph {
    let mut g = Graph::new();
    let mut nodes = Vec::new();
    for (i, asn) in ases.iter().enumerate() {
        nodes.push(g.merge_node(
            "AS",
            "asn",
            *asn as i64,
            props([
                ("tier", Value::Int((i % 3) as i64)),
                ("name", Value::Str(format!("as\u{1}{}", asn % 8))),
            ]),
        ));
    }
    for (k, (a, b)) in links.iter().enumerate() {
        if nodes.is_empty() {
            break;
        }
        let s = nodes[*a as usize % nodes.len()];
        let d = nodes[*b as usize % nodes.len()];
        let p = g.merge_node(
            "Prefix",
            "prefix",
            format!("10.{}.0.0/16", k % 7),
            props([("af", Value::Int(4))]),
        );
        g.create_rel(s, "ORIGINATE", p, Props::new()).unwrap();
        if s != d {
            g.create_rel(s, "PEERS_WITH", d, Props::new()).unwrap();
        }
        if k % 3 == 0 {
            let o = g.merge_node(
                "Organization",
                "name",
                format!("org{}", k % 4),
                Props::new(),
            );
            g.create_rel(s, "MANAGED_BY", o, Props::new()).unwrap();
        }
    }
    g
}

/// Query shapes covering every executor stage that parallelises or
/// hashes group keys: plain projection, WHERE, aggregates, grouped
/// aggregates, DISTINCT, ORDER BY, SKIP/LIMIT, OPTIONAL MATCH,
/// multi-pattern MATCH, and WITH-stage grouping.
const QUERIES: &[&str] = &[
    "MATCH (a:AS) RETURN a.asn",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, p.prefix",
    "MATCH (a:AS) WHERE a.tier > 0 RETURN a.asn ORDER BY a.asn",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN count(*)",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, count(p) ORDER BY a.asn",
    "MATCH (a:AS) RETURN a.tier, count(*), min(a.asn), max(a.asn) ORDER BY a.tier",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN DISTINCT p.prefix ORDER BY p.prefix",
    "MATCH (a:AS) RETURN DISTINCT a.name",
    "MATCH (a:AS) RETURN a.asn ORDER BY a.asn DESC SKIP 1 LIMIT 3",
    "MATCH (a:AS) RETURN a.asn, a.tier ORDER BY a.tier, a.asn SKIP 2",
    "MATCH (a:AS) OPTIONAL MATCH (a)-[:MANAGED_BY]->(o:Organization) \
     RETURN a.asn, o.name ORDER BY a.asn",
    "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) RETURN a.asn, b.asn ORDER BY a.asn, b.asn",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix), (b:AS)-[:ORIGINATE]->(p) \
     WHERE a.asn < b.asn RETURN a.asn, b.asn, p.prefix",
    "MATCH (a:AS) WITH a.tier AS t, count(a) AS n WHERE n > 1 RETURN t, n ORDER BY t",
    "MATCH (a:AS) RETURN count(DISTINCT a.name), count(DISTINCT a.tier)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn parallel_results_are_identical_to_serial(
        ases in proptest::collection::vec(0u16..48, 0..16),
        links in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..24),
    ) {
        let g = build_graph(&ases, &links);
        for q in QUERIES {
            set_threads(1);
            let serial = query(&g, q, &Params::new());
            // Partition threshold 1 forces the parallel path even on
            // tiny candidate sets, so every stage is exercised.
            set_threads(4);
            set_min_partition(1);
            let parallel = query(&g, q, &Params::new());
            set_threads(0);
            set_min_partition(iyp_cypher::par::DEFAULT_MIN_PARTITION);
            match (serial, parallel) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(&s.columns, &p.columns, "columns differ for {}", q);
                    prop_assert_eq!(&s.rows, &p.rows, "rows differ for {}", q);
                }
                (Err(se), Err(pe)) => {
                    prop_assert_eq!(se.to_string(), pe.to_string(), "errors differ for {}", q);
                }
                (s, p) => prop_assert!(false, "outcome diverged for {}: {:?} vs {:?}", q, s, p),
            }
        }
    }
}
