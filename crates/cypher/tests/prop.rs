//! Property-based tests for the query engine: structural invariants
//! that must hold for arbitrary graphs and query shapes.

use iyp_cypher::{query, Params};
use iyp_graph::{props, Graph, Props, Value};
use proptest::prelude::*;

/// Builds a random AS/Prefix graph from a compact description.
fn build_graph(ases: &[u16], links: &[(u8, u8)]) -> Graph {
    let mut g = Graph::new();
    let mut nodes = Vec::new();
    for (i, asn) in ases.iter().enumerate() {
        nodes.push(g.merge_node(
            "AS",
            "asn",
            *asn as i64,
            props([("tier", Value::Int((i % 3) as i64))]),
        ));
    }
    for (k, (a, b)) in links.iter().enumerate() {
        if nodes.is_empty() {
            break;
        }
        let s = nodes[*a as usize % nodes.len()];
        let d = nodes[*b as usize % nodes.len()];
        let p = g.merge_node("Prefix", "prefix", format!("10.{k}.0.0/16"), Props::new());
        g.create_rel(s, "ORIGINATE", p, Props::new()).unwrap();
        if s != d {
            g.create_rel(s, "PEERS_WITH", d, Props::new()).unwrap();
        }
    }
    g
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec(0u16..64, 0..12),
        proptest::collection::vec((any::<u8>(), any::<u8>()), 0..20),
    )
        .prop_map(|(ases, links)| build_graph(&ases, &links))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// count(*) equals the number of rows returned without aggregation.
    #[test]
    fn count_star_matches_row_count(g in arb_graph()) {
        let rows = query(&g, "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN a, p", &Params::new())
            .unwrap()
            .rows
            .len();
        let counted = query(&g, "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN count(*)", &Params::new())
            .unwrap()
            .single_int()
            .unwrap();
        prop_assert_eq!(rows as i64, counted);
    }

    /// DISTINCT never yields more rows, and re-applying it is a no-op.
    #[test]
    fn distinct_is_idempotent_shrinking(g in arb_graph()) {
        let all = query(&g, "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) RETURN a.asn", &Params::new())
            .unwrap();
        let distinct =
            query(&g, "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) RETURN DISTINCT a.asn", &Params::new())
                .unwrap();
        prop_assert!(distinct.rows.len() <= all.rows.len());
        // Re-running distinct over the distinct result via WITH changes nothing.
        let twice = query(
            &g,
            "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) WITH DISTINCT a.asn AS x RETURN DISTINCT x",
            &Params::new(),
        )
        .unwrap();
        prop_assert_eq!(twice.rows.len(), distinct.rows.len());
    }

    /// ORDER BY produces a sorted column; LIMIT bounds the row count.
    #[test]
    fn order_by_sorts_and_limit_bounds(g in arb_graph(), limit in 0usize..10) {
        let rs = query(
            &g,
            &format!("MATCH (a:AS) RETURN a.asn AS x ORDER BY x LIMIT {limit}"),
            &Params::new(),
        )
        .unwrap();
        prop_assert!(rs.rows.len() <= limit);
        let vals: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
            .collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// WHERE false removes everything; WHERE true keeps everything.
    #[test]
    fn where_extremes(g in arb_graph()) {
        let all = query(&g, "MATCH (a:AS) RETURN a", &Params::new()).unwrap().rows.len();
        let none = query(&g, "MATCH (a:AS) WHERE false RETURN a", &Params::new())
            .unwrap()
            .rows
            .len();
        let kept = query(&g, "MATCH (a:AS) WHERE true RETURN a", &Params::new())
            .unwrap()
            .rows
            .len();
        prop_assert_eq!(none, 0);
        prop_assert_eq!(kept, all);
    }

    /// An undirected pattern matches the union of the two directed ones.
    #[test]
    fn undirected_is_union_of_directions(g in arb_graph()) {
        let undirected = query(
            &g,
            "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) RETURN count(*)",
            &Params::new(),
        )
        .unwrap()
        .single_int()
        .unwrap();
        let right = query(
            &g,
            "MATCH (a:AS)-[:PEERS_WITH]->(b:AS) RETURN count(*)",
            &Params::new(),
        )
        .unwrap()
        .single_int()
        .unwrap();
        let left = query(
            &g,
            "MATCH (a:AS)<-[:PEERS_WITH]-(b:AS) RETURN count(*)",
            &Params::new(),
        )
        .unwrap()
        .single_int()
        .unwrap();
        prop_assert_eq!(undirected, right + left);
        prop_assert_eq!(right, left); // symmetry of the row space
    }

    /// OPTIONAL MATCH preserves the left-hand cardinality lower bound.
    #[test]
    fn optional_match_keeps_rows(g in arb_graph()) {
        let base = query(&g, "MATCH (a:AS) RETURN a", &Params::new()).unwrap().rows.len();
        let opt = query(
            &g,
            "MATCH (a:AS) OPTIONAL MATCH (a)-[:ORIGINATE]-(p:Prefix) RETURN a, p",
            &Params::new(),
        )
        .unwrap()
        .rows
        .len();
        prop_assert!(opt >= base);
    }

    /// Aggregation partitions: the grouped counts sum to the total.
    #[test]
    fn group_counts_sum_to_total(g in arb_graph()) {
        let total = query(
            &g,
            "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN count(*)",
            &Params::new(),
        )
        .unwrap()
        .single_int()
        .unwrap();
        let grouped = query(
            &g,
            "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN a.tier, count(*) AS c",
            &Params::new(),
        )
        .unwrap();
        let sum: i64 = grouped
            .rows
            .iter()
            .map(|r| r[1].as_scalar().unwrap().as_int().unwrap())
            .sum();
        prop_assert_eq!(sum, total);
    }

    /// SKIP n + LIMIT m slices the ordered result consistently.
    #[test]
    fn skip_limit_slices(g in arb_graph(), skip in 0usize..6, limit in 0usize..6) {
        let all = query(&g, "MATCH (a:AS) RETURN a.asn AS x ORDER BY x", &Params::new()).unwrap();
        let sliced = query(
            &g,
            &format!("MATCH (a:AS) RETURN a.asn AS x ORDER BY x SKIP {skip} LIMIT {limit}"),
            &Params::new(),
        )
        .unwrap();
        let expected: Vec<_> = all.rows.iter().skip(skip).take(limit).collect();
        prop_assert_eq!(sliced.rows.len(), expected.len());
        for (got, want) in sliced.rows.iter().zip(expected) {
            prop_assert_eq!(&got[0], &want[0]);
        }
    }
}
