//! End-to-end query tests, including the paper's listings.

use iyp_cypher::{query, Params, RtVal};
use iyp_graph::{props, Graph, Props, Value};

/// Builds the toy graph from Figure 2 of the paper: two ASes, two
/// prefixes (one MOAS), plus organisation and tag trimmings.
fn figure2_graph() -> Graph {
    let mut g = Graph::new();
    let as2497 = g.merge_node("AS", "asn", 2497u32, Props::new());
    let as64496 = g.merge_node("AS", "asn", 64496u32, Props::new());
    let as64497 = g.merge_node("AS", "asn", 64497u32, Props::new());
    // Canonicalised IPv6 prefix appearing in two datasets (IHR + BGPKIT).
    let p6 = g.merge_node(
        "Prefix",
        "prefix",
        "2001:db8::/32",
        props([("af", Value::Int(6))]),
    );
    let p4 = g.merge_node(
        "Prefix",
        "prefix",
        "203.0.113.0/24",
        props([("af", Value::Int(4))]),
    );
    g.create_rel(
        as2497,
        "ORIGINATE",
        p6,
        props([("reference_name", "ihr.rov".into())]),
    )
    .unwrap();
    g.create_rel(
        as2497,
        "ORIGINATE",
        p6,
        props([("reference_name", "bgpkit.pfx2as".into())]),
    )
    .unwrap();
    // MOAS prefix: p4 originated by two different ASes.
    g.create_rel(
        as64496,
        "ORIGINATE",
        p4,
        props([("reference_name", "bgpkit.pfx2as".into())]),
    )
    .unwrap();
    g.create_rel(
        as64497,
        "ORIGINATE",
        p4,
        props([("reference_name", "bgpkit.pfx2as".into())]),
    )
    .unwrap();
    let org = g.merge_node("Organization", "name", "CERN", Props::new());
    g.create_rel(as2497, "MANAGED_BY", org, Props::new())
        .unwrap();
    let tag = g.merge_node("Tag", "label", "RPKI Valid", Props::new());
    g.create_rel(p6, "CATEGORIZED", tag, Props::new()).unwrap();
    let ip = g.merge_node("IP", "ip", "2001:db8::1", Props::new());
    g.create_rel(ip, "PART_OF", p6, Props::new()).unwrap();
    let host = g.merge_node("HostName", "name", "www.example.org", Props::new());
    g.create_rel(
        host,
        "RESOLVES_TO",
        ip,
        props([("reference_name", "openintel.tranco1m".into())]),
    )
    .unwrap();
    g
}

fn run(g: &Graph, q: &str) -> iyp_cypher::ResultSet {
    query(g, q, &Params::new()).unwrap()
}

fn strings(rs: &iyp_cypher::ResultSet, col: usize) -> Vec<String> {
    rs.rows
        .iter()
        .map(|r| r[col].as_scalar().unwrap().as_str().unwrap().to_string())
        .collect()
}

#[test]
fn listing_1_originating_ases() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "// Select ASes originating prefixes
         MATCH (x:AS)-[:ORIGINATE]-(:Prefix)
         // Return the AS's ASN
         RETURN DISTINCT x.asn",
    );
    let mut asns: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    asns.sort();
    assert_eq!(asns, vec![2497, 64496, 64497]);
}

#[test]
fn listing_2_moas_prefixes() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
         WHERE x.asn <> y.asn
         RETURN DISTINCT p.prefix",
    );
    assert_eq!(strings(&rs, 0), vec!["203.0.113.0/24"]);
}

#[test]
fn listing_3_cern_rpki_hostnames() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(pfx:Prefix)-[:CATEGORIZED]-(:Tag {label:'RPKI Valid'})
         WHERE org.name = 'CERN'
         MATCH (pfx)-[:PART_OF]-(:IP)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(h:HostName)
         RETURN distinct h.name",
    );
    assert_eq!(strings(&rs, 0), vec!["www.example.org"]);
}

#[test]
fn reference_name_filters_datasets() {
    let g = figure2_graph();
    // Counting ORIGINATE links per dataset.
    let both = run(
        &g,
        "MATCH (:AS)-[r:ORIGINATE]-(p:Prefix {prefix:'2001:db8::/32'}) RETURN count(r)",
    );
    assert_eq!(both.single_int(), Some(2));
    let ihr_only = run(
        &g,
        "MATCH (:AS)-[r:ORIGINATE {reference_name:'ihr.rov'}]-(p:Prefix {prefix:'2001:db8::/32'})
         RETURN count(r)",
    );
    assert_eq!(ihr_only.single_int(), Some(1));
}

#[test]
fn count_star_and_empty_aggregate() {
    let g = figure2_graph();
    let rs = run(&g, "MATCH (n:AS) RETURN count(*)");
    assert_eq!(rs.single_int(), Some(3));
    // Aggregate over an empty match still yields one row.
    let rs = run(&g, "MATCH (n:Facility) RETURN count(*)");
    assert_eq!(rs.single_int(), Some(0));
}

#[test]
fn grouping_by_non_aggregate_items() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix)
         RETURN p.prefix AS pfx, count(DISTINCT a) AS origins
         ORDER BY origins DESC",
    );
    assert_eq!(rs.columns, vec!["pfx", "origins"]);
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(
        rs.rows[0][0].as_scalar().unwrap().as_str(),
        Some("203.0.113.0/24")
    );
    assert_eq!(rs.rows[0][1].as_scalar().unwrap().as_int(), Some(2));
    assert_eq!(rs.rows[1][1].as_scalar().unwrap().as_int(), Some(1));
}

#[test]
fn collect_and_size() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix {prefix:'203.0.113.0/24'})
         RETURN size(collect(DISTINCT a.asn)) AS n",
    );
    assert_eq!(rs.single_int(), Some(2));
}

#[test]
fn optional_match_binds_null() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS)
         OPTIONAL MATCH (a)-[:MANAGED_BY]-(o:Organization)
         RETURN a.asn AS asn, o.name AS org
         ORDER BY asn",
    );
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0][1].as_scalar().unwrap().as_str(), Some("CERN"));
    assert!(rs.rows[1][1].is_null());
    assert!(rs.rows[2][1].is_null());
}

#[test]
fn where_is_not_null_after_optional() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS)
         OPTIONAL MATCH (a)-[:MANAGED_BY]-(o:Organization)
         WITH a, o
         WHERE o IS NOT NULL
         RETURN count(a)",
    );
    assert_eq!(rs.single_int(), Some(1));
}

#[test]
fn with_pipeline_and_having_style_filter() {
    let g = figure2_graph();
    // "Prefixes with more than one origin" via WITH ... WHERE.
    let rs = run(
        &g,
        "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix)
         WITH p, count(DISTINCT a) AS origins
         WHERE origins > 1
         RETURN p.prefix",
    );
    assert_eq!(strings(&rs, 0), vec!["203.0.113.0/24"]);
}

#[test]
fn unwind_expands_lists() {
    let g = Graph::new();
    let rs = run(
        &g,
        "UNWIND [1, 2, 3] AS x RETURN x * 10 AS y ORDER BY y DESC",
    );
    let ys: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(ys, vec![30, 20, 10]);
}

#[test]
fn unwind_with_params() {
    let mut g = Graph::new();
    for asn in [1u32, 2, 3] {
        g.merge_node("AS", "asn", asn, Props::new());
    }
    let mut params = Params::new();
    params.insert(
        "asns".into(),
        Value::List(vec![Value::Int(1), Value::Int(3)]),
    );
    let rs = query(
        &g,
        "UNWIND $asns AS a MATCH (n:AS {asn: a}) RETURN n.asn ORDER BY n.asn",
        &params,
    )
    .unwrap();
    let asns: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(asns, vec![1, 3]);
}

#[test]
fn directed_patterns_respect_direction() {
    let mut g = Graph::new();
    let a = g.merge_node("X", "name", "a", Props::new());
    let b = g.merge_node("X", "name", "b", Props::new());
    g.create_rel(a, "R", b, Props::new()).unwrap();
    assert_eq!(
        run(&g, "MATCH (n:X {name:'a'})-[:R]->(m) RETURN count(m)").single_int(),
        Some(1)
    );
    assert_eq!(
        run(&g, "MATCH (n:X {name:'a'})<-[:R]-(m) RETURN count(m)").single_int(),
        Some(0)
    );
    assert_eq!(
        run(&g, "MATCH (n:X {name:'b'})<-[:R]-(m) RETURN count(m)").single_int(),
        Some(1)
    );
    assert_eq!(
        run(&g, "MATCH (n:X {name:'a'})-[:R]-(m) RETURN count(m)").single_int(),
        Some(1)
    );
}

#[test]
fn relationship_uniqueness_within_match() {
    // One single ORIGINATE link: the MOAS pattern must NOT match it by
    // walking the same relationship twice.
    let mut g = Graph::new();
    let a = g.merge_node("AS", "asn", 1u32, Props::new());
    let p = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
    g.create_rel(a, "ORIGINATE", p, Props::new()).unwrap();
    let rs = run(
        &g,
        "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS) RETURN count(*)",
    );
    assert_eq!(rs.single_int(), Some(0));
    // With two parallel links the pattern CAN match (x = y though).
    g.create_rel(a, "ORIGINATE", p, Props::new()).unwrap();
    let rs = run(
        &g,
        "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS) RETURN count(*)",
    );
    assert_eq!(rs.single_int(), Some(2)); // two orderings of the two rels
}

#[test]
fn multiple_rel_types() {
    let mut g = Graph::new();
    let a = g.merge_node("AS", "asn", 1u32, Props::new());
    let b = g.merge_node("AS", "asn", 2u32, Props::new());
    let c = g.merge_node("AS", "asn", 3u32, Props::new());
    g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
    g.create_rel(a, "SIBLING_OF", c, Props::new()).unwrap();
    let rs = run(
        &g,
        "MATCH (x:AS {asn:1})-[:PEERS_WITH|SIBLING_OF]-(y) RETURN count(y)",
    );
    assert_eq!(rs.single_int(), Some(2));
    let rs = run(&g, "MATCH (x:AS {asn:1})-[:PEERS_WITH]-(y) RETURN count(y)");
    assert_eq!(rs.single_int(), Some(1));
}

#[test]
fn starts_with_filter() {
    let mut g = Graph::new();
    for label in [
        "RPKI Valid",
        "RPKI Invalid",
        "RPKI Invalid, more specific",
        "Anycast",
    ] {
        g.merge_node("Tag", "label", label, Props::new());
    }
    let rs = run(
        &g,
        "MATCH (t:Tag) WHERE t.label STARTS WITH 'RPKI Invalid' RETURN count(t)",
    );
    assert_eq!(rs.single_int(), Some(2));
}

#[test]
fn order_skip_limit() {
    let mut g = Graph::new();
    for asn in 1..=10u32 {
        g.merge_node("AS", "asn", asn, Props::new());
    }
    let rs = run(
        &g,
        "MATCH (n:AS) RETURN n.asn AS a ORDER BY a DESC SKIP 2 LIMIT 3",
    );
    let asns: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(asns, vec![8, 7, 6]);
}

#[test]
fn distinct_on_nodes() {
    let g = figure2_graph();
    // AS2497 originates p6 via two datasets; DISTINCT on the node
    // collapses them.
    let rs = run(
        &g,
        "MATCH (a:AS {asn: 2497})-[:ORIGINATE]-(p:Prefix) RETURN DISTINCT p",
    );
    assert_eq!(rs.rows.len(), 1);
    assert!(matches!(rs.rows[0][0], RtVal::Node(_)));
}

#[test]
fn returning_relationships_and_type() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS {asn: 2497})-[r]-(p:Prefix) RETURN DISTINCT type(r) AS t ORDER BY t",
    );
    assert_eq!(strings(&rs, 0), vec!["ORIGINATE"]);
}

#[test]
fn anonymous_nodes_and_rels() {
    let g = figure2_graph();
    let rs = run(&g, "MATCH ()-[:MANAGED_BY]-() RETURN count(*)");
    // Each undirected anonymous pattern matches twice (once per
    // orientation), standard Cypher behaviour.
    assert_eq!(rs.single_int(), Some(2));
}

#[test]
fn avg_min_max_sum() {
    let mut g = Graph::new();
    for (i, v) in [10i64, 20, 30, 40].iter().enumerate() {
        g.merge_node("N", "name", format!("n{i}"), props([("v", Value::Int(*v))]));
    }
    let rs = run(
        &g,
        "MATCH (n:N) RETURN sum(n.v), avg(n.v), min(n.v), max(n.v)",
    );
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_int(), Some(100));
    assert_eq!(rs.rows[0][1].as_scalar().unwrap().as_float(), Some(25.0));
    assert_eq!(rs.rows[0][2].as_scalar().unwrap().as_int(), Some(10));
    assert_eq!(rs.rows[0][3].as_scalar().unwrap().as_int(), Some(40));
}

#[test]
fn percentiles() {
    let mut g = Graph::new();
    for i in 1..=100i64 {
        g.merge_node("N", "name", format!("n{i}"), props([("v", Value::Int(i))]));
    }
    let rs = run(&g, "MATCH (n:N) RETURN percentileCont(n.v, 0.5) AS med");
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_float(), Some(50.5));
    let rs = run(&g, "MATCH (n:N) RETURN percentileDisc(n.v, 0.5) AS med");
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_float(), Some(50.0));
}

#[test]
fn aggregate_inside_expression() {
    let mut g = Graph::new();
    for i in 0..4u32 {
        g.merge_node("AS", "asn", i, Props::new());
    }
    let rs = run(&g, "MATCH (n:AS) RETURN count(n) * 100 / 4 AS pct");
    assert_eq!(rs.single_int(), Some(100));
    let rs = run(&g, "MATCH (n:AS) RETURN toFloat(count(n)) / 8.0 AS frac");
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_float(), Some(0.5));
}

#[test]
fn case_in_return() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (p:Prefix)
         RETURN p.prefix AS pfx,
                CASE WHEN p.af = 6 THEN 'v6' ELSE 'v4' END AS fam
         ORDER BY pfx",
    );
    assert_eq!(strings(&rs, 1), vec!["v6", "v4"]);
}

#[test]
fn reusing_bound_variables_across_matches() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS {asn: 2497})-[:ORIGINATE]-(p:Prefix)
         MATCH (p)-[:CATEGORIZED]-(t:Tag)
         RETURN DISTINCT t.label",
    );
    assert_eq!(strings(&rs, 0), vec!["RPKI Valid"]);
}

#[test]
fn comma_patterns_join_on_shared_vars() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix), (a)-[:MANAGED_BY]-(o:Organization)
         RETURN DISTINCT a.asn, o.name",
    );
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_int(), Some(2497));
}

#[test]
fn labels_function_and_multilabel() {
    let mut g = Graph::new();
    let n = g.merge_node("HostName", "name", "ns1.example.com", Props::new());
    g.add_label(n, "AuthoritativeNameServer").unwrap();
    let rs = run(
        &g,
        "MATCH (n:AuthoritativeNameServer) RETURN size(labels(n)) AS nl, n.name AS name",
    );
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_int(), Some(2));
    assert_eq!(
        rs.rows[0][1].as_scalar().unwrap().as_str(),
        Some("ns1.example.com")
    );
}

#[test]
fn long_chain_pattern() {
    // Mirrors Listing 4: Ranking → DomainName → HostName → IP → Prefix → Tag.
    let mut g = Graph::new();
    let ranking = g.merge_node("Ranking", "name", "Tranco top 1M", Props::new());
    let d = g.merge_node("DomainName", "name", "example.com", Props::new());
    g.create_rel(ranking, "RANK", d, props([("rank", Value::Int(42))]))
        .unwrap();
    let h = g.merge_node("HostName", "name", "example.com", Props::new());
    g.create_rel(h, "PART_OF", d, Props::new()).unwrap();
    let ip = g.merge_node("IP", "ip", "198.51.100.7", Props::new());
    g.create_rel(h, "RESOLVES_TO", ip, Props::new()).unwrap();
    let p = g.merge_node("Prefix", "prefix", "198.51.100.0/24", Props::new());
    g.create_rel(ip, "PART_OF", p, Props::new()).unwrap();
    let t = g.merge_node("Tag", "label", "RPKI Invalid, more specific", Props::new());
    g.create_rel(p, "CATEGORIZED", t, Props::new()).unwrap();

    let rs = run(
        &g,
        "MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(:DomainName)-[:PART_OF]-(:HostName)\
              -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
         WHERE t.label STARTS WITH 'RPKI Invalid'
         RETURN count(DISTINCT pfx)",
    );
    assert_eq!(rs.single_int(), Some(1));
}

#[test]
fn errors_are_reported() {
    let g = Graph::new();
    assert!(query(&g, "MATCH (n RETURN n", &Params::new()).is_err());
    // Evaluation errors surface only on rows that actually evaluate
    // (unlike Neo4j's semantic compile pass), so force a row with UNWIND.
    assert!(query(&g, "UNWIND [1] AS x RETURN undefined_var", &Params::new()).is_err());
    assert!(query(&g, "UNWIND [1] AS x RETURN bogusfn(x)", &Params::new()).is_err());
}

#[test]
fn empty_graph_queries() {
    let g = Graph::new();
    let rs = run(&g, "MATCH (n:AS) RETURN n.asn");
    assert!(rs.rows.is_empty());
    let rs = run(&g, "MATCH (n:AS) RETURN count(n)");
    assert_eq!(rs.single_int(), Some(0));
}

#[test]
fn result_set_helpers() {
    let g = figure2_graph();
    let rs = run(&g, "MATCH (a:AS) RETURN a.asn AS asn ORDER BY asn");
    assert_eq!(rs.column("asn"), Some(0));
    assert_eq!(rs.column("nope"), None);
    assert_eq!(rs.column_values("asn").count(), 3);
    assert!(rs.single().is_none());
    let table = rs.render(&g);
    assert!(table.contains("asn"));
    assert!(table.contains("2497"));
}

// ----------------------------------------------------------------------
// Variable-length paths and EXISTS subqueries
// ----------------------------------------------------------------------

/// Builds a provider chain: stub -> transit -> tier1 (PEERS_WITH).
fn chain_graph() -> Graph {
    let mut g = Graph::new();
    let stub = g.merge_node("AS", "asn", 1u32, props([("tier", Value::Int(3))]));
    let transit = g.merge_node("AS", "asn", 2u32, props([("tier", Value::Int(2))]));
    let tier1 = g.merge_node("AS", "asn", 3u32, props([("tier", Value::Int(1))]));
    let tier1b = g.merge_node("AS", "asn", 4u32, props([("tier", Value::Int(1))]));
    g.create_rel(stub, "PEERS_WITH", transit, Props::new())
        .unwrap();
    g.create_rel(transit, "PEERS_WITH", tier1, Props::new())
        .unwrap();
    g.create_rel(tier1, "PEERS_WITH", tier1b, Props::new())
        .unwrap();
    g
}

#[test]
fn var_length_exact() {
    let g = chain_graph();
    let rs = run(
        &g,
        "MATCH (a:AS {asn:1})-[:PEERS_WITH*2]-(b:AS) RETURN b.asn",
    );
    let asns: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(asns, vec![3]);
}

#[test]
fn var_length_range() {
    let g = chain_graph();
    let rs = run(
        &g,
        "MATCH (a:AS {asn:1})-[:PEERS_WITH*1..3]-(b:AS) RETURN b.asn ORDER BY b.asn",
    );
    let asns: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(asns, vec![2, 3, 4]);
}

#[test]
fn var_length_unbounded_respects_rel_uniqueness() {
    let g = chain_graph();
    // `*` walks each relationship at most once per path.
    let rs = run(
        &g,
        "MATCH (a:AS {asn:1})-[:PEERS_WITH*]-(b:AS) RETURN count(b)",
    );
    assert_eq!(rs.single_int(), Some(3));
}

#[test]
fn var_length_zero_includes_start() {
    let g = chain_graph();
    let rs = run(
        &g,
        "MATCH (a:AS {asn:1})-[:PEERS_WITH*0..1]-(b:AS) RETURN b.asn ORDER BY b.asn",
    );
    let asns: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(asns, vec![1, 2]);
}

#[test]
fn var_length_binds_rel_list() {
    let g = chain_graph();
    let rs = run(
        &g,
        "MATCH (a:AS {asn:1})-[rels:PEERS_WITH*2]-(b:AS) RETURN size(rels)",
    );
    assert_eq!(rs.single_int(), Some(2));
}

#[test]
fn exists_subquery_filters() {
    let g = figure2_graph();
    // ASes that originate at least one prefix AND are managed by an org.
    let rs = run(
        &g,
        "MATCH (a:AS)
         WHERE EXISTS { MATCH (a)-[:MANAGED_BY]-(:Organization) }
         RETURN a.asn",
    );
    let asns: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(asns, vec![2497]);
}

#[test]
fn exists_with_inner_where() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS)
         WHERE EXISTS { MATCH (a)-[:ORIGINATE]-(p:Prefix) WHERE p.af = 6 }
         RETURN DISTINCT a.asn",
    );
    let asns: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_scalar().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(asns, vec![2497]);
}

#[test]
fn not_exists() {
    let g = figure2_graph();
    let rs = run(
        &g,
        "MATCH (a:AS)
         WHERE NOT EXISTS { MATCH (a)-[:MANAGED_BY]-(:Organization) }
         RETURN count(a)",
    );
    assert_eq!(rs.single_int(), Some(2));
}

#[test]
fn keys_and_range_functions() {
    let g = figure2_graph();
    let rs = run(&g, "MATCH (a:AS {asn:2497}) RETURN size(keys(a))");
    assert_eq!(rs.single_int(), Some(1)); // only the asn property
    let rs = run(&g, "UNWIND range(1, 5) AS x RETURN sum(x)");
    assert_eq!(rs.single_int(), Some(15));
    let rs = run(&g, "UNWIND range(10, 0, -5) AS x RETURN collect(x)");
    assert_eq!(
        rs.rows[0][0].as_scalar().unwrap().as_list().unwrap().len(),
        3
    );
}
