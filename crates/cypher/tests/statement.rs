//! The prepared-Statement API: builder semantics, shim equivalence,
//! cache-hit timeout behavior, and `PROFILE`'s `cache=hit|miss`
//! annotation.

use iyp_cypher::{query, Cancel, Params, QueryCache, Statement};
use iyp_graph::{props, Graph, Props, Value};
use std::time::Duration;

fn sample_graph() -> Graph {
    let mut g = Graph::new();
    for asn in [2497i64, 64496, 64497] {
        let a = g.merge_node("AS", "asn", asn, props([("tier", Value::Int(asn % 3))]));
        let p = g.merge_node(
            "Prefix",
            "prefix",
            format!("10.{}.0.0/16", asn % 5),
            Props::new(),
        );
        g.create_rel(a, "ORIGINATE", p, Props::new()).unwrap();
    }
    g
}

#[test]
fn statement_run_matches_the_free_function() {
    let g = sample_graph();
    let mut params = Params::new();
    params.insert("t".to_string(), Value::Int(1));
    let q = "MATCH (a:AS) WHERE a.tier >= $t RETURN a.asn ORDER BY a.asn";
    let via_statement = Statement::prepare(q)
        .unwrap()
        .params(&params)
        .run(&g)
        .unwrap();
    let via_free_fn = query(&g, q, &params).unwrap();
    assert_eq!(via_statement, via_free_fn);
}

#[test]
fn prepared_statement_is_reusable_across_graphs_and_params() {
    let g1 = sample_graph();
    let g2 = Graph::new();
    let stmt = Statement::prepare("MATCH (a:AS) RETURN count(a)").unwrap();
    assert_eq!(stmt.run(&g1).unwrap().single_int(), Some(3));
    assert_eq!(stmt.run(&g2).unwrap().single_int(), Some(0));
}

#[test]
fn prepare_reports_parse_errors() {
    assert!(Statement::prepare("MATCH (a:AS RETURN a").is_err());
}

#[test]
fn explain_and_profile_match_free_functions() {
    let g = sample_graph();
    let q = "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN count(*)";
    let stmt = Statement::prepare(q).unwrap();
    let plan = stmt.explain(&g);
    assert_eq!(plan.render(), iyp_cypher::explain(&g, q).unwrap().render());
    let (rows, profiled) = stmt.profile(&g).unwrap();
    assert_eq!(rows.single_int(), Some(3));
    assert!(profiled.render().contains("rows="), "{}", profiled.render());
}

#[test]
fn cache_hit_skips_execution_but_returns_identical_rows() {
    let g = sample_graph();
    let cache = QueryCache::new(1 << 20);
    let stmt = Statement::prepare("MATCH (a:AS) RETURN a.asn ORDER BY a.asn")
        .unwrap()
        .cache(&cache);
    let cold = stmt.run(&g).unwrap();
    assert_eq!(cache.len(), 1);
    let warm = stmt.run(&g).unwrap();
    assert_eq!(cold, warm);
}

#[test]
fn cache_hits_still_honor_an_expired_deadline() {
    let g = sample_graph();
    let cache = QueryCache::new(1 << 20);
    let q = "MATCH (a:AS) RETURN count(a)";
    // Populate the cache with an unconstrained run...
    Statement::prepare(q)
        .unwrap()
        .cache(&cache)
        .run(&g)
        .unwrap();
    assert_eq!(cache.len(), 1);
    // ...then query with an already-expired deadline: the hit must not
    // sneak the result past the timeout.
    let cancel = Cancel::with_timeout(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(5));
    let err = Statement::prepare(q)
        .unwrap()
        .cache(&cache)
        .cancel(&cancel)
        .run(&g)
        .unwrap_err();
    assert!(
        matches!(err, iyp_cypher::CypherError::Timeout { .. }),
        "{err}"
    );
}

#[test]
fn profile_annotates_cache_miss_then_hit() {
    let g = sample_graph();
    let cache = QueryCache::new(1 << 20);
    let stmt = Statement::prepare("MATCH (a:AS) RETURN count(a)")
        .unwrap()
        .cache(&cache);

    let (rows1, plan1) = stmt.profile(&g).unwrap();
    let rendered1 = plan1.render();
    assert!(rendered1.contains("cache=miss"), "{rendered1}");

    let (rows2, plan2) = stmt.profile(&g).unwrap();
    let rendered2 = plan2.render();
    assert!(rendered2.contains("cache=hit"), "{rendered2}");
    assert_eq!(rows1, rows2, "hit must return the cached rows verbatim");

    // Without a cache the annotation is absent entirely, so existing
    // PROFILE output is unchanged for anyone not opting in.
    let (_, plain) = Statement::prepare("MATCH (a:AS) RETURN count(a)")
        .unwrap()
        .no_cache()
        .profile(&g)
        .unwrap();
    assert!(!plain.render().contains("cache="), "{}", plain.render());
}

#[test]
fn profile_mode_text_annotates_too() {
    let g = sample_graph();
    let cache = QueryCache::new(1 << 20);
    let stmt = Statement::prepare("PROFILE MATCH (a:AS) RETURN count(a)")
        .unwrap()
        .cache(&cache);
    let first = stmt.run(&g).unwrap();
    let first_text = format!("{first:?}");
    assert!(first_text.contains("cache=miss"), "{first_text}");
    let second = stmt.run(&g).unwrap();
    let second_text = format!("{second:?}");
    assert!(second_text.contains("cache=hit"), "{second_text}");
}

#[test]
fn no_cache_opts_out() {
    let g = sample_graph();
    let cache = QueryCache::new(1 << 20);
    let stmt = Statement::prepare("MATCH (a:AS) RETURN count(a)")
        .unwrap()
        .cache(&cache)
        .no_cache();
    stmt.run(&g).unwrap();
    assert!(cache.is_empty(), "no_cache run must not populate the cache");
}

#[test]
fn different_params_occupy_different_cache_entries() {
    let g = sample_graph();
    let cache = QueryCache::new(1 << 20);
    let q = "MATCH (a:AS {asn: $asn}) RETURN count(a)";
    let mut p1 = Params::new();
    p1.insert("asn".to_string(), Value::Int(2497));
    let mut p2 = Params::new();
    p2.insert("asn".to_string(), Value::Int(64496));
    let r1 = Statement::prepare(q)
        .unwrap()
        .params(&p1)
        .cache(&cache)
        .run(&g)
        .unwrap();
    let r2 = Statement::prepare(q)
        .unwrap()
        .params(&p2)
        .cache(&cache)
        .run(&g)
        .unwrap();
    assert_eq!(cache.len(), 2);
    assert_eq!(r1.single_int(), Some(1));
    assert_eq!(r2.single_int(), Some(1));
    // Re-running p1 hits its own entry, not p2's.
    let again = Statement::prepare(q)
        .unwrap()
        .params(&p1)
        .cache(&cache)
        .run(&g)
        .unwrap();
    assert_eq!(again, r1);
}
