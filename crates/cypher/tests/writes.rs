//! Write-query tests: CREATE / MERGE / SET / DELETE.

use iyp_cypher::{query, query_write, Params};
use iyp_graph::{Graph, Props};

fn write(g: &mut Graph, q: &str) -> iyp_cypher::WriteSummary {
    query_write(g, q, &Params::new()).unwrap().1
}

fn count(g: &Graph, q: &str) -> i64 {
    query(g, q, &Params::new()).unwrap().single_int().unwrap()
}

#[test]
fn create_node_with_props() {
    let mut g = Graph::new();
    let s = write(&mut g, "CREATE (a:AS {asn: 2497, name: 'IIJ'})");
    assert_eq!(s.nodes_created, 1);
    assert_eq!(count(&g, "MATCH (a:AS {asn: 2497}) RETURN count(a)"), 1);
    let rs = query(&g, "MATCH (a:AS) RETURN a.name", &Params::new()).unwrap();
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_str(), Some("IIJ"));
}

#[test]
fn create_path_and_return() {
    let mut g = Graph::new();
    let (rs, s) = query_write(
        &mut g,
        "CREATE (a:AS {asn: 1})-[:ORIGINATE {src: 'me'}]->(p:Prefix {prefix: '10.0.0.0/8'})
         RETURN a.asn, p.prefix",
        &Params::new(),
    )
    .unwrap();
    assert_eq!(s.nodes_created, 2);
    assert_eq!(s.rels_created, 1);
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_int(), Some(1));
    assert_eq!(
        count(&g, "MATCH (:AS)-[:ORIGINATE]->(:Prefix) RETURN count(*)"),
        1
    );
}

#[test]
fn create_uses_bound_variables() {
    let mut g = Graph::new();
    write(&mut g, "CREATE (a:AS {asn: 1}) CREATE (b:AS {asn: 2})");
    let s = write(
        &mut g,
        "MATCH (a:AS {asn: 1}) MATCH (b:AS {asn: 2}) CREATE (a)-[:PEERS_WITH]->(b)",
    );
    assert_eq!(s.nodes_created, 0);
    assert_eq!(s.rels_created, 1);
    assert_eq!(
        count(&g, "MATCH (:AS)-[:PEERS_WITH]-(:AS) RETURN count(*)"),
        2
    );
}

#[test]
fn create_per_matched_row() {
    let mut g = Graph::new();
    write(
        &mut g,
        "CREATE (:AS {asn: 1}) CREATE (:AS {asn: 2}) CREATE (:AS {asn: 3})",
    );
    // Tag every AS: one Tag node per row (CREATE semantics).
    let s = write(
        &mut g,
        "MATCH (a:AS) CREATE (a)-[:CATEGORIZED]->(:Tag {label: 'seen'})",
    );
    assert_eq!(s.nodes_created, 3);
    assert_eq!(s.rels_created, 3);
}

#[test]
fn merge_matches_or_creates() {
    let mut g = Graph::new();
    let s1 = write(&mut g, "MERGE (t:Tag {label: 'My Study'})");
    assert_eq!(s1.nodes_created, 1);
    let s2 = write(&mut g, "MERGE (t:Tag {label: 'My Study'})");
    assert_eq!(s2.nodes_created, 0, "second MERGE must match");
    assert_eq!(count(&g, "MATCH (t:Tag) RETURN count(t)"), 1);
}

#[test]
fn merge_relationship_is_idempotent() {
    let mut g = Graph::new();
    write(&mut g, "CREATE (:AS {asn: 1}) CREATE (:Tag {label: 'x'})");
    for _ in 0..3 {
        write(
            &mut g,
            "MATCH (a:AS {asn: 1}) MATCH (t:Tag {label: 'x'})
             MERGE (a)-[:CATEGORIZED]->(t)",
        );
    }
    assert_eq!(
        count(&g, "MATCH (:AS)-[r:CATEGORIZED]->(:Tag) RETURN count(r)"),
        1
    );
}

#[test]
fn set_updates_nodes_and_rels() {
    let mut g = Graph::new();
    write(
        &mut g,
        "CREATE (a:AS {asn: 1})-[:ORIGINATE]->(p:Prefix {prefix: '10.0.0.0/8'})",
    );
    let s = write(
        &mut g,
        "MATCH (a:AS {asn: 1})-[r:ORIGINATE]->(p:Prefix)
         SET a.checked = true, r.weight = 3, p.af = 4",
    );
    assert_eq!(s.props_set, 3);
    assert_eq!(count(&g, "MATCH (p:Prefix {af: 4}) RETURN count(p)"), 1);
    let rs = query(
        &g,
        "MATCH (:AS)-[r:ORIGINATE]->(:Prefix) RETURN r.weight",
        &Params::new(),
    )
    .unwrap();
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_int(), Some(3));
}

#[test]
fn set_reads_pre_update_state() {
    let mut g = Graph::new();
    write(&mut g, "CREATE (a:AS {asn: 1, x: 10})");
    write(&mut g, "MATCH (a:AS) SET a.x = a.x + 1, a.y = a.x");
    let rs = query(&g, "MATCH (a:AS) RETURN a.x, a.y", &Params::new()).unwrap();
    assert_eq!(rs.rows[0][0].as_scalar().unwrap().as_int(), Some(11));
    // y sees the pre-SET value of x.
    assert_eq!(rs.rows[0][1].as_scalar().unwrap().as_int(), Some(10));
}

#[test]
fn delete_rel_and_detach_delete_node() {
    let mut g = Graph::new();
    write(
        &mut g,
        "CREATE (a:AS {asn: 1})-[:PEERS_WITH]->(b:AS {asn: 2})",
    );
    // Plain DELETE of a connected node fails.
    let err = query_write(&mut g, "MATCH (a:AS {asn: 1}) DELETE a", &Params::new());
    assert!(err.is_err());
    // Deleting the relationship works.
    let s = write(&mut g, "MATCH (:AS)-[r:PEERS_WITH]->(:AS) DELETE r");
    assert_eq!(s.rels_deleted, 1);
    // Now the node can go.
    let s = write(&mut g, "MATCH (a:AS {asn: 1}) DELETE a");
    assert_eq!(s.nodes_deleted, 1);
    assert_eq!(count(&g, "MATCH (a:AS) RETURN count(a)"), 1);
}

#[test]
fn detach_delete_removes_rels_too() {
    let mut g = Graph::new();
    write(
        &mut g,
        "CREATE (a:AS {asn: 1})-[:PEERS_WITH]->(b:AS {asn: 2})
         CREATE (a)-[:ORIGINATE]->(:Prefix {prefix: '10.0.0.0/8'})",
    );
    let s = write(&mut g, "MATCH (a:AS {asn: 1}) DETACH DELETE a");
    assert_eq!(s.nodes_deleted, 1);
    assert_eq!(s.rels_deleted, 2);
    assert_eq!(count(&g, "MATCH ()-[r]-() RETURN count(DISTINCT r)"), 0);
}

#[test]
fn unwind_create_bulk_load() {
    let mut g = Graph::new();
    let (_, s) = query_write(
        &mut g,
        "UNWIND range(1, 20) AS i CREATE (:AS {asn: i})",
        &Params::new(),
    )
    .unwrap();
    assert_eq!(s.nodes_created, 20);
    assert_eq!(count(&g, "MATCH (a:AS) RETURN count(a)"), 20);
}

#[test]
fn write_clauses_rejected_by_read_api() {
    let g = Graph::new();
    assert!(query(&g, "CREATE (:AS {asn: 1})", &Params::new()).is_err());
}

#[test]
fn undirected_create_is_rejected() {
    let mut g = Graph::new();
    assert!(query_write(
        &mut g,
        "CREATE (:AS {asn: 1})-[:PEERS_WITH]-(:AS {asn: 2})",
        &Params::new()
    )
    .is_err());
}

#[test]
fn local_instance_tagging_workflow() {
    // The §6.1 lesson end-to-end: tag the studied resources, then use
    // the tag to simplify subsequent read queries.
    let mut g = Graph::new();
    write(
        &mut g,
        "UNWIND [1, 2, 3, 4, 5] AS i CREATE (:AS {asn: i, tier: i % 2})",
    );
    write(&mut g, "MERGE (t:Tag {label: 'under study'})");
    write(
        &mut g,
        "MATCH (a:AS) WHERE a.tier = 1 MATCH (t:Tag {label: 'under study'})
         MERGE (a)-[:CATEGORIZED]->(t)",
    );
    assert_eq!(
        count(
            &g,
            "MATCH (:Tag {label:'under study'})-[:CATEGORIZED]-(a:AS) RETURN count(a)"
        ),
        3
    );
}

#[test]
fn write_query_needs_no_return() {
    let mut g = Graph::new();
    let (rs, _) = query_write(&mut g, "CREATE (:AS {asn: 1})", &Params::new()).unwrap();
    assert!(rs.columns.is_empty());
    assert!(rs.rows.is_empty());
    // A pure read query with no RETURN still fails to parse.
    assert!(query_write(&mut g, "MATCH (a:AS)", &Params::new()).is_err());
    let _ = Props::new();
}
