//! Graph algorithms over the knowledge graph.
//!
//! The paper's conclusion points at "the numerous knowledge graph
//! applications to Internet data, including knowledge reasoning …
//! and various applications based on knowledge graph embeddings". This
//! module provides the classical building blocks those applications
//! start from: traversal, components, degrees, and a PageRank-style
//! centrality — all restricted to a chosen relationship type so they
//! operate on meaningful sub-graphs (e.g. the `PEERS_WITH` AS mesh).

use crate::node::{Direction, NodeId};
use crate::store::Graph;
use crate::symbols::RelTypeId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Shortest path (by hop count) between two nodes along relationships
/// of the given type (undirected). Returns the node sequence including
/// both endpoints, or `None` when unreachable.
pub fn shortest_path(
    graph: &Graph,
    from: NodeId,
    to: NodeId,
    rel_type: Option<RelTypeId>,
) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen = HashSet::from([from]);
    while let Some(n) = queue.pop_front() {
        for next in graph.neighbors(n, Direction::Both, rel_type) {
            if seen.insert(next) {
                prev.insert(next, n);
                if next == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(&p) = prev.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

/// Connected components over relationships of the given type among the
/// given nodes. Returns one vector of node ids per component, largest
/// first.
pub fn connected_components(
    graph: &Graph,
    nodes: &[NodeId],
    rel_type: Option<RelTypeId>,
) -> Vec<Vec<NodeId>> {
    let universe: HashSet<NodeId> = nodes.iter().copied().collect();
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut components = Vec::new();
    for &start in nodes {
        if seen.contains(&start) {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(n) = queue.pop_front() {
            component.push(n);
            for next in graph.neighbors(n, Direction::Both, rel_type) {
                if universe.contains(&next) && seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        components.push(component);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Degree (number of incident relationships of the given type) for
/// each of the given nodes.
pub fn degrees(
    graph: &Graph,
    nodes: &[NodeId],
    rel_type: Option<RelTypeId>,
) -> Vec<(NodeId, usize)> {
    nodes
        .iter()
        .map(|&n| (n, graph.rels_of(n, Direction::Both, rel_type).count()))
        .collect()
}

/// PageRank over the sub-graph induced by `nodes` and relationships of
/// the given type (treated as undirected: rank flows both ways, which
/// suits peering meshes). Returns `(node, score)` sorted by descending
/// score.
pub fn pagerank(
    graph: &Graph,
    nodes: &[NodeId],
    rel_type: Option<RelTypeId>,
    damping: f64,
    iterations: usize,
) -> Vec<(NodeId, f64)> {
    let index: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();
    if n == 0 {
        return Vec::new();
    }
    // Adjacency within the universe.
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&node| {
            graph
                .neighbors(node, Direction::Both, rel_type)
                .filter_map(|m| index.get(&m).copied())
                .collect()
        })
        .collect();
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f64; n];
        let mut dangling = 0.0;
        for (i, out) in adj.iter().enumerate() {
            if out.is_empty() {
                dangling += rank[i];
            } else {
                let share = damping * rank[i] / out.len() as f64;
                for &j in out {
                    next[j] += share;
                }
            }
        }
        let dangling_share = damping * dangling / n as f64;
        for x in &mut next {
            *x += dangling_share;
        }
        rank = next;
    }
    let mut out: Vec<(NodeId, f64)> = nodes.iter().copied().zip(rank).collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Props;

    /// A line a-b-c-d plus an isolated pair e-f.
    fn line_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..6u32)
            .map(|i| g.merge_node("AS", "asn", i, Props::new()))
            .collect();
        g.create_rel(ids[0], "PEERS_WITH", ids[1], Props::new())
            .unwrap();
        g.create_rel(ids[1], "PEERS_WITH", ids[2], Props::new())
            .unwrap();
        g.create_rel(ids[2], "PEERS_WITH", ids[3], Props::new())
            .unwrap();
        g.create_rel(ids[4], "PEERS_WITH", ids[5], Props::new())
            .unwrap();
        (g, ids)
    }

    #[test]
    fn shortest_path_on_line() {
        let (g, ids) = line_graph();
        let t = g.symbols().get_rel_type("PEERS_WITH");
        let p = shortest_path(&g, ids[0], ids[3], t).unwrap();
        assert_eq!(p, vec![ids[0], ids[1], ids[2], ids[3]]);
        assert_eq!(shortest_path(&g, ids[0], ids[0], t).unwrap(), vec![ids[0]]);
        assert!(shortest_path(&g, ids[0], ids[4], t).is_none());
    }

    #[test]
    fn components_split_correctly() {
        let (g, ids) = line_graph();
        let t = g.symbols().get_rel_type("PEERS_WITH");
        let comps = connected_components(&g, &ids, t);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn degrees_count_incident_rels() {
        let (g, ids) = line_graph();
        let t = g.symbols().get_rel_type("PEERS_WITH");
        let d: HashMap<NodeId, usize> = degrees(&g, &ids, t).into_iter().collect();
        assert_eq!(d[&ids[0]], 1);
        assert_eq!(d[&ids[1]], 2);
        assert_eq!(d[&ids[5]], 1);
    }

    #[test]
    fn pagerank_favors_central_nodes() {
        let (g, ids) = line_graph();
        let t = g.symbols().get_rel_type("PEERS_WITH");
        let pr = pagerank(&g, &ids[..4], t, 0.85, 50);
        // Middle nodes of the line outrank the endpoints.
        let score: HashMap<NodeId, f64> = pr.into_iter().collect();
        assert!(score[&ids[1]] > score[&ids[0]]);
        assert!(score[&ids[2]] > score[&ids[3]]);
        // Scores sum to ~1.
        let total: f64 = score.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pagerank_handles_empty_and_dangling() {
        let (g, ids) = line_graph();
        assert!(pagerank(&g, &[], None, 0.85, 10).is_empty());
        // Node 0 alone: no neighbours inside the universe → dangling.
        let pr = pagerank(&g, &ids[..1], None, 0.85, 10);
        assert!((pr[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn star_center_dominates_pagerank() {
        let mut g = Graph::new();
        let center = g.merge_node("AS", "asn", 100u32, Props::new());
        let mut ids = vec![center];
        for i in 0..8u32 {
            let leaf = g.merge_node("AS", "asn", i, Props::new());
            g.create_rel(leaf, "PEERS_WITH", center, Props::new())
                .unwrap();
            ids.push(leaf);
        }
        let t = g.symbols().get_rel_type("PEERS_WITH");
        let pr = pagerank(&g, &ids, t, 0.85, 50);
        assert_eq!(pr[0].0, center);
    }
}
