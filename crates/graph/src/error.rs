//! Graph store errors.

use crate::node::{NodeId, RelId};
use std::fmt;

/// Errors returned by the graph store.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The node id does not exist (or was deleted).
    NodeNotFound(NodeId),
    /// The relationship id does not exist (or was deleted).
    RelNotFound(RelId),
    /// A merge key value had a type that cannot be used as a key
    /// (float, list, bool, null).
    InvalidKeyType { key: String },
    /// Snapshot (de)serialisation failed.
    Snapshot(String),
    /// Replaying a recorded op diverged from the recorded outcome
    /// (e.g. the store would assign a different id than the log claims).
    Replay(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(id) => write!(f, "node {} not found", id.0),
            GraphError::RelNotFound(id) => write!(f, "relationship {} not found", id.0),
            GraphError::InvalidKeyType { key } => {
                write!(f, "property {key:?} has a type that cannot be a merge key")
            }
            GraphError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            GraphError::Replay(msg) => write!(f, "replay diverged: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
