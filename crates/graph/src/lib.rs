//! The IYP property-graph store.
//!
//! This crate implements the database substrate that the paper delegates
//! to Neo4j: a labelled property graph with
//!
//! - **nodes** carrying one or more *labels* (ontology entity types, e.g.
//!   `AS`, `Prefix`) and a property map;
//! - **relationships** carrying a *type* (e.g. `ORIGINATE`), a direction,
//!   and a property map (including the six IYP provenance properties);
//! - a **label index** (all nodes with a label) and a per-label
//!   **unique-key index** used for Neo4j-`MERGE`-style get-or-create, which
//!   is what makes identical entities from different datasets collapse
//!   into a single node (§2.3);
//! - **adjacency lists** for constant-time traversal in both directions;
//! - **snapshot** persistence, mirroring the weekly IYP dumps.
//!
//! Unlike nodes, relationships are *not* deduplicated: importing the same
//! fact from two datasets produces two parallel links distinguished by
//! their `reference_name` property — exactly the behaviour §2.3 prescribes.

pub mod algo;
pub mod error;
pub mod node;
pub mod op;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod symbols;
pub mod value;

pub use error::GraphError;
pub use node::{Direction, Node, NodeId, Rel, RelId};
pub use op::GraphOp;
pub use stats::GraphStats;
pub use store::Graph;
pub use symbols::{LabelId, PropKeyId, RelTypeId, SymbolTable};
pub use value::{props, KeyValue, Props, Value};
