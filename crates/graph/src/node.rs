//! Node and relationship records.

use crate::symbols::{LabelId, RelTypeId};
use crate::value::{Props, Value};
use serde::{Deserialize, Serialize};

/// Identifier of a node. Dense, assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

/// Identifier of a relationship. Dense, assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelId(pub u64);

/// Traversal direction relative to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow relationships where the node is the source.
    Outgoing,
    /// Follow relationships where the node is the destination.
    Incoming,
    /// Follow relationships regardless of direction (the common case in
    /// the paper's queries, written `-[:TYPE]-`).
    Both,
}

/// A node: one or more entity labels plus a property map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Entity labels (ontology node types). Most nodes have exactly one;
    /// `Tag`-plus-`Name` style multi-label nodes are allowed.
    pub labels: Vec<LabelId>,
    /// Properties (identity key plus any circumstantial attributes).
    pub props: Props,
    /// Relationship ids where this node is the source.
    pub out_rels: Vec<RelId>,
    /// Relationship ids where this node is the destination.
    pub in_rels: Vec<RelId>,
}

impl Node {
    /// True if the node carries the given label.
    pub fn has_label(&self, label: LabelId) -> bool {
        self.labels.contains(&label)
    }

    /// Fetches a property value.
    pub fn prop(&self, key: &str) -> Option<&Value> {
        self.props.get(key)
    }

    /// Total degree (in + out).
    pub fn degree(&self) -> usize {
        self.out_rels.len() + self.in_rels.len()
    }
}

/// A directed relationship with a type and properties.
///
/// Every relationship imported from a dataset carries the six IYP
/// provenance properties (`reference_org`, `reference_name`, …) set by the
/// crawler framework.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rel {
    /// This relationship's id.
    pub id: RelId,
    /// Relationship type (ontology relationship).
    pub rel_type: RelTypeId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Properties, including provenance.
    pub props: Props,
}

impl Rel {
    /// Fetches a property value.
    pub fn prop(&self, key: &str) -> Option<&Value> {
        self.props.get(key)
    }

    /// Given one endpoint, returns the other.
    pub fn other(&self, node: NodeId) -> NodeId {
        if self.src == node {
            self.dst
        } else {
            self.src
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_endpoint() {
        let r = Rel {
            id: RelId(0),
            rel_type: RelTypeId(0),
            src: NodeId(1),
            dst: NodeId(2),
            props: Props::new(),
        };
        assert_eq!(r.other(NodeId(1)), NodeId(2));
        assert_eq!(r.other(NodeId(2)), NodeId(1));
    }

    #[test]
    fn node_label_and_degree() {
        let n = Node {
            id: NodeId(0),
            labels: vec![LabelId(3)],
            props: Props::new(),
            out_rels: vec![RelId(0), RelId(1)],
            in_rels: vec![RelId(2)],
        };
        assert!(n.has_label(LabelId(3)));
        assert!(!n.has_label(LabelId(4)));
        assert_eq!(n.degree(), 3);
    }
}
