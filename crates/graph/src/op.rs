//! Logical graph operations: the unit of journaling and replay.
//!
//! Every mutation the store can perform is expressible as a [`GraphOp`].
//! Live writes *record* the ops they perform (see
//! [`Graph::begin_recording`]), a write-ahead log persists them, and
//! crash recovery *replays* them through [`Graph::apply`] — one shared
//! code path, so a replayed log reproduces the exact same state,
//! including node and relationship ids.
//!
//! # Effect logging
//!
//! Ops are *effects*, not intents: a `MERGE` records which node it
//! resolved to and whether it created one, and creations record the id
//! the store assigned. This makes replay deterministic by construction
//! — it never re-runs index lookups whose outcome could differ after a
//! snapshot reload — and lets [`Graph::apply`] *verify* determinism:
//! if a replayed creation would assign a different id than the recorded
//! one, replay fails with [`GraphError::Replay`] instead of silently
//! diverging.

use crate::error::GraphError;
use crate::node::{NodeId, RelId};
use crate::snapshot::{get_props, get_str, get_value, put_props, put_str, put_value};
use crate::value::{KeyValue, Props, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One logical mutation of the graph, as recorded by a live write.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphOp {
    /// `Graph::create_node` — `id` is the id the store assigned.
    CreateNode {
        /// Assigned node id (next dense id at the time of the write).
        id: NodeId,
        /// Label names (resolved to the symbol table on apply).
        labels: Vec<String>,
        /// Initial properties.
        props: Props,
    },
    /// `Graph::merge_node` — with the resolution it took.
    MergeNode {
        /// Merge label.
        label: String,
        /// Merge key property name.
        key: String,
        /// Merge key value.
        key_value: KeyValue,
        /// Extra properties merged into the node.
        props: Props,
        /// The node the merge resolved to.
        node: NodeId,
        /// Whether the node was created (vs. merged into an existing
        /// one). Replay honours this decision instead of re-probing
        /// the unique-key index.
        created: bool,
    },
    /// `Graph::add_label`.
    AddLabel {
        /// Target node.
        node: NodeId,
        /// Label name to add.
        label: String,
    },
    /// `Graph::set_node_prop`.
    SetNodeProp {
        /// Target node.
        node: NodeId,
        /// Property key.
        key: String,
        /// New value.
        value: Value,
    },
    /// `Graph::set_rel_prop`.
    SetRelProp {
        /// Target relationship.
        rel: RelId,
        /// Property key.
        key: String,
        /// New value.
        value: Value,
    },
    /// `Graph::create_rel` — `id` is the id the store assigned.
    CreateRel {
        /// Assigned relationship id.
        id: RelId,
        /// Source node.
        src: NodeId,
        /// Relationship type name.
        rel_type: String,
        /// Destination node.
        dst: NodeId,
        /// Relationship properties.
        props: Props,
    },
    /// `Graph::delete_rel`.
    DeleteRel {
        /// Relationship to delete.
        rel: RelId,
    },
    /// `Graph::delete_node` (detach semantics: the cascade over the
    /// node's relationships is implied, not recorded separately).
    DeleteNode {
        /// Node to delete.
        node: NodeId,
    },
}

impl GraphOp {
    /// Short operation name (for reports and debugging).
    pub fn name(&self) -> &'static str {
        match self {
            GraphOp::CreateNode { .. } => "create_node",
            GraphOp::MergeNode { .. } => "merge_node",
            GraphOp::AddLabel { .. } => "add_label",
            GraphOp::SetNodeProp { .. } => "set_node_prop",
            GraphOp::SetRelProp { .. } => "set_rel_prop",
            GraphOp::CreateRel { .. } => "create_rel",
            GraphOp::DeleteRel { .. } => "delete_rel",
            GraphOp::DeleteNode { .. } => "delete_node",
        }
    }
}

// ----------------------------------------------------------------------
// Binary codec (shares the snapshot value encoding)
// ----------------------------------------------------------------------

const TAG_CREATE_NODE: u8 = 1;
const TAG_MERGE_NODE: u8 = 2;
const TAG_ADD_LABEL: u8 = 3;
const TAG_SET_NODE_PROP: u8 = 4;
const TAG_SET_REL_PROP: u8 = 5;
const TAG_CREATE_REL: u8 = 6;
const TAG_DELETE_REL: u8 = 7;
const TAG_DELETE_NODE: u8 = 8;

fn put_key_value(buf: &mut BytesMut, kv: &KeyValue) {
    match kv {
        KeyValue::Int(i) => {
            buf.put_u8(0);
            buf.put_i64_le(*i);
        }
        KeyValue::Str(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
    }
}

fn get_key_value(buf: &mut Bytes) -> Result<KeyValue, GraphError> {
    if buf.remaining() < 1 {
        return Err(GraphError::Snapshot("truncated key-value tag".into()));
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 8 {
                return Err(GraphError::Snapshot("truncated key-value int".into()));
            }
            Ok(KeyValue::Int(buf.get_i64_le()))
        }
        1 => Ok(KeyValue::Str(get_str(buf)?)),
        t => Err(GraphError::Snapshot(format!("unknown key-value tag {t}"))),
    }
}

/// Appends the binary encoding of one op to `buf`.
pub fn encode_op(buf: &mut BytesMut, op: &GraphOp) {
    match op {
        GraphOp::CreateNode { id, labels, props } => {
            buf.put_u8(TAG_CREATE_NODE);
            buf.put_u64_le(id.0);
            buf.put_u16_le(labels.len() as u16);
            for l in labels {
                put_str(buf, l);
            }
            put_props(buf, props);
        }
        GraphOp::MergeNode {
            label,
            key,
            key_value,
            props,
            node,
            created,
        } => {
            buf.put_u8(TAG_MERGE_NODE);
            put_str(buf, label);
            put_str(buf, key);
            put_key_value(buf, key_value);
            put_props(buf, props);
            buf.put_u64_le(node.0);
            buf.put_u8(*created as u8);
        }
        GraphOp::AddLabel { node, label } => {
            buf.put_u8(TAG_ADD_LABEL);
            buf.put_u64_le(node.0);
            put_str(buf, label);
        }
        GraphOp::SetNodeProp { node, key, value } => {
            buf.put_u8(TAG_SET_NODE_PROP);
            buf.put_u64_le(node.0);
            put_str(buf, key);
            put_value(buf, value);
        }
        GraphOp::SetRelProp { rel, key, value } => {
            buf.put_u8(TAG_SET_REL_PROP);
            buf.put_u64_le(rel.0);
            put_str(buf, key);
            put_value(buf, value);
        }
        GraphOp::CreateRel {
            id,
            src,
            rel_type,
            dst,
            props,
        } => {
            buf.put_u8(TAG_CREATE_REL);
            buf.put_u64_le(id.0);
            buf.put_u64_le(src.0);
            put_str(buf, rel_type);
            buf.put_u64_le(dst.0);
            put_props(buf, props);
        }
        GraphOp::DeleteRel { rel } => {
            buf.put_u8(TAG_DELETE_REL);
            buf.put_u64_le(rel.0);
        }
        GraphOp::DeleteNode { node } => {
            buf.put_u8(TAG_DELETE_NODE);
            buf.put_u64_le(node.0);
        }
    }
}

fn get_u64(buf: &mut Bytes, what: &str) -> Result<u64, GraphError> {
    if buf.remaining() < 8 {
        return Err(GraphError::Snapshot(format!("truncated {what}")));
    }
    Ok(buf.get_u64_le())
}

/// Decodes one op from `buf`, advancing it past the encoding.
pub fn decode_op(buf: &mut Bytes) -> Result<GraphOp, GraphError> {
    if buf.remaining() < 1 {
        return Err(GraphError::Snapshot("truncated op tag".into()));
    }
    match buf.get_u8() {
        TAG_CREATE_NODE => {
            let id = NodeId(get_u64(buf, "node id")?);
            if buf.remaining() < 2 {
                return Err(GraphError::Snapshot("truncated label count".into()));
            }
            let n = buf.get_u16_le() as usize;
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(get_str(buf)?);
            }
            let props = get_props(buf)?;
            Ok(GraphOp::CreateNode { id, labels, props })
        }
        TAG_MERGE_NODE => {
            let label = get_str(buf)?;
            let key = get_str(buf)?;
            let key_value = get_key_value(buf)?;
            let props = get_props(buf)?;
            let node = NodeId(get_u64(buf, "merge node id")?);
            if buf.remaining() < 1 {
                return Err(GraphError::Snapshot("truncated merge flag".into()));
            }
            let created = buf.get_u8() != 0;
            Ok(GraphOp::MergeNode {
                label,
                key,
                key_value,
                props,
                node,
                created,
            })
        }
        TAG_ADD_LABEL => {
            let node = NodeId(get_u64(buf, "node id")?);
            let label = get_str(buf)?;
            Ok(GraphOp::AddLabel { node, label })
        }
        TAG_SET_NODE_PROP => {
            let node = NodeId(get_u64(buf, "node id")?);
            let key = get_str(buf)?;
            let value = get_value(buf)?;
            Ok(GraphOp::SetNodeProp { node, key, value })
        }
        TAG_SET_REL_PROP => {
            let rel = RelId(get_u64(buf, "rel id")?);
            let key = get_str(buf)?;
            let value = get_value(buf)?;
            Ok(GraphOp::SetRelProp { rel, key, value })
        }
        TAG_CREATE_REL => {
            let id = RelId(get_u64(buf, "rel id")?);
            let src = NodeId(get_u64(buf, "src node")?);
            let rel_type = get_str(buf)?;
            let dst = NodeId(get_u64(buf, "dst node")?);
            let props = get_props(buf)?;
            Ok(GraphOp::CreateRel {
                id,
                src,
                rel_type,
                dst,
                props,
            })
        }
        TAG_DELETE_REL => Ok(GraphOp::DeleteRel {
            rel: RelId(get_u64(buf, "rel id")?),
        }),
        TAG_DELETE_NODE => Ok(GraphOp::DeleteNode {
            node: NodeId(get_u64(buf, "node id")?),
        }),
        t => Err(GraphError::Snapshot(format!("unknown op tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::props;

    fn sample_ops() -> Vec<GraphOp> {
        vec![
            GraphOp::CreateNode {
                id: NodeId(0),
                labels: vec!["AS".into(), "Tier1".into()],
                props: props([("asn", Value::Int(2497)), ("name", "IIJ".into())]),
            },
            GraphOp::MergeNode {
                label: "Prefix".into(),
                key: "prefix".into(),
                key_value: KeyValue::Str("192.0.2.0/24".into()),
                props: props([("af", Value::Int(4))]),
                node: NodeId(1),
                created: true,
            },
            GraphOp::MergeNode {
                label: "AS".into(),
                key: "asn".into(),
                key_value: KeyValue::Int(2497),
                props: Props::new(),
                node: NodeId(0),
                created: false,
            },
            GraphOp::AddLabel {
                node: NodeId(0),
                label: "Transit".into(),
            },
            GraphOp::SetNodeProp {
                node: NodeId(1),
                key: "tags".into(),
                value: Value::List(vec![Value::Null, Value::Bool(true), Value::Float(0.5)]),
            },
            GraphOp::CreateRel {
                id: RelId(0),
                src: NodeId(0),
                rel_type: "ORIGINATE".into(),
                dst: NodeId(1),
                props: props([("reference_name", "bgpkit.pfx2as".into())]),
            },
            GraphOp::SetRelProp {
                rel: RelId(0),
                key: "weight".into(),
                value: Value::Float(1.25),
            },
            GraphOp::DeleteRel { rel: RelId(0) },
            GraphOp::DeleteNode { node: NodeId(1) },
        ]
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        for op in sample_ops() {
            let mut buf = BytesMut::new();
            encode_op(&mut buf, &op);
            let mut bytes = buf.freeze();
            let back = decode_op(&mut bytes).unwrap();
            assert_eq!(back, op);
            assert_eq!(bytes.remaining(), 0, "decoder must consume the encoding");
        }
    }

    #[test]
    fn codec_rejects_truncations() {
        for op in sample_ops() {
            let mut buf = BytesMut::new();
            encode_op(&mut buf, &op);
            let full = buf.freeze();
            for cut in 0..full.len() {
                let mut partial = Bytes::copy_from_slice(&full.to_vec()[..cut]);
                assert!(
                    decode_op(&mut partial).is_err(),
                    "truncation at {cut} of {} must fail for {}",
                    full.len(),
                    op.name()
                );
            }
        }
    }

    #[test]
    fn codec_rejects_unknown_tag() {
        let mut bytes = Bytes::copy_from_slice(&[99]);
        assert!(decode_op(&mut bytes).is_err());
    }
}
