//! Snapshot persistence.
//!
//! The public IYP service releases weekly database snapshots that users
//! load into a local instance (§3.1). This module provides the same
//! workflow for our store, in two formats:
//!
//! - **JSON** — human-inspectable, interoperable;
//! - **binary** — a compact length-prefixed encoding (via [`bytes`]),
//!   several times smaller and faster, used by the benchmark suite.
//!
//! Both formats roundtrip the complete graph; indexes are rebuilt on load.

use crate::error::GraphError;
use crate::node::{Node, NodeId, Rel, RelId};
use crate::store::Graph;
use crate::symbols::{LabelId, RelTypeId, SymbolTable};
use crate::value::{Props, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Magic bytes identifying a binary IYP snapshot.
const MAGIC: &[u8; 4] = b"IYPS";
/// Binary format version.
const VERSION: u8 = 1;

#[derive(Serialize, Deserialize)]
struct SnapshotDoc {
    symbols: SymbolTable,
    nodes: Vec<Option<Node>>,
    rels: Vec<Option<Rel>>,
}

/// Serialises the graph to a JSON snapshot string.
pub fn to_json(graph: &Graph) -> Result<String, GraphError> {
    let (symbols, nodes, rels) = graph.parts();
    let doc = SnapshotDoc {
        symbols: symbols.clone(),
        nodes: nodes.to_vec(),
        rels: rels.to_vec(),
    };
    serde_json::to_string(&doc).map_err(|e| GraphError::Snapshot(e.to_string()))
}

/// Loads a graph from a JSON snapshot string.
pub fn from_json(json: &str) -> Result<Graph, GraphError> {
    let doc: SnapshotDoc =
        serde_json::from_str(json).map_err(|e| GraphError::Snapshot(e.to_string()))?;
    Ok(Graph::from_parts(doc.symbols, doc.nodes, doc.rels))
}

/// Writes a JSON snapshot to a file.
pub fn save_json(graph: &Graph, path: &Path) -> Result<(), GraphError> {
    let json = to_json(graph)?;
    fs::write(path, json).map_err(|e| GraphError::Snapshot(e.to_string()))
}

/// Loads a JSON snapshot from a file.
pub fn load_json(path: &Path) -> Result<Graph, GraphError> {
    let json = fs::read_to_string(path).map_err(|e| GraphError::Snapshot(e.to_string()))?;
    from_json(&json)
}

// ----------------------------------------------------------------------
// Binary format
// ----------------------------------------------------------------------

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String, GraphError> {
    if buf.remaining() < 4 {
        return Err(GraphError::Snapshot("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(GraphError::Snapshot("truncated string body".into()));
    }
    let b = buf.copy_to_bytes(len);
    String::from_utf8(b.to_vec()).map_err(|e| GraphError::Snapshot(e.to_string()))
}

pub(crate) fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Value::List(l) => {
            buf.put_u8(5);
            buf.put_u32_le(l.len() as u32);
            for x in l {
                put_value(buf, x);
            }
        }
    }
}

pub(crate) fn get_value(buf: &mut Bytes) -> Result<Value, GraphError> {
    if buf.remaining() < 1 {
        return Err(GraphError::Snapshot("truncated value tag".into()));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 1 {
                return Err(GraphError::Snapshot("truncated bool".into()));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(GraphError::Snapshot("truncated int".into()));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(GraphError::Snapshot("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        4 => Ok(Value::Str(get_str(buf)?)),
        5 => {
            if buf.remaining() < 4 {
                return Err(GraphError::Snapshot("truncated list length".into()));
            }
            let n = buf.get_u32_le() as usize;
            let mut l = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                l.push(get_value(buf)?);
            }
            Ok(Value::List(l))
        }
        t => Err(GraphError::Snapshot(format!("unknown value tag {t}"))),
    }
}

pub(crate) fn put_props(buf: &mut BytesMut, props: &Props) {
    buf.put_u32_le(props.len() as u32);
    for (k, v) in props {
        put_str(buf, k);
        put_value(buf, v);
    }
}

pub(crate) fn get_props(buf: &mut Bytes) -> Result<Props, GraphError> {
    if buf.remaining() < 4 {
        return Err(GraphError::Snapshot("truncated props length".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut props = Props::new();
    for _ in 0..n {
        let k = get_str(buf)?;
        let v = get_value(buf)?;
        props.insert(k, v);
    }
    Ok(props)
}

/// Serialises the graph to the compact binary snapshot format.
pub fn to_binary(graph: &Graph) -> Bytes {
    let (symbols, nodes, rels) = graph.parts();
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);

    // Symbol table: labels, rel types (prop keys are rebuilt from data).
    let labels: Vec<&str> = symbols.labels().map(|(_, n)| n).collect();
    buf.put_u32_le(labels.len() as u32);
    for l in labels {
        put_str(&mut buf, l);
    }
    let types: Vec<&str> = symbols.rel_types().map(|(_, n)| n).collect();
    buf.put_u32_le(types.len() as u32);
    for t in types {
        put_str(&mut buf, t);
    }

    // Nodes (adjacency is rebuilt from rels on load).
    buf.put_u64_le(nodes.len() as u64);
    for slot in nodes {
        match slot {
            None => buf.put_u8(0),
            Some(n) => {
                buf.put_u8(1);
                buf.put_u16_le(n.labels.len() as u16);
                for l in &n.labels {
                    buf.put_u32_le(l.0);
                }
                put_props(&mut buf, &n.props);
            }
        }
    }

    // Rels.
    buf.put_u64_le(rels.len() as u64);
    for slot in rels {
        match slot {
            None => buf.put_u8(0),
            Some(r) => {
                buf.put_u8(1);
                buf.put_u32_le(r.rel_type.0);
                buf.put_u64_le(r.src.0);
                buf.put_u64_le(r.dst.0);
                put_props(&mut buf, &r.props);
            }
        }
    }

    buf.freeze()
}

/// Loads a graph from the compact binary snapshot format.
pub fn from_binary(data: &[u8]) -> Result<Graph, GraphError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 5 {
        return Err(GraphError::Snapshot("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Snapshot("bad magic".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(GraphError::Snapshot(format!(
            "unsupported version {version}"
        )));
    }

    let mut symbols = SymbolTable::new();
    if buf.remaining() < 4 {
        return Err(GraphError::Snapshot("truncated label table".into()));
    }
    let nlabels = buf.get_u32_le();
    for _ in 0..nlabels {
        let name = get_str(&mut buf)?;
        symbols.label(&name);
    }
    if buf.remaining() < 4 {
        return Err(GraphError::Snapshot("truncated type table".into()));
    }
    let ntypes = buf.get_u32_le();
    for _ in 0..ntypes {
        let name = get_str(&mut buf)?;
        symbols.rel_type(&name);
    }

    if buf.remaining() < 8 {
        return Err(GraphError::Snapshot("truncated node count".into()));
    }
    let nnodes = buf.get_u64_le() as usize;
    let mut nodes: Vec<Option<Node>> = Vec::with_capacity(nnodes.min(1 << 24));
    for i in 0..nnodes {
        if buf.remaining() < 1 {
            return Err(GraphError::Snapshot("truncated node".into()));
        }
        match buf.get_u8() {
            0 => nodes.push(None),
            1 => {
                if buf.remaining() < 2 {
                    return Err(GraphError::Snapshot("truncated node labels".into()));
                }
                let nl = buf.get_u16_le() as usize;
                let mut labels = Vec::with_capacity(nl);
                for _ in 0..nl {
                    if buf.remaining() < 4 {
                        return Err(GraphError::Snapshot("truncated label id".into()));
                    }
                    labels.push(LabelId(buf.get_u32_le()));
                }
                let props = get_props(&mut buf)?;
                nodes.push(Some(Node {
                    id: NodeId(i as u64),
                    labels,
                    props,
                    out_rels: Vec::new(),
                    in_rels: Vec::new(),
                }));
            }
            t => return Err(GraphError::Snapshot(format!("bad node tag {t}"))),
        }
    }

    if buf.remaining() < 8 {
        return Err(GraphError::Snapshot("truncated rel count".into()));
    }
    let nrels = buf.get_u64_le() as usize;
    let mut rels: Vec<Option<Rel>> = Vec::with_capacity(nrels.min(1 << 24));
    for i in 0..nrels {
        if buf.remaining() < 1 {
            return Err(GraphError::Snapshot("truncated rel".into()));
        }
        match buf.get_u8() {
            0 => rels.push(None),
            1 => {
                if buf.remaining() < 4 + 8 + 8 {
                    return Err(GraphError::Snapshot("truncated rel body".into()));
                }
                let rel_type = RelTypeId(buf.get_u32_le());
                let src = NodeId(buf.get_u64_le());
                let dst = NodeId(buf.get_u64_le());
                let props = get_props(&mut buf)?;
                rels.push(Some(Rel {
                    id: RelId(i as u64),
                    rel_type,
                    src,
                    dst,
                    props,
                }));
            }
            t => return Err(GraphError::Snapshot(format!("bad rel tag {t}"))),
        }
    }

    // Rebuild adjacency.
    for slot in rels.iter().filter_map(Option::as_ref) {
        if let Some(Some(n)) = nodes.get_mut(slot.src.0 as usize) {
            n.out_rels.push(slot.id);
        }
        if let Some(Some(n)) = nodes.get_mut(slot.dst.0 as usize) {
            n.in_rels.push(slot.id);
        }
    }

    Ok(Graph::from_parts(symbols, nodes, rels))
}

/// Writes a binary snapshot to a file.
pub fn save_binary(graph: &Graph, path: &Path) -> Result<(), GraphError> {
    fs::write(path, to_binary(graph)).map_err(|e| GraphError::Snapshot(e.to_string()))
}

/// Loads a binary snapshot from a file.
pub fn load_binary(path: &Path) -> Result<Graph, GraphError> {
    let data = fs::read(path).map_err(|e| GraphError::Snapshot(e.to_string()))?;
    from_binary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Direction;
    use crate::value::props;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, props([("name", "IIJ".into())]));
        let p = g.merge_node(
            "Prefix",
            "prefix",
            "2001:db8::/32",
            props([("af", Value::Int(6))]),
        );
        g.create_rel(
            a,
            "ORIGINATE",
            p,
            props([
                ("reference_name", "bgpkit.pfx2as".into()),
                ("count", Value::Int(12)),
                ("weight", Value::Float(0.25)),
                ("tags", Value::List(vec!["x".into(), Value::Int(1)])),
                ("nullable", Value::Null),
                ("flag", Value::Bool(true)),
            ]),
        )
        .unwrap();
        g
    }

    fn assert_same(g: &Graph, h: &Graph) {
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.rel_count(), h.rel_count());
        let a = h.lookup("AS", "asn", 2497u32).expect("AS survives");
        let p = h
            .lookup("Prefix", "prefix", "2001:db8::/32")
            .expect("prefix survives");
        let t = h.symbols().get_rel_type("ORIGINATE");
        let rels: Vec<_> = h.rels_of(a, Direction::Outgoing, t).collect();
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].dst, p);
        assert_eq!(rels[0].prop("count").unwrap().as_int(), Some(12));
        assert_eq!(rels[0].prop("weight").unwrap().as_float(), Some(0.25));
        assert!(rels[0].prop("nullable").unwrap().is_null());
        assert_eq!(rels[0].prop("flag").unwrap().as_bool(), Some(true));
        assert_eq!(rels[0].prop("tags").unwrap().as_list().unwrap().len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let g = sample_graph();
        let json = to_json(&g).unwrap();
        let h = from_json(&json).unwrap();
        assert_same(&g, &h);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample_graph();
        let bin = to_binary(&g);
        let h = from_binary(&bin).unwrap();
        assert_same(&g, &h);
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let g = sample_graph();
        assert!(to_binary(&g).len() < to_json(&g).unwrap().len());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_binary(b"").is_err());
        assert!(from_binary(b"NOPE\x01").is_err());
        assert!(from_binary(b"IYPS\x63").is_err()); // bad version
        let mut bin = to_binary(&sample_graph()).to_vec();
        bin.truncate(bin.len() / 2);
        assert!(from_binary(&bin).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample_graph();
        let dir = std::env::temp_dir();
        let jpath = dir.join("iyp_snapshot_test.json");
        let bpath = dir.join("iyp_snapshot_test.bin");
        save_json(&g, &jpath).unwrap();
        save_binary(&g, &bpath).unwrap();
        assert_same(&g, &load_json(&jpath).unwrap());
        assert_same(&g, &load_binary(&bpath).unwrap());
        let _ = std::fs::remove_file(jpath);
        let _ = std::fs::remove_file(bpath);
    }

    #[test]
    fn roundtrip_preserves_merge_semantics() {
        let g = sample_graph();
        let mut h = from_binary(&to_binary(&g)).unwrap();
        // Merging the same AS key must hit the existing node, not make a new one.
        let before = h.node_count();
        let a = h.merge_node("AS", "asn", 2497u32, Props::new());
        assert_eq!(h.node_count(), before);
        assert_eq!(Some(a), h.lookup("AS", "asn", 2497u32));
    }

    #[test]
    fn roundtrip_with_deletions() {
        let mut g = sample_graph();
        let extra = g.merge_node("AS", "asn", 99u32, Props::new());
        g.delete_node(extra).unwrap();
        let h = from_binary(&to_binary(&g)).unwrap();
        assert_eq!(h.node_count(), g.node_count());
        assert!(h.lookup("AS", "asn", 99u32).is_none());
    }
}
