//! Graph statistics, used by the pipeline build report and the README
//! tables.

use crate::store::Graph;
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a graph: totals plus per-label and per-type
/// breakdowns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Live node count.
    pub nodes: usize,
    /// Live relationship count.
    pub rels: usize,
    /// Node count per label, sorted by label name.
    pub nodes_per_label: BTreeMap<String, usize>,
    /// Relationship count per type, sorted by type name.
    pub rels_per_type: BTreeMap<String, usize>,
    /// Relationship count per `reference_name` (dataset), sorted.
    pub rels_per_dataset: BTreeMap<String, usize>,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(graph: &Graph) -> Self {
        let mut nodes_per_label: BTreeMap<String, usize> = BTreeMap::new();
        for n in graph.all_nodes() {
            for l in &n.labels {
                *nodes_per_label
                    .entry(graph.symbols().label_name(*l).to_string())
                    .or_default() += 1;
            }
        }
        let mut rels_per_type: BTreeMap<String, usize> = BTreeMap::new();
        let mut rels_per_dataset: BTreeMap<String, usize> = BTreeMap::new();
        for r in graph.all_rels() {
            *rels_per_type
                .entry(graph.symbols().rel_type_name(r.rel_type).to_string())
                .or_default() += 1;
            if let Some(ds) = r.prop("reference_name").and_then(|v| v.as_str()) {
                *rels_per_dataset.entry(ds.to_string()).or_default() += 1;
            }
        }
        GraphStats {
            nodes: graph.node_count(),
            rels: graph.rel_count(),
            nodes_per_label,
            rels_per_type,
            rels_per_dataset,
        }
    }

    /// Number of distinct datasets that contributed relationships.
    pub fn dataset_count(&self) -> usize {
        self.rels_per_dataset.len()
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes: {}  relationships: {}", self.nodes, self.rels)?;
        writeln!(f, "-- nodes per label --")?;
        for (l, c) in &self.nodes_per_label {
            writeln!(f, "  {l:<28} {c:>9}")?;
        }
        writeln!(f, "-- relationships per type --")?;
        for (t, c) in &self.rels_per_type {
            writeln!(f, "  {t:<28} {c:>9}")?;
        }
        writeln!(f, "-- relationships per dataset --")?;
        for (d, c) in &self.rels_per_dataset {
            writeln!(f, "  {d:<40} {c:>9}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{props, Props};

    #[test]
    fn computes_breakdowns() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        let b = g.merge_node("AS", "asn", 2u32, Props::new());
        let p = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        g.create_rel(
            a,
            "ORIGINATE",
            p,
            props([("reference_name", "bgpkit.pfx2as".into())]),
        )
        .unwrap();
        g.create_rel(
            b,
            "ORIGINATE",
            p,
            props([("reference_name", "bgpkit.pfx2as".into())]),
        )
        .unwrap();
        g.create_rel(
            a,
            "PEERS_WITH",
            b,
            props([("reference_name", "bgpkit.as2rel".into())]),
        )
        .unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.rels, 3);
        assert_eq!(s.nodes_per_label["AS"], 2);
        assert_eq!(s.nodes_per_label["Prefix"], 1);
        assert_eq!(s.rels_per_type["ORIGINATE"], 2);
        assert_eq!(s.rels_per_type["PEERS_WITH"], 1);
        assert_eq!(s.rels_per_dataset["bgpkit.pfx2as"], 2);
        assert_eq!(s.dataset_count(), 2);
        // Display renders without panicking and mentions labels.
        let txt = s.to_string();
        assert!(txt.contains("ORIGINATE"));
    }

    #[test]
    fn multi_label_nodes_count_once_per_label() {
        let mut g = Graph::new();
        let n = g.create_node(&["AS"], Props::new());
        g.add_label(n, "Tier1").unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.nodes_per_label["AS"], 1);
        assert_eq!(s.nodes_per_label["Tier1"], 1);
    }
}
