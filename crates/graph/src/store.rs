//! The graph store: nodes, relationships, indexes, merge semantics.

use crate::error::GraphError;
use crate::node::{Direction, Node, NodeId, Rel, RelId};
use crate::op::GraphOp;
use crate::symbols::{LabelId, PropKeyId, RelTypeId, SymbolTable};
use crate::value::{KeyValue, Props, Value};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global id source for [`Graph::graph_id`]. Never reused, so
/// two graphs alive in one process (or a graph and its snapshot-reload)
/// can never collide in an epoch-keyed cache.
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

fn next_graph_id() -> u64 {
    NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed)
}

/// A labelled property graph with Neo4j-`MERGE`-style node identity.
///
/// The store is append-mostly: IYP construction only ever adds nodes and
/// relationships, but tombstone deletion is supported for completeness
/// (e.g. retracting an erroneous dataset, §6.1).
///
/// # Identity and merging
///
/// Nodes representing network resources are created through
/// [`Graph::merge_node`], keyed by `(label, key property, key value)` —
/// e.g. `(AS, asn, 2497)`. Re-merging the same key returns the existing
/// node, which is how datapoints from independent datasets collapse onto
/// a single entity. Relationships are never deduplicated: each dataset
/// import creates its own parallel link carrying provenance properties.
#[derive(Debug)]
pub struct Graph {
    symbols: SymbolTable,
    nodes: Vec<Option<Node>>,
    rels: Vec<Option<Rel>>,
    /// label -> node ids carrying it (BTreeSet for deterministic scans).
    label_index: HashMap<LabelId, BTreeSet<NodeId>>,
    /// (label, key prop) -> key value -> node id.
    key_index: HashMap<(LabelId, PropKeyId), HashMap<KeyValue, NodeId>>,
    /// Per-node adjacency grouped by relationship type, parallel to
    /// `nodes`. Derived from the rel table (never serialized; rebuilt in
    /// [`Graph::from_parts`]) so typed expansion is O(degree-of-type).
    typed_adj: Vec<TypedAdj>,
    deleted_nodes: u64,
    deleted_rels: u64,
    /// When `Some`, every mutation appends its effect [`GraphOp`] here
    /// (the journaling hook; see [`Graph::begin_recording`]).
    recorder: Option<Vec<GraphOp>>,
    /// Process-unique identity of this store instance (never serialized;
    /// a snapshot reload gets a fresh one). See [`Graph::graph_id`].
    graph_id: u64,
    /// Monotonic mutation counter. Every write — live, replayed, or
    /// cascaded — bumps it, so `(graph_id, epoch)` names one immutable
    /// state of the store. See [`Graph::epoch`].
    epoch: u64,
}

impl Default for Graph {
    fn default() -> Self {
        Graph {
            symbols: SymbolTable::default(),
            nodes: Vec::new(),
            rels: Vec::new(),
            label_index: HashMap::new(),
            key_index: HashMap::new(),
            typed_adj: Vec::new(),
            deleted_nodes: 0,
            deleted_rels: 0,
            recorder: None,
            graph_id: next_graph_id(),
            epoch: 0,
        }
    }
}

/// Typed adjacency lists for one node: rel ids partitioned by
/// [`RelTypeId`], each list in creation (id) order so iteration matches
/// the order a type filter over `out_rels`/`in_rels` would produce.
#[derive(Debug, Default, Clone)]
struct TypedAdj {
    out: Vec<(RelTypeId, Vec<RelId>)>,
    inc: Vec<(RelTypeId, Vec<RelId>)>,
}

fn typed_push(list: &mut Vec<(RelTypeId, Vec<RelId>)>, t: RelTypeId, id: RelId) {
    match list.binary_search_by_key(&t, |(ty, _)| *ty) {
        Ok(i) => list[i].1.push(id),
        Err(i) => list.insert(i, (t, vec![id])),
    }
}

fn typed_remove(list: &mut Vec<(RelTypeId, Vec<RelId>)>, t: RelTypeId, id: RelId) {
    if let Ok(i) = list.binary_search_by_key(&t, |(ty, _)| *ty) {
        list[i].1.retain(|x| *x != id);
        if list[i].1.is_empty() {
            list.remove(i);
        }
    }
}

fn typed_get(list: &[(RelTypeId, Vec<RelId>)], t: RelTypeId) -> &[RelId] {
    match list.binary_search_by_key(&t, |(ty, _)| *ty) {
        Ok(i) => &list[i].1,
        Err(_) => &[],
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Versioning
    // ------------------------------------------------------------------

    /// Process-unique identity of this store instance. Assigned from a
    /// global counter at construction (including snapshot reload), so
    /// no two graphs alive in one process share an id — which makes
    /// `(graph_id, epoch)` a safe cache key even across instances.
    pub fn graph_id(&self) -> u64 {
        self.graph_id
    }

    /// Monotonic mutation counter: starts at 0 and is bumped by every
    /// mutation, including journal replay (which routes through the
    /// same mutation tails) and cascaded deletes. A cached result keyed
    /// by `(graph_id, epoch, …)` is therefore implicitly invalidated by
    /// any write — the stale key simply never matches again.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Explicitly advances the epoch without mutating data — an
    /// invalidation hook for callers that change query-visible state
    /// through some side channel (none exist in-tree; kept public for
    /// embedders).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    // ------------------------------------------------------------------
    // Symbols
    // ------------------------------------------------------------------

    /// Read-only access to the symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Interns a label name.
    pub fn label(&mut self, name: &str) -> LabelId {
        self.symbols.label(name)
    }

    /// Interns a relationship-type name.
    pub fn rel_type(&mut self, name: &str) -> RelTypeId {
        self.symbols.rel_type(name)
    }

    // ------------------------------------------------------------------
    // Creation and merging
    // ------------------------------------------------------------------

    /// Creates a new node with the given label names and properties.
    pub fn create_node<S: AsRef<str>>(&mut self, labels: &[S], props: Props) -> NodeId {
        if self.recorder.is_some() {
            let op = GraphOp::CreateNode {
                id: NodeId(self.nodes.len() as u64),
                labels: labels.iter().map(|l| l.as_ref().to_string()).collect(),
                props: props.clone(),
            };
            self.record(|| op);
        }
        let label_ids: Vec<LabelId> = labels
            .iter()
            .map(|l| self.symbols.label(l.as_ref()))
            .collect();
        self.create_node_with_ids(label_ids, props)
    }

    /// Raw node insertion with pre-interned labels (shared by
    /// [`Graph::create_node`] and the merge-create path; never records).
    fn create_node_with_ids(&mut self, label_ids: Vec<LabelId>, props: Props) -> NodeId {
        self.epoch += 1;
        let id = NodeId(self.nodes.len() as u64);
        for l in &label_ids {
            self.label_index.entry(*l).or_default().insert(id);
        }
        self.nodes.push(Some(Node {
            id,
            labels: label_ids,
            props,
            out_rels: Vec::new(),
            in_rels: Vec::new(),
        }));
        self.typed_adj.push(TypedAdj::default());
        id
    }

    /// Gets or creates the node identified by `(label, key, key_value)`,
    /// merging `extra_props` into it (overwriting existing keys). This is
    /// the IYP fusion primitive: callers pass *canonicalised* key values.
    pub fn merge_node(
        &mut self,
        label: &str,
        key: &str,
        key_value: impl Into<KeyValue>,
        extra_props: Props,
    ) -> NodeId {
        let label_id = self.symbols.label(label);
        let key_id = self.symbols.prop_key(key);
        let kv: KeyValue = key_value.into();
        let existing = self
            .key_index
            .get(&(label_id, key_id))
            .and_then(|m| m.get(&kv))
            .copied();
        if self.recorder.is_some() {
            let op = GraphOp::MergeNode {
                label: label.to_string(),
                key: key.to_string(),
                key_value: kv.clone(),
                props: extra_props.clone(),
                node: existing.unwrap_or(NodeId(self.nodes.len() as u64)),
                created: existing.is_none(),
            };
            self.record(|| op);
        }
        self.merge_resolved(label_id, key_id, key, kv, extra_props, existing)
    }

    /// Applies a merge whose resolution is already known: the shared
    /// tail of live merges (resolution = an index probe) and replayed
    /// merges (resolution = what the log recorded).
    fn merge_resolved(
        &mut self,
        label_id: LabelId,
        key_id: PropKeyId,
        key: &str,
        kv: KeyValue,
        extra_props: Props,
        existing: Option<NodeId>,
    ) -> NodeId {
        if let Some(existing) = existing {
            self.epoch += 1; // re-merge mutates props
            let node = self.nodes[existing.0 as usize]
                .as_mut()
                .expect("merge target must be live");
            for (k, v) in extra_props {
                node.props.insert(k, v);
            }
            return existing;
        }
        let mut props = extra_props;
        props.insert(key.to_string(), kv.to_value());
        let id = self.create_node_with_ids(vec![label_id], props);
        self.key_index
            .entry((label_id, key_id))
            .or_default()
            .insert(kv, id);
        id
    }

    /// Looks up a node by its merge key without creating it.
    pub fn lookup(&self, label: &str, key: &str, key_value: impl Into<KeyValue>) -> Option<NodeId> {
        let label_id = self.symbols.get_label(label)?;
        let key_id = self.symbols.get_prop_key(key)?;
        self.key_index
            .get(&(label_id, key_id))?
            .get(&key_value.into())
            .copied()
    }

    /// Adds an extra label to an existing node (e.g. the refinement stage
    /// marking a `Prefix` as also being a `BGPPrefix`).
    pub fn add_label(&mut self, node: NodeId, label: &str) -> Result<(), GraphError> {
        let label_id = self.symbols.label(label);
        let n = self
            .nodes
            .get_mut(node.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(GraphError::NodeNotFound(node))?;
        if !n.labels.contains(&label_id) {
            n.labels.push(label_id);
            self.label_index.entry(label_id).or_default().insert(node);
        }
        self.epoch += 1;
        self.record(|| GraphOp::AddLabel {
            node,
            label: label.to_string(),
        });
        Ok(())
    }

    /// Sets a property on a node.
    pub fn set_node_prop(
        &mut self,
        node: NodeId,
        key: &str,
        value: Value,
    ) -> Result<(), GraphError> {
        if self.node(node).is_none() {
            return Err(GraphError::NodeNotFound(node));
        }
        if self.recorder.is_some() {
            let op = GraphOp::SetNodeProp {
                node,
                key: key.to_string(),
                value: value.clone(),
            };
            self.record(|| op);
        }
        self.epoch += 1;
        self.nodes[node.0 as usize]
            .as_mut()
            .expect("checked above")
            .props
            .insert(key.to_string(), value);
        Ok(())
    }

    /// Creates a relationship of the named type between two nodes.
    pub fn create_rel(
        &mut self,
        src: NodeId,
        rel_type: &str,
        dst: NodeId,
        props: Props,
    ) -> Result<RelId, GraphError> {
        if self.node(src).is_none() {
            return Err(GraphError::NodeNotFound(src));
        }
        if self.node(dst).is_none() {
            return Err(GraphError::NodeNotFound(dst));
        }
        if self.recorder.is_some() {
            let op = GraphOp::CreateRel {
                id: RelId(self.rels.len() as u64),
                src,
                rel_type: rel_type.to_string(),
                dst,
                props: props.clone(),
            };
            self.record(|| op);
        }
        self.epoch += 1;
        let type_id = self.symbols.rel_type(rel_type);
        let id = RelId(self.rels.len() as u64);
        self.rels.push(Some(Rel {
            id,
            rel_type: type_id,
            src,
            dst,
            props,
        }));
        self.nodes[src.0 as usize]
            .as_mut()
            .expect("checked above")
            .out_rels
            .push(id);
        self.nodes[dst.0 as usize]
            .as_mut()
            .expect("checked above")
            .in_rels
            .push(id);
        typed_push(&mut self.typed_adj[src.0 as usize].out, type_id, id);
        typed_push(&mut self.typed_adj[dst.0 as usize].inc, type_id, id);
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Deletes a relationship.
    pub fn delete_rel(&mut self, rel: RelId) -> Result<(), GraphError> {
        if self.rel(rel).is_none() {
            return Err(GraphError::RelNotFound(rel));
        }
        self.record(|| GraphOp::DeleteRel { rel });
        self.epoch += 1;
        let r = self
            .rels
            .get_mut(rel.0 as usize)
            .and_then(Option::take)
            .expect("checked above");
        if let Some(Some(n)) = self.nodes.get_mut(r.src.0 as usize) {
            n.out_rels.retain(|x| *x != rel);
            typed_remove(&mut self.typed_adj[r.src.0 as usize].out, r.rel_type, rel);
        }
        if let Some(Some(n)) = self.nodes.get_mut(r.dst.0 as usize) {
            n.in_rels.retain(|x| *x != rel);
            typed_remove(&mut self.typed_adj[r.dst.0 as usize].inc, r.rel_type, rel);
        }
        self.deleted_rels += 1;
        Ok(())
    }

    /// Detach-deletes a node: removes all its relationships, then the
    /// node itself, and cleans the indexes.
    ///
    /// Records a single [`GraphOp::DeleteNode`]: the relationship
    /// cascade is deterministic, so replay re-derives it.
    pub fn delete_node(&mut self, node: NodeId) -> Result<(), GraphError> {
        if self.node(node).is_none() {
            return Err(GraphError::NodeNotFound(node));
        }
        self.record(|| GraphOp::DeleteNode { node });
        // Suppress recording for the cascade below — the one op covers it.
        let saved = self.recorder.take();
        let result = self.delete_node_detach(node);
        self.recorder = saved;
        result
    }

    fn delete_node_detach(&mut self, node: NodeId) -> Result<(), GraphError> {
        let n = self
            .nodes
            .get(node.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(GraphError::NodeNotFound(node))?;
        let rels: Vec<RelId> = n.out_rels.iter().chain(n.in_rels.iter()).copied().collect();
        for r in rels {
            // A self-loop appears in both lists; the second delete is a no-op.
            let _ = self.delete_rel(r);
        }
        self.epoch += 1;
        let n = self.nodes[node.0 as usize].take().expect("checked above");
        self.typed_adj[node.0 as usize] = TypedAdj::default();
        for l in &n.labels {
            if let Some(set) = self.label_index.get_mut(l) {
                set.remove(&node);
            }
        }
        // Drop any key-index entries pointing at this node.
        for idx in self.key_index.values_mut() {
            idx.retain(|_, v| *v != node);
        }
        self.deleted_nodes += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Op recording and replay
    // ------------------------------------------------------------------

    fn record(&mut self, op: impl FnOnce() -> GraphOp) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(op());
        }
    }

    /// Starts capturing the effect of every subsequent mutation as a
    /// [`GraphOp`]. Ops record *outcomes* (assigned IDs, merge
    /// resolutions), so [`Graph::apply`]ing them to a copy of the
    /// pre-recording graph reproduces identical state.
    ///
    /// Any previously recorded but untaken ops are discarded.
    pub fn begin_recording(&mut self) {
        self.recorder = Some(Vec::new());
    }

    /// Whether a recording started by [`Graph::begin_recording`] is live.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Stops recording and returns the captured ops (empty if recording
    /// was never started).
    pub fn take_recording(&mut self) -> Vec<GraphOp> {
        self.recorder.take().unwrap_or_default()
    }

    /// Applies a recorded [`GraphOp`] — the replay half of the journal.
    ///
    /// Dispatches into the same mutation tails used by live writes, and
    /// verifies that IDs assigned during replay match the IDs the op
    /// recorded; a mismatch means the op stream does not correspond to
    /// this base graph and yields [`GraphError::Replay`].
    pub fn apply(&mut self, op: &GraphOp) -> Result<(), GraphError> {
        // Never re-record a replayed op.
        let saved = self.recorder.take();
        let result = self.apply_inner(op);
        self.recorder = saved;
        result
    }

    fn apply_inner(&mut self, op: &GraphOp) -> Result<(), GraphError> {
        match op {
            GraphOp::CreateNode { id, labels, props } => {
                let next = NodeId(self.nodes.len() as u64);
                if *id != next {
                    return Err(GraphError::Replay(format!(
                        "create_node expected id {} but store would assign {}",
                        id.0, next.0
                    )));
                }
                let label_ids: Vec<LabelId> =
                    labels.iter().map(|l| self.symbols.label(l)).collect();
                self.create_node_with_ids(label_ids, props.clone());
                Ok(())
            }
            GraphOp::MergeNode {
                label,
                key,
                key_value,
                props,
                node,
                created,
            } => {
                let label_id = self.symbols.label(label);
                let key_id = self.symbols.prop_key(key);
                if *created {
                    let next = NodeId(self.nodes.len() as u64);
                    if *node != next {
                        return Err(GraphError::Replay(format!(
                            "merge_node expected id {} but store would assign {}",
                            node.0, next.0
                        )));
                    }
                    self.merge_resolved(
                        label_id,
                        key_id,
                        key,
                        key_value.clone(),
                        props.clone(),
                        None,
                    );
                } else {
                    if self.node(*node).is_none() {
                        return Err(GraphError::Replay(format!(
                            "merge_node resolved to node {} which does not exist",
                            node.0
                        )));
                    }
                    self.merge_resolved(
                        label_id,
                        key_id,
                        key,
                        key_value.clone(),
                        props.clone(),
                        Some(*node),
                    );
                }
                Ok(())
            }
            GraphOp::AddLabel { node, label } => self.add_label(*node, label),
            GraphOp::SetNodeProp { node, key, value } => {
                self.set_node_prop(*node, key, value.clone())
            }
            GraphOp::SetRelProp { rel, key, value } => self.set_rel_prop(*rel, key, value.clone()),
            GraphOp::CreateRel {
                id,
                src,
                rel_type,
                dst,
                props,
            } => {
                let next = RelId(self.rels.len() as u64);
                if *id != next {
                    return Err(GraphError::Replay(format!(
                        "create_rel expected id {} but store would assign {}",
                        id.0, next.0
                    )));
                }
                self.create_rel(*src, rel_type, *dst, props.clone())?;
                Ok(())
            }
            GraphOp::DeleteRel { rel } => self.delete_rel(*rel),
            GraphOp::DeleteNode { node } => self.delete_node(*node),
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Fetches a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Fetches a relationship.
    pub fn rel(&self, id: RelId) -> Option<&Rel> {
        self.rels.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Sets a property on a relationship.
    pub fn set_rel_prop(&mut self, rel: RelId, key: &str, value: Value) -> Result<(), GraphError> {
        if self.rel(rel).is_none() {
            return Err(GraphError::RelNotFound(rel));
        }
        if self.recorder.is_some() {
            let op = GraphOp::SetRelProp {
                rel,
                key: key.to_string(),
                value: value.clone(),
            };
            self.record(|| op);
        }
        self.epoch += 1;
        self.rels[rel.0 as usize]
            .as_mut()
            .expect("checked above")
            .props
            .insert(key.to_string(), value);
        Ok(())
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.deleted_nodes as usize
    }

    /// Number of live relationships.
    pub fn rel_count(&self) -> usize {
        self.rels.len() - self.deleted_rels as usize
    }

    /// Iterates all live nodes.
    pub fn all_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter_map(Option::as_ref)
    }

    /// Iterates all live relationships.
    pub fn all_rels(&self) -> impl Iterator<Item = &Rel> {
        self.rels.iter().filter_map(Option::as_ref)
    }

    /// Node ids carrying the given label, in id order. Returns an empty
    /// iterator for unknown labels.
    pub fn nodes_with_label<'a>(&'a self, label: &str) -> Box<dyn Iterator<Item = NodeId> + 'a> {
        match self
            .symbols
            .get_label(label)
            .and_then(|l| self.label_index.get(&l))
        {
            Some(set) => Box::new(set.iter().copied()),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Number of nodes carrying the given label.
    pub fn label_count(&self, label: &str) -> usize {
        self.symbols
            .get_label(label)
            .and_then(|l| self.label_index.get(&l))
            .map_or(0, BTreeSet::len)
    }

    /// Relationships touching `node`, filtered by direction and
    /// (optionally) type.
    ///
    /// With a type filter this reads the per-type adjacency lists, so it
    /// is O(degree-of-type) rather than a scan of the whole adjacency.
    /// Iteration order is identical either way: rel ids in creation
    /// order, outgoing before incoming.
    pub fn rels_of<'a>(
        &'a self,
        node: NodeId,
        dir: Direction,
        rel_type: Option<RelTypeId>,
    ) -> impl Iterator<Item = &'a Rel> + 'a {
        let (all_out, all_inc): (&[RelId], &[RelId]) = match (self.node(node), rel_type) {
            (None, _) => (&[][..], &[][..]),
            (Some(n), None) => (&n.out_rels, &n.in_rels),
            (Some(_), Some(t)) => {
                let adj = &self.typed_adj[node.0 as usize];
                (typed_get(&adj.out, t), typed_get(&adj.inc, t))
            }
        };
        let (out, inc): (&[RelId], &[RelId]) = match dir {
            Direction::Outgoing => (all_out, &[][..]),
            Direction::Incoming => (&[][..], all_inc),
            Direction::Both => (all_out, all_inc),
        };
        // Under Direction::Both a self-loop appears in both lists; skip it
        // on the incoming side so it is yielded exactly once.
        let skip_self_loops_in = dir == Direction::Both;
        out.iter()
            .map(|r| (*r, false))
            .chain(inc.iter().map(|r| (*r, true)))
            .filter_map(move |(r, from_in)| self.rel(r).map(|rel| (rel, from_in)))
            .filter(move |(rel, from_in)| !(skip_self_loops_in && *from_in && rel.src == rel.dst))
            .map(|(rel, _)| rel)
    }

    /// Neighbouring node ids via relationships of the given direction and
    /// optional type. May contain duplicates if parallel edges exist.
    pub fn neighbors<'a>(
        &'a self,
        node: NodeId,
        dir: Direction,
        rel_type: Option<RelTypeId>,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.rels_of(node, dir, rel_type)
            .map(move |r| r.other(node))
    }

    /// Internal: raw access for snapshotting.
    pub(crate) fn parts(&self) -> (&SymbolTable, &[Option<Node>], &[Option<Rel>]) {
        (&self.symbols, &self.nodes, &self.rels)
    }

    /// Internal: reconstructs a graph from snapshot parts, rebuilding all
    /// indexes.
    pub(crate) fn from_parts(
        mut symbols: SymbolTable,
        nodes: Vec<Option<Node>>,
        rels: Vec<Option<Rel>>,
    ) -> Self {
        symbols.rebuild_after_load();
        let mut g = Graph {
            symbols,
            nodes,
            rels,
            label_index: HashMap::new(),
            key_index: HashMap::new(),
            typed_adj: Vec::new(),
            deleted_nodes: 0,
            deleted_rels: 0,
            recorder: None,
            // A reload is a different store instance: fresh identity,
            // epoch restarts (the fresh graph_id keeps old keys dead).
            graph_id: next_graph_id(),
            epoch: 0,
        };
        g.deleted_nodes = g.nodes.iter().filter(|n| n.is_none()).count() as u64;
        g.deleted_rels = g.rels.iter().filter(|r| r.is_none()).count() as u64;
        // Rebuild label index.
        for n in g.nodes.iter().filter_map(Option::as_ref) {
            for l in &n.labels {
                g.label_index.entry(*l).or_default().insert(n.id);
            }
        }
        // Rebuild typed adjacency: rels in id order reproduces the same
        // per-type list order live writes maintain.
        g.typed_adj = vec![TypedAdj::default(); g.nodes.len()];
        for r in g.rels.iter().filter_map(Option::as_ref) {
            typed_push(&mut g.typed_adj[r.src.0 as usize].out, r.rel_type, r.id);
            typed_push(&mut g.typed_adj[r.dst.0 as usize].inc, r.rel_type, r.id);
        }
        // Rebuild the key index for the conventional identity keys: for
        // every (label, prop) pair where a property is a valid key type,
        // index the *first* node seen (mirrors merge semantics).
        let mut key_index: HashMap<(LabelId, PropKeyId), HashMap<KeyValue, NodeId>> =
            HashMap::new();
        let prop_keys: Vec<(String, PropKeyId)> = {
            let mut v = Vec::new();
            for n in g.nodes.iter().filter_map(Option::as_ref) {
                for k in n.props.keys() {
                    if !v.iter().any(|(name, _)| name == k) {
                        v.push((k.clone(), PropKeyId(0)));
                    }
                }
            }
            v
        };
        let prop_keys: Vec<(String, PropKeyId)> = prop_keys
            .into_iter()
            .map(|(name, _)| {
                let id = g.symbols.prop_key(&name);
                (name, id)
            })
            .collect();
        for n in g.nodes.iter().filter_map(Option::as_ref) {
            for l in &n.labels {
                for (key_name, key_id) in &prop_keys {
                    if let Some(v) = n.props.get(key_name) {
                        if let Some(kv) = KeyValue::from_value(v) {
                            key_index
                                .entry((*l, *key_id))
                                .or_default()
                                .entry(kv)
                                .or_insert(n.id);
                        }
                    }
                }
            }
        }
        g.key_index = key_index;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::props;

    #[test]
    fn merge_deduplicates_nodes() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, Props::new());
        let b = g.merge_node("AS", "asn", 2497u32, props([("name", "IIJ".into())]));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        // Props merged on re-merge.
        assert_eq!(
            g.node(a).unwrap().prop("name").unwrap().as_str(),
            Some("IIJ")
        );
        // Key prop was materialised.
        assert_eq!(g.node(a).unwrap().prop("asn").unwrap().as_int(), Some(2497));
    }

    #[test]
    fn merge_distinguishes_labels_and_keys() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, Props::new());
        let b = g.merge_node("AS", "asn", 2500u32, Props::new());
        let c = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn lookup_without_create() {
        let mut g = Graph::new();
        assert!(g.lookup("AS", "asn", 2497u32).is_none());
        let a = g.merge_node("AS", "asn", 2497u32, Props::new());
        assert_eq!(g.lookup("AS", "asn", 2497u32), Some(a));
        assert!(g.lookup("AS", "asn", 9999u32).is_none());
    }

    #[test]
    fn parallel_rels_are_kept() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        let p = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        let r1 = g
            .create_rel(
                a,
                "ORIGINATE",
                p,
                props([("reference_name", "bgpkit.pfx2as".into())]),
            )
            .unwrap();
        let r2 = g
            .create_rel(
                a,
                "ORIGINATE",
                p,
                props([("reference_name", "ihr.rov".into())]),
            )
            .unwrap();
        assert_ne!(r1, r2);
        assert_eq!(g.rel_count(), 2);
        let t = g.symbols().get_rel_type("ORIGINATE");
        assert_eq!(g.rels_of(a, Direction::Outgoing, t).count(), 2);
        assert_eq!(g.rels_of(p, Direction::Incoming, t).count(), 2);
    }

    #[test]
    fn direction_filters() {
        let mut g = Graph::new();
        let a = g.create_node(&["X"], Props::new());
        let b = g.create_node(&["X"], Props::new());
        g.create_rel(a, "R", b, Props::new()).unwrap();
        assert_eq!(g.rels_of(a, Direction::Outgoing, None).count(), 1);
        assert_eq!(g.rels_of(a, Direction::Incoming, None).count(), 0);
        assert_eq!(g.rels_of(a, Direction::Both, None).count(), 1);
        assert_eq!(g.rels_of(b, Direction::Incoming, None).count(), 1);
        assert_eq!(g.neighbors(a, Direction::Both, None).next(), Some(b));
    }

    #[test]
    fn type_filter() {
        let mut g = Graph::new();
        let a = g.create_node(&["X"], Props::new());
        let b = g.create_node(&["X"], Props::new());
        g.create_rel(a, "R1", b, Props::new()).unwrap();
        g.create_rel(a, "R2", b, Props::new()).unwrap();
        let t1 = g.symbols().get_rel_type("R1");
        assert_eq!(g.rels_of(a, Direction::Both, t1).count(), 1);
        assert_eq!(g.rels_of(a, Direction::Both, None).count(), 2);
    }

    #[test]
    fn label_scan_is_ordered_and_complete() {
        let mut g = Graph::new();
        let mut ids = Vec::new();
        for i in 0..10u32 {
            ids.push(g.merge_node("AS", "asn", i, Props::new()));
        }
        g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        let scanned: Vec<NodeId> = g.nodes_with_label("AS").collect();
        assert_eq!(scanned, ids);
        assert_eq!(g.label_count("AS"), 10);
        assert_eq!(g.label_count("Prefix"), 1);
        assert_eq!(g.label_count("Nope"), 0);
    }

    #[test]
    fn delete_rel_updates_adjacency() {
        let mut g = Graph::new();
        let a = g.create_node(&["X"], Props::new());
        let b = g.create_node(&["X"], Props::new());
        let r = g.create_rel(a, "R", b, Props::new()).unwrap();
        g.delete_rel(r).unwrap();
        assert_eq!(g.rel_count(), 0);
        assert_eq!(g.rels_of(a, Direction::Both, None).count(), 0);
        assert_eq!(g.rels_of(b, Direction::Both, None).count(), 0);
        assert!(g.delete_rel(r).is_err());
    }

    #[test]
    fn detach_delete_node() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        let b = g.merge_node("AS", "asn", 2u32, Props::new());
        g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        g.delete_node(a).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.rel_count(), 0);
        assert!(g.node(a).is_none());
        assert!(g.lookup("AS", "asn", 1u32).is_none());
        // b unaffected except adjacency cleaned.
        assert_eq!(g.rels_of(b, Direction::Both, None).count(), 0);
        // Merging the key again creates a fresh node.
        let a2 = g.merge_node("AS", "asn", 1u32, Props::new());
        assert_ne!(a, a2);
    }

    #[test]
    fn add_label_is_idempotent() {
        let mut g = Graph::new();
        let a = g.create_node(&["AS"], Props::new());
        g.add_label(a, "Tier1").unwrap();
        g.add_label(a, "Tier1").unwrap();
        assert_eq!(g.node(a).unwrap().labels.len(), 2);
        assert_eq!(g.nodes_with_label("Tier1").count(), 1);
    }

    #[test]
    fn self_loop_counted_once_in_both() {
        let mut g = Graph::new();
        let a = g.create_node(&["X"], Props::new());
        g.create_rel(a, "R", a, Props::new()).unwrap();
        assert_eq!(g.rels_of(a, Direction::Both, None).count(), 1);
        assert_eq!(g.rels_of(a, Direction::Outgoing, None).count(), 1);
        assert_eq!(g.rels_of(a, Direction::Incoming, None).count(), 1);
    }

    #[test]
    fn rel_to_missing_node_fails() {
        let mut g = Graph::new();
        let a = g.create_node(&["X"], Props::new());
        assert!(g.create_rel(a, "R", NodeId(99), Props::new()).is_err());
        assert!(g.create_rel(NodeId(99), "R", a, Props::new()).is_err());
    }

    #[test]
    fn recording_and_replay_reproduce_identical_graph() {
        let mut g = Graph::new();
        g.begin_recording();
        let a = g.merge_node("AS", "asn", 2497u32, Props::new());
        let b = g.merge_node("AS", "asn", 2500u32, props([("name", "X".into())]));
        g.merge_node("AS", "asn", 2497u32, props([("name", "IIJ".into())]));
        let c = g.create_node(&["Tag"], props([("label", "tier1".into())]));
        let r = g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        g.create_rel(a, "CATEGORIZED", c, Props::new()).unwrap();
        g.set_node_prop(a, "af", Value::Int(4)).unwrap();
        g.set_rel_prop(r, "weight", Value::Float(0.5)).unwrap();
        g.add_label(a, "Transit").unwrap();
        g.delete_rel(r).unwrap();
        g.delete_node(b).unwrap();
        let ops = g.take_recording();
        assert!(!g.is_recording());

        let mut replica = Graph::new();
        for op in &ops {
            replica.apply(op).unwrap();
        }
        assert_eq!(
            crate::snapshot::to_binary(&g),
            crate::snapshot::to_binary(&replica)
        );
    }

    #[test]
    fn delete_node_records_single_op() {
        let mut g = Graph::new();
        let a = g.create_node(&["X"], Props::new());
        let b = g.create_node(&["X"], Props::new());
        g.create_rel(a, "R", b, Props::new()).unwrap();
        g.begin_recording();
        g.delete_node(a).unwrap();
        let ops = g.take_recording();
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], GraphOp::DeleteNode { node } if node == a));
    }

    #[test]
    fn apply_rejects_id_mismatch() {
        let mut g = Graph::new();
        g.create_node(&["X"], Props::new());
        let op = GraphOp::CreateNode {
            id: NodeId(0), // store would assign 1
            labels: vec!["X".into()],
            props: Props::new(),
        };
        assert!(matches!(g.apply(&op), Err(GraphError::Replay(_))));
    }

    #[test]
    fn typed_adjacency_matches_filtered_scan() {
        // The typed lists must agree with a brute-force type filter over
        // the untyped adjacency — same rels, same order — through
        // creation, deletion, and self-loops.
        let mut g = Graph::new();
        let hub = g.create_node(&["Hub"], Props::new());
        let mut spokes = Vec::new();
        for i in 0..8u32 {
            spokes.push(g.merge_node("Spoke", "n", i, Props::new()));
        }
        let mut created = Vec::new();
        for (i, s) in spokes.iter().enumerate() {
            let t = ["R1", "R2", "R3"][i % 3];
            created.push(g.create_rel(hub, t, *s, Props::new()).unwrap());
            created.push(g.create_rel(*s, t, hub, Props::new()).unwrap());
        }
        g.create_rel(hub, "R1", hub, Props::new()).unwrap();
        g.delete_rel(created[2]).unwrap();
        g.delete_rel(created[5]).unwrap();
        for dir in [Direction::Outgoing, Direction::Incoming, Direction::Both] {
            for t in ["R1", "R2", "R3"] {
                let tid = g.symbols().get_rel_type(t).unwrap();
                let typed: Vec<RelId> = g.rels_of(hub, dir, Some(tid)).map(|r| r.id).collect();
                let filtered: Vec<RelId> = g
                    .rels_of(hub, dir, None)
                    .filter(|r| r.rel_type == tid)
                    .map(|r| r.id)
                    .collect();
                assert_eq!(typed, filtered, "{dir:?} {t}");
            }
        }
        // Unknown type: empty, not a scan fallback.
        assert!(g.rels_of(hub, Direction::Both, None).count() > 0);
        let mut g2 = Graph::new();
        g2.rel_type("Ghost");
        assert_eq!(g2.rels_of(hub, Direction::Both, None).count(), 0);
    }

    #[test]
    fn typed_adjacency_survives_snapshot_reload() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        let b = g.merge_node("AS", "asn", 2u32, Props::new());
        g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        g.create_rel(a, "DEPENDS_ON", b, Props::new()).unwrap();
        g.create_rel(b, "PEERS_WITH", a, Props::new()).unwrap();
        let bytes = crate::snapshot::to_binary(&g);
        let g2 = crate::snapshot::from_binary(&bytes).unwrap();
        let t = g2.symbols().get_rel_type("PEERS_WITH").unwrap();
        let ids: Vec<RelId> = g2
            .rels_of(a, Direction::Both, Some(t))
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, vec![RelId(0), RelId(2)]);
        assert_eq!(g2.rels_of(a, Direction::Outgoing, Some(t)).count(), 1);
    }

    #[test]
    fn every_mutation_bumps_the_epoch() {
        let mut g = Graph::new();
        assert_eq!(g.epoch(), 0);
        let mut last = g.epoch();
        let mut expect_bump = |g: &Graph, what: &str| {
            assert!(g.epoch() > last, "{what} did not bump the epoch");
            last = g.epoch();
        };
        let a = g.create_node(&["X"], Props::new());
        expect_bump(&g, "create_node");
        let b = g.merge_node("AS", "asn", 1u32, Props::new());
        expect_bump(&g, "merge_node (create)");
        g.merge_node("AS", "asn", 1u32, props([("name", "IIJ".into())]));
        expect_bump(&g, "merge_node (re-merge)");
        g.add_label(a, "Tag").unwrap();
        expect_bump(&g, "add_label");
        g.set_node_prop(a, "k", Value::Int(1)).unwrap();
        expect_bump(&g, "set_node_prop");
        let r = g.create_rel(a, "R", b, Props::new()).unwrap();
        expect_bump(&g, "create_rel");
        g.set_rel_prop(r, "w", Value::Int(2)).unwrap();
        expect_bump(&g, "set_rel_prop");
        g.delete_rel(r).unwrap();
        expect_bump(&g, "delete_rel");
        g.delete_node(a).unwrap();
        expect_bump(&g, "delete_node");
        g.bump_epoch();
        expect_bump(&g, "bump_epoch");
        // Reads leave it alone.
        let before = g.epoch();
        let _ = g.node_count();
        let _ = g.lookup("AS", "asn", 1u32);
        assert_eq!(g.epoch(), before);
    }

    #[test]
    fn replay_bumps_the_epoch_too() {
        let mut g = Graph::new();
        g.begin_recording();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        g.set_node_prop(a, "k", Value::Int(1)).unwrap();
        let ops = g.take_recording();

        let mut replica = Graph::new();
        assert_eq!(replica.epoch(), 0);
        for op in &ops {
            let before = replica.epoch();
            replica.apply(op).unwrap();
            assert!(replica.epoch() > before, "replayed {op:?} did not bump");
        }
    }

    #[test]
    fn graph_ids_are_process_unique() {
        let g1 = Graph::new();
        let g2 = Graph::new();
        assert_ne!(g1.graph_id(), g2.graph_id());
        // A snapshot reload is a new instance with a new identity.
        let bytes = crate::snapshot::to_binary(&g1);
        let g3 = crate::snapshot::from_binary(&bytes).unwrap();
        assert_ne!(g3.graph_id(), g1.graph_id());
        assert_eq!(g3.epoch(), 0);
    }

    #[test]
    fn set_props() {
        let mut g = Graph::new();
        let a = g.create_node(&["X"], Props::new());
        let b = g.create_node(&["X"], Props::new());
        let r = g.create_rel(a, "R", b, Props::new()).unwrap();
        g.set_node_prop(a, "af", Value::Int(4)).unwrap();
        g.set_rel_prop(r, "weight", Value::Float(0.5)).unwrap();
        assert_eq!(g.node(a).unwrap().prop("af").unwrap().as_int(), Some(4));
        assert_eq!(
            g.rel(r).unwrap().prop("weight").unwrap().as_float(),
            Some(0.5)
        );
    }
}
