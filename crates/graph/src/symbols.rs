//! String interning for labels and relationship types.
//!
//! A knowledge graph touches the same small vocabulary (24 entity labels,
//! 24 relationship types, a few dozen property keys) millions of times, so
//! labels and relationship types are interned to small integers once and
//! compared as integers everywhere else.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interned node label (entity type), e.g. `AS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub u32);

/// Interned relationship type, e.g. `ORIGINATE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelTypeId(pub u32);

/// Interned property key, e.g. `asn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PropKeyId(pub u32);

/// A bidirectional string ↔ id table.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    ids: HashMap<String, u32>,
}

impl Interner {
    fn rebuild(&mut self) {
        self.ids = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(id) = self.ids.get(name) {
            return *id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// The symbol table for one graph: labels, relationship types, and
/// property keys each get their own namespace.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SymbolTable {
    labels: Interner,
    rel_types: Interner,
    prop_keys: Interner,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called after deserialisation to restore the reverse maps.
    pub fn rebuild_after_load(&mut self) {
        self.labels.rebuild();
        self.rel_types.rebuild();
        self.prop_keys.rebuild();
    }

    /// Interns (or fetches) a label.
    pub fn label(&mut self, name: &str) -> LabelId {
        LabelId(self.labels.intern(name))
    }

    /// Looks up a label without interning.
    pub fn get_label(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name).map(LabelId)
    }

    /// The textual name of a label.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.name(id.0)
    }

    /// Number of distinct labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Interns (or fetches) a relationship type.
    pub fn rel_type(&mut self, name: &str) -> RelTypeId {
        RelTypeId(self.rel_types.intern(name))
    }

    /// Looks up a relationship type without interning.
    pub fn get_rel_type(&self, name: &str) -> Option<RelTypeId> {
        self.rel_types.get(name).map(RelTypeId)
    }

    /// The textual name of a relationship type.
    pub fn rel_type_name(&self, id: RelTypeId) -> &str {
        self.rel_types.name(id.0)
    }

    /// Number of distinct relationship types.
    pub fn rel_type_count(&self) -> usize {
        self.rel_types.len()
    }

    /// Interns (or fetches) a property key.
    pub fn prop_key(&mut self, name: &str) -> PropKeyId {
        PropKeyId(self.prop_keys.intern(name))
    }

    /// Looks up a property key without interning.
    pub fn get_prop_key(&self, name: &str) -> Option<PropKeyId> {
        self.prop_keys.get(name).map(PropKeyId)
    }

    /// The textual name of a property key.
    pub fn prop_key_name(&self, id: PropKeyId) -> &str {
        self.prop_keys.name(id.0)
    }

    /// All label ids with their names.
    pub fn labels(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.labels
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u32), n.as_str()))
    }

    /// All relationship-type ids with their names.
    pub fn rel_types(&self) -> impl Iterator<Item = (RelTypeId, &str)> {
        self.rel_types
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (RelTypeId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = SymbolTable::new();
        let a1 = t.label("AS");
        let p1 = t.label("Prefix");
        let a2 = t.label("AS");
        assert_eq!(a1, a2);
        assert_ne!(a1, p1);
        assert_eq!(t.label_name(a1), "AS");
        assert_eq!(t.label_count(), 2);
    }

    #[test]
    fn namespaces_are_independent() {
        let mut t = SymbolTable::new();
        let l = t.label("NAME");
        let r = t.rel_type("NAME");
        let k = t.prop_key("NAME");
        assert_eq!(l.0, 0);
        assert_eq!(r.0, 0);
        assert_eq!(k.0, 0);
        assert_eq!(t.label_name(l), "NAME");
        assert_eq!(t.rel_type_name(r), "NAME");
        assert_eq!(t.prop_key_name(k), "NAME");
    }

    #[test]
    fn get_does_not_intern() {
        let t = SymbolTable::new();
        assert!(t.get_label("AS").is_none());
        assert!(t.get_rel_type("ORIGINATE").is_none());
    }

    #[test]
    fn serde_roundtrip_rebuilds_reverse_map() {
        let mut t = SymbolTable::new();
        t.label("AS");
        t.rel_type("ORIGINATE");
        let json = serde_json::to_string(&t).unwrap();
        let mut back: SymbolTable = serde_json::from_str(&json).unwrap();
        back.rebuild_after_load();
        assert_eq!(back.get_label("AS"), Some(LabelId(0)));
        assert_eq!(back.get_rel_type("ORIGINATE"), Some(RelTypeId(0)));
    }
}
