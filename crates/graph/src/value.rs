//! Property values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A property value stored on a node or relationship.
///
/// The variants mirror what the IYP datasets actually contain (the paper's
/// datasets are CSV/JSON): null, booleans, 64-bit integers, floats,
/// strings, and homogeneous-or-not lists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// List of values.
    List(Vec<Value>),
}

impl Value {
    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a list, if it is one.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Truthiness used by `WHERE` evaluation: `Null` and `false` are
    /// falsy, everything else (including `0` and `""`, following Cypher
    /// which only allows booleans here but we are permissive) is truthy.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Null | Value::Bool(false))
    }

    /// Cypher-style equality: `Null` compared to anything is "unknown",
    /// which we surface as `None`. Ints and floats compare numerically.
    pub fn cypher_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (a, b) => Some(loose_eq(a, b)),
        }
    }

    /// Total ordering used by `ORDER BY` and `DISTINCT`: Null < Bool <
    /// number < Str < List. Numbers compare numerically across Int/Float.
    pub fn order(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::List(_) => 4,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let x = a.as_float().unwrap();
                let y = b.as_float().unwrap();
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.order(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Structural equality with Int/Float numeric coercion.
fn loose_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| loose_eq(a, b))
        }
        (Value::Null, Value::Null) => true,
        _ => false,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        loose_eq(self, other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// A property map. BTreeMap keeps iteration deterministic, which matters
/// for reproducible snapshots and test output.
pub type Props = BTreeMap<String, Value>;

/// Builds a [`Props`] map from `(key, value)` pairs.
///
/// ```
/// use iyp_graph::{props, Value};
/// let p = props([("asn", Value::Int(2497)), ("name", "IIJ".into())]);
/// assert_eq!(p.get("asn"), Some(&Value::Int(2497)));
/// ```
pub fn props<const N: usize>(pairs: [(&str, Value); N]) -> Props {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

/// A hashable, totally-ordered subset of [`Value`] used for node-identity
/// keys in the unique index (`asn`, `ip`, `prefix`, names…). IYP node
/// keys are always strings or integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KeyValue {
    /// Integer key (e.g. `asn`).
    Int(i64),
    /// String key (e.g. `prefix`, `name`).
    Str(String),
}

impl KeyValue {
    /// Converts a general value into a key, if it has a key-able type.
    pub fn from_value(v: &Value) -> Option<KeyValue> {
        match v {
            Value::Int(i) => Some(KeyValue::Int(*i)),
            Value::Str(s) => Some(KeyValue::Str(s.clone())),
            _ => None,
        }
    }

    /// Converts back to a general [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            KeyValue::Int(i) => Value::Int(*i),
            KeyValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl From<i64> for KeyValue {
    fn from(i: i64) -> Self {
        KeyValue::Int(i)
    }
}
impl From<u32> for KeyValue {
    fn from(i: u32) -> Self {
        KeyValue::Int(i as i64)
    }
}
impl From<&str> for KeyValue {
    fn from(s: &str) -> Self {
        KeyValue::Str(s.to_string())
    }
}
impl From<String> for KeyValue {
    fn from(s: String) -> Self {
        KeyValue::Str(s)
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyValue::Int(i) => write!(f, "{i}"),
            KeyValue::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_equality_across_types() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn cypher_eq_null_is_unknown() {
        assert_eq!(Value::Null.cypher_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).cypher_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).cypher_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).cypher_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Null,
            Value::Int(5),
            Value::Bool(true),
            Value::Float(2.5),
            Value::List(vec![Value::Int(1)]),
            Value::Str("a".into()),
        ];
        vals.sort_by(|a, b| a.order(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::Str("a".into()));
        assert_eq!(vals[5], Value::Str("b".into()));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Int(0).is_truthy());
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::List(vec![Value::Int(1)]);
        assert_eq!(a.order(&b), Ordering::Less);
        assert_eq!(c.order(&a), Ordering::Less);
    }

    #[test]
    fn key_value_roundtrip() {
        let v = Value::Str("2001:db8::/32".into());
        let k = KeyValue::from_value(&v).unwrap();
        assert_eq!(k.to_value(), v);
        assert!(KeyValue::from_value(&Value::Float(1.0)).is_none());
        assert!(KeyValue::from_value(&Value::Null).is_none());
    }

    #[test]
    fn props_builder() {
        let p = props([("a", 1i64.into()), ("b", "x".into())]);
        assert_eq!(p.len(), 2);
        assert_eq!(p["b"].as_str(), Some("x"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_string(),
            "[1, a]"
        );
        assert_eq!(Value::Null.to_string(), "null");
    }
}
