//! API-surface tests: conversions, error rendering, display paths.

use iyp_graph::{props, Graph, GraphError, NodeId, Props, RelId, Value};

#[test]
fn value_from_conversions() {
    assert_eq!(Value::from("x"), Value::Str("x".into()));
    assert_eq!(Value::from(String::from("y")), Value::Str("y".into()));
    assert_eq!(Value::from(7i64), Value::Int(7));
    assert_eq!(Value::from(7i32), Value::Int(7));
    assert_eq!(Value::from(7u32), Value::Int(7));
    assert_eq!(Value::from(7usize), Value::Int(7));
    assert_eq!(Value::from(0.5f64), Value::Float(0.5));
    assert_eq!(Value::from(true), Value::Bool(true));
    assert_eq!(
        Value::from(vec![1i64, 2]),
        Value::List(vec![Value::Int(1), Value::Int(2)])
    );
    assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    assert_eq!(Value::from(None::<i64>), Value::Null);
}

#[test]
fn value_accessors_reject_wrong_kinds() {
    let v = Value::Str("s".into());
    assert_eq!(v.as_int(), None);
    assert_eq!(v.as_float(), None);
    assert_eq!(v.as_bool(), None);
    assert_eq!(v.as_list(), None);
    assert_eq!(v.as_str(), Some("s"));
    assert_eq!(Value::Int(3).as_float(), Some(3.0));
}

#[test]
fn error_messages_are_informative() {
    let e = GraphError::NodeNotFound(NodeId(42));
    assert!(e.to_string().contains("42"));
    let e = GraphError::RelNotFound(RelId(7));
    assert!(e.to_string().contains("7"));
    let e = GraphError::Snapshot("boom".into());
    assert!(e.to_string().contains("boom"));
    let e = GraphError::InvalidKeyType { key: "af".into() };
    assert!(e.to_string().contains("af"));
}

#[test]
fn stats_display_lists_datasets() {
    let mut g = Graph::new();
    let a = g.merge_node("AS", "asn", 1u32, Props::new());
    let p = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
    g.create_rel(a, "ORIGINATE", p, props([("reference_name", "x.y".into())]))
        .unwrap();
    let text = iyp_graph::GraphStats::compute(&g).to_string();
    assert!(text.contains("x.y"));
    assert!(text.contains("nodes: 2"));
}

#[test]
fn symbols_iteration_matches_usage() {
    let mut g = Graph::new();
    g.merge_node("AS", "asn", 1u32, Props::new());
    g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
    let labels: Vec<&str> = g.symbols().labels().map(|(_, n)| n).collect();
    assert_eq!(labels, vec!["AS", "Prefix"]);
    assert_eq!(g.symbols().label_count(), 2);
    assert_eq!(g.symbols().rel_type_count(), 0);
}

#[test]
fn key_value_display() {
    use iyp_graph::KeyValue;
    assert_eq!(KeyValue::from(42u32).to_string(), "42");
    assert_eq!(KeyValue::from("x").to_string(), "x");
    assert_eq!(KeyValue::from(String::from("y")).to_string(), "y");
    assert_eq!(KeyValue::from(-1i64).to_string(), "-1");
}

#[test]
fn merge_key_types_are_stable_across_int_widths() {
    let mut g = Graph::new();
    let a = g.merge_node("AS", "asn", 7u32, Props::new());
    let b = g.merge_node("AS", "asn", 7i64, Props::new());
    assert_eq!(a, b, "u32 and i64 keys must merge");
}
