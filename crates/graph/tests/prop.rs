//! Property-based tests: the graph store against a naive model.

use iyp_graph::{snapshot, Direction, Graph, KeyValue, NodeId, Props, Value};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Operations exercised against both the store and a naive model.
#[derive(Debug, Clone)]
enum Op {
    Merge { label: u8, key: u16 },
    Link { src: u16, dst: u16, rel_type: u8 },
    DeleteRel { idx: u16 },
    DeleteNode { idx: u16 },
    AddLabel { idx: u16, label: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u16..60).prop_map(|(label, key)| Op::Merge { label, key }),
        (0u16..80, 0u16..80, 0u8..3).prop_map(|(src, dst, rel_type)| Op::Link {
            src,
            dst,
            rel_type
        }),
        (0u16..40).prop_map(|idx| Op::DeleteRel { idx }),
        (0u16..40).prop_map(|idx| Op::DeleteNode { idx }),
        (0u16..80, 0u8..4).prop_map(|(idx, label)| Op::AddLabel { idx, label }),
    ]
}

fn label_name(l: u8) -> String {
    format!("L{l}")
}

fn type_name(t: u8) -> String {
    format!("T{t}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store agrees with a naive model under arbitrary op sequences.
    #[test]
    fn store_matches_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut g = Graph::new();
        // Model state.
        let mut model_nodes: HashMap<(u8, u16), NodeId> = HashMap::new();
        let mut model_labels: HashMap<NodeId, HashSet<String>> = HashMap::new();
        let mut model_rels: Vec<Option<(NodeId, NodeId, u8)>> = Vec::new();
        let mut created_nodes: Vec<NodeId> = Vec::new();
        let mut created_rels: Vec<iyp_graph::RelId> = Vec::new();
        let mut live_nodes: HashSet<NodeId> = HashSet::new();

        for op in &ops {
            match op {
                Op::Merge { label, key } => {
                    let id = g.merge_node(&label_name(*label), "k", *key as i64, Props::new());
                    match model_nodes.get(&(*label, *key)) {
                        Some(prev) if live_nodes.contains(prev) => {
                            prop_assert_eq!(id, *prev, "merge must hit existing node");
                        }
                        _ => {
                            model_nodes.insert((*label, *key), id);
                            model_labels.entry(id).or_default().insert(label_name(*label));
                            created_nodes.push(id);
                            live_nodes.insert(id);
                        }
                    }
                }
                Op::Link { src, dst, rel_type } => {
                    if created_nodes.is_empty() {
                        continue;
                    }
                    let s = created_nodes[*src as usize % created_nodes.len()];
                    let d = created_nodes[*dst as usize % created_nodes.len()];
                    let res = g.create_rel(s, &type_name(*rel_type), d, Props::new());
                    if live_nodes.contains(&s) && live_nodes.contains(&d) {
                        let id = res.expect("live endpoints must link");
                        created_rels.push(id);
                        model_rels.push(Some((s, d, *rel_type)));
                    } else {
                        prop_assert!(res.is_err(), "link to deleted node must fail");
                    }
                }
                Op::DeleteRel { idx } => {
                    if created_rels.is_empty() {
                        continue;
                    }
                    let i = *idx as usize % created_rels.len();
                    let id = created_rels[i];
                    let was_live = model_rels[i].is_some();
                    let res = g.delete_rel(id);
                    prop_assert_eq!(res.is_ok(), was_live);
                    model_rels[i] = None;
                }
                Op::DeleteNode { idx } => {
                    if created_nodes.is_empty() {
                        continue;
                    }
                    let id = created_nodes[*idx as usize % created_nodes.len()];
                    let was_live = live_nodes.contains(&id);
                    let res = g.delete_node(id);
                    prop_assert_eq!(res.is_ok(), was_live);
                    if was_live {
                        live_nodes.remove(&id);
                        // Detach: drop model rels touching it.
                        for slot in model_rels.iter_mut() {
                            if let Some((s, d, _)) = slot {
                                if *s == id || *d == id {
                                    *slot = None;
                                }
                            }
                        }
                    }
                }
                Op::AddLabel { idx, label } => {
                    if created_nodes.is_empty() {
                        continue;
                    }
                    let id = created_nodes[*idx as usize % created_nodes.len()];
                    let res = g.add_label(id, &label_name(*label));
                    prop_assert_eq!(res.is_ok(), live_nodes.contains(&id));
                    if res.is_ok() {
                        model_labels.entry(id).or_default().insert(label_name(*label));
                    }
                }
            }
        }

        // Final state agreement.
        prop_assert_eq!(g.node_count(), live_nodes.len());
        prop_assert_eq!(g.rel_count(), model_rels.iter().flatten().count());
        // Adjacency agrees per live node.
        for &n in &live_nodes {
            let expected_out =
                model_rels.iter().flatten().filter(|(s, _, _)| *s == n).count();
            let expected_in =
                model_rels.iter().flatten().filter(|(_, d, _)| *d == n).count();
            prop_assert_eq!(g.rels_of(n, Direction::Outgoing, None).count(), expected_out);
            prop_assert_eq!(g.rels_of(n, Direction::Incoming, None).count(), expected_in);
        }
        // Label index agrees.
        for l in 0..4u8 {
            let name = label_name(l);
            let expected: HashSet<NodeId> = live_nodes
                .iter()
                .filter(|n| model_labels.get(n).is_some_and(|s| s.contains(&name)))
                .copied()
                .collect();
            let got: HashSet<NodeId> = g.nodes_with_label(&name).collect();
            prop_assert_eq!(got, expected);
        }
    }

    /// Snapshots roundtrip arbitrary graphs in both formats.
    #[test]
    fn snapshot_roundtrips(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut g = Graph::new();
        let mut nodes = Vec::new();
        for op in &ops {
            match op {
                Op::Merge { label, key } => {
                    nodes.push(g.merge_node(&label_name(*label), "k", *key as i64, Props::new()));
                }
                Op::Link { src, dst, rel_type } if !nodes.is_empty() => {
                    let s = nodes[*src as usize % nodes.len()];
                    let d = nodes[*dst as usize % nodes.len()];
                    let _ = g.create_rel(s, &type_name(*rel_type), d, Props::new());
                }
                _ => {}
            }
        }
        let bin = snapshot::to_binary(&g);
        let from_bin = snapshot::from_binary(&bin).unwrap();
        prop_assert_eq!(g.node_count(), from_bin.node_count());
        prop_assert_eq!(g.rel_count(), from_bin.rel_count());
        let json = snapshot::to_json(&g).unwrap();
        let from_json = snapshot::from_json(&json).unwrap();
        prop_assert_eq!(g.node_count(), from_json.node_count());
        prop_assert_eq!(g.rel_count(), from_json.rel_count());
        // Merge keys survive.
        for n in g.all_nodes() {
            if let Some(k) = n.prop("k") {
                let label = g.symbols().label_name(n.labels[0]);
                let kv = KeyValue::from_value(k).unwrap();
                prop_assert!(from_bin.lookup(label, "k", kv).is_some());
            }
        }
    }

    /// Value ordering is a total order (antisymmetric + transitive on
    /// random triples).
    #[test]
    fn value_order_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.order(&a), Ordering::Equal);
        prop_assert_eq!(a.order(&b), b.order(&a).reverse());
        if a.order(&b) != Ordering::Greater && b.order(&c) != Ordering::Greater {
            prop_assert_ne!(a.order(&c), Ordering::Greater);
        }
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1000i32..1000).prop_map(|i| Value::Float(i as f64 / 7.0)),
        "[a-z]{0,6}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}
