//! Exhaustive snapshot round-trip coverage: every `Value` variant
//! (including nested lists and special floats), the empty graph, nodes
//! with no properties, and graphs containing delete tombstones must
//! survive binary AND json round-trips byte-identically — the
//! journal's checkpoints depend on it.

use iyp_graph::{props, snapshot, Graph, Props, Value};

/// One of each `Value` variant, plus the awkward corners of each.
fn every_value() -> Vec<(&'static str, Value)> {
    vec![
        ("null", Value::Null),
        ("bool_true", Value::Bool(true)),
        ("bool_false", Value::Bool(false)),
        ("int_zero", Value::Int(0)),
        ("int_min", Value::Int(i64::MIN)),
        ("int_max", Value::Int(i64::MAX)),
        ("float", Value::Float(2.5)),
        ("float_neg_zero", Value::Float(-0.0)),
        ("str_empty", Value::Str(String::new())),
        ("str_unicode", Value::Str("自治システム – ASN ✓".into())),
        ("list_empty", Value::List(vec![])),
        (
            "list_mixed",
            Value::List(vec![
                Value::Null,
                Value::Bool(false),
                Value::Int(-7),
                Value::Float(0.25),
                Value::Str("x".into()),
            ]),
        ),
        (
            "list_nested",
            Value::List(vec![Value::List(vec![Value::List(vec![Value::Int(1)])])]),
        ),
    ]
}

fn roundtrip(g: &Graph) -> (Graph, Graph) {
    let bin = snapshot::to_binary(g);
    let from_bin = snapshot::from_binary(&bin).expect("binary roundtrip");
    let json = snapshot::to_json(g).expect("json encode");
    let from_json = snapshot::from_json(&json).expect("json roundtrip");
    (from_bin, from_json)
}

fn assert_identical(g: &Graph, label: &str) {
    let (from_bin, from_json) = roundtrip(g);
    assert_eq!(
        snapshot::to_binary(g),
        snapshot::to_binary(&from_bin),
        "binary roundtrip not identical: {label}"
    );
    assert_eq!(
        snapshot::to_binary(g),
        snapshot::to_binary(&from_json),
        "json roundtrip not identical: {label}"
    );
}

#[test]
fn every_value_variant_survives_roundtrip() {
    let mut g = Graph::new();
    let n = g.create_node(&["Probe"], Props::new());
    for (key, value) in every_value() {
        g.set_node_prop(n, key, value).unwrap();
    }
    let m = g.create_node(&["Probe"], Props::new());
    let r = g.create_rel(n, "CHECKS", m, Props::new()).unwrap();
    for (key, value) in every_value() {
        g.set_rel_prop(r, key, value).unwrap();
    }
    assert_identical(&g, "every value variant");

    // Values actually come back, not just re-encode identically.
    let (from_bin, _) = roundtrip(&g);
    let node = from_bin.node(n).unwrap();
    assert_eq!(node.props.get("int_min"), Some(&Value::Int(i64::MIN)));
    assert_eq!(
        node.props.get("str_unicode").and_then(Value::as_str),
        Some("自治システム – ASN ✓")
    );
}

#[test]
fn non_finite_floats_survive_binary_roundtrip() {
    // JSON cannot represent Infinity/NaN, but the binary format (what
    // checkpoints use) stores raw f64 bits. NaN != NaN, so assert on
    // the classification rather than equality.
    let mut g = Graph::new();
    let n = g.create_node(
        &["N"],
        props([
            ("nan", Value::Float(f64::NAN)),
            ("inf", Value::Float(f64::INFINITY)),
            ("ninf", Value::Float(f64::NEG_INFINITY)),
        ]),
    );
    let back = snapshot::from_binary(&snapshot::to_binary(&g)).unwrap();
    let p = &back.node(n).unwrap().props;
    match p.get("nan") {
        Some(Value::Float(f)) => assert!(f.is_nan()),
        other => panic!("nan came back as {other:?}"),
    }
    assert_eq!(p.get("inf"), Some(&Value::Float(f64::INFINITY)));
    assert_eq!(p.get("ninf"), Some(&Value::Float(f64::NEG_INFINITY)));
}

#[test]
fn empty_graph_roundtrips() {
    assert_identical(&Graph::new(), "empty graph");
    let back = snapshot::from_binary(&snapshot::to_binary(&Graph::new())).unwrap();
    assert_eq!(back.node_count(), 0);
    assert_eq!(back.rel_count(), 0);
}

#[test]
fn empty_props_and_multi_label_nodes_roundtrip() {
    let mut g = Graph::new();
    let a = g.create_node(&["AS", "Leaf"], Props::new());
    let b = g.create_node::<&str>(&[], Props::new()); // label-less node
    g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
    assert_identical(&g, "empty props");
    let back = snapshot::from_binary(&snapshot::to_binary(&g)).unwrap();
    assert!(back.node(a).unwrap().props.is_empty());
    assert_eq!(back.node(b).unwrap().labels.len(), 0);
}

#[test]
fn tombstones_preserve_id_assignment_across_roundtrip() {
    // Deleted nodes/rels leave holes; a snapshot must preserve the ID
    // space so journal replay on top of it stays deterministic.
    let mut g = Graph::new();
    let a = g.merge_node("AS", "asn", 1u32, Props::new());
    let b = g.merge_node("AS", "asn", 2u32, Props::new());
    let c = g.merge_node("AS", "asn", 3u32, Props::new());
    let r1 = g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
    let _r2 = g.create_rel(b, "PEERS_WITH", c, Props::new()).unwrap();
    g.delete_rel(r1).unwrap();
    g.delete_node(b).unwrap();
    assert_identical(&g, "tombstones");

    let mut back = snapshot::from_binary(&snapshot::to_binary(&g)).unwrap();
    // The next IDs assigned after restore continue where the original
    // graph would have continued — not in the holes.
    let next_orig = g.create_node(&["X"], Props::new());
    let next_back = back.create_node(&["X"], Props::new());
    assert_eq!(next_orig, next_back);
    let rel_orig = g.create_rel(a, "DEPENDS_ON", c, Props::new()).unwrap();
    let rel_back = back.create_rel(a, "DEPENDS_ON", c, Props::new()).unwrap();
    assert_eq!(rel_orig, rel_back);
}
