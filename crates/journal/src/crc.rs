//! CRC-32 (IEEE 802.3 polynomial), the checksum guarding WAL frames.
//!
//! Implemented locally — the build has no registry access and no crc
//! crate vendored. Byte-at-a-time with a lazily built 256-entry table;
//! plenty for journal frame sizes.

/// Computes the CRC-32/IEEE checksum of `data` (init `0xFFFF_FFFF`,
/// reflected, final XOR `0xFFFF_FFFF` — the zlib/Ethernet variant).
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"internet yellow pages".to_vec();
        let good = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), good, "flip at byte {i} bit {bit}");
            }
        }
    }
}
