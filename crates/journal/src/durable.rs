//! [`DurableGraph`]: a graph store whose writes survive crashes.
//!
//! # Directory layout
//!
//! ```text
//! <dir>/snapshot-<gen>.bin   full binary snapshot, generation-numbered
//! <dir>/wal-<gen>.log        ops appended since snapshot <gen>
//! ```
//!
//! The durable state is always `snapshot-<g>.bin` + `wal-<g>.log` for
//! the highest generation `g` present (a fresh directory is generation
//! 0 with no snapshot). [`DurableGraph::checkpoint`] compacts: it
//! writes `snapshot-<g+1>.bin` (via tmp-file + rename, so a crash
//! mid-checkpoint leaves either the old or the new generation fully
//! intact, never a half-written snapshot), starts an empty
//! `wal-<g+1>.log`, and deletes generation `g`.
//!
//! # Concurrency
//!
//! Reads take a shared lock and run against the in-memory graph;
//! writes take the exclusive lock, record their effect ops, and append
//! them to the WAL as one CRC-framed batch before returning — so a
//! batch acknowledged under [`FsyncPolicy::Always`] is on stable
//! storage before the client hears about it.

use crate::error::JournalError;
use crate::wal::{replay_into, FsyncPolicy, ReplayReport, WalWriter};
use iyp_graph::{snapshot, Graph};
use iyp_telemetry as telemetry;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{RwLock, RwLockReadGuard};

/// What [`DurableGraph::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Generation recovered into (0 = fresh directory, no snapshot).
    pub generation: u64,
    /// Whether a snapshot file was loaded.
    pub snapshot_loaded: bool,
    /// Outcome of replaying the WAL tail.
    pub replay: ReplayReport,
    /// Stale files from older generations (or interrupted checkpoints)
    /// that were cleaned up.
    pub removed_stale_files: u64,
}

struct DurableInner {
    graph: Graph,
    wal: WalWriter,
    generation: u64,
}

/// A [`Graph`] wrapped in a write-ahead journal with checkpointing.
pub struct DurableGraph {
    dir: PathBuf,
    policy: FsyncPolicy,
    inner: RwLock<DurableInner>,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation}.bin"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

/// Parses `prefix-<n>.<ext>` into `n`.
fn parse_generation(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

fn fsync_dir(dir: &Path) -> Result<(), JournalError> {
    // Persist the rename/create/unlink in the directory entry itself.
    let d = fs::File::open(dir)?;
    d.sync_all()?;
    telemetry::counter(telemetry::names::JOURNAL_FSYNCS_TOTAL).incr();
    Ok(())
}

impl DurableGraph {
    /// Whether `dir` holds any journal state (snapshot or WAL files).
    pub fn exists(dir: &Path) -> bool {
        let Ok(entries) = fs::read_dir(dir) else {
            return false;
        };
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if parse_generation(&name, "snapshot-", ".bin").is_some()
                || parse_generation(&name, "wal-", ".log").is_some()
            {
                return true;
            }
        }
        false
    }

    /// Opens (and if necessary recovers) the journal in `dir`: loads the
    /// highest-generation snapshot, replays the matching WAL tail
    /// (repairing a torn tail), and cleans up stale older-generation
    /// files left by an interrupted checkpoint.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<(Self, RecoveryReport), JournalError> {
        fs::create_dir_all(dir)?;
        let mut report = RecoveryReport::default();

        // Find the highest complete generation.
        let mut snap_gens: Vec<u64> = Vec::new();
        let mut wal_gens: Vec<u64> = Vec::new();
        let mut tmp_files: Vec<PathBuf> = Vec::new();
        for e in fs::read_dir(dir)?.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(g) = parse_generation(&name, "snapshot-", ".bin") {
                snap_gens.push(g);
            } else if let Some(g) = parse_generation(&name, "wal-", ".log") {
                wal_gens.push(g);
            } else if name.ends_with(".tmp") {
                tmp_files.push(e.path());
            }
        }
        let generation = snap_gens
            .iter()
            .chain(wal_gens.iter())
            .copied()
            .max()
            .unwrap_or(0);

        let mut graph = if snap_gens.contains(&generation) {
            report.snapshot_loaded = true;
            snapshot::load_binary(&snapshot_path(dir, generation))
                .map_err(JournalError::Snapshot)?
        } else {
            Graph::new()
        };

        report.generation = generation;
        report.replay = replay_into(&mut graph, &wal_path(dir, generation), true)?;

        // Drop tmp files and older generations (stale after a crash
        // between checkpoint rename and cleanup).
        for p in tmp_files {
            fs::remove_file(&p)?;
            report.removed_stale_files += 1;
        }
        for g in snap_gens.iter().chain(wal_gens.iter()) {
            if *g < generation {
                for p in [snapshot_path(dir, *g), wal_path(dir, *g)] {
                    if p.exists() {
                        fs::remove_file(&p)?;
                        report.removed_stale_files += 1;
                    }
                }
            }
        }

        let wal = WalWriter::open_append(&wal_path(dir, generation), policy)?;
        Ok((
            DurableGraph {
                dir: dir.to_path_buf(),
                policy,
                inner: RwLock::new(DurableInner {
                    graph,
                    wal,
                    generation,
                }),
            },
            report,
        ))
    }

    /// Initialises `dir` with `graph` as the generation-1 snapshot and
    /// an empty WAL — the bootstrap path for `build --journal` and for
    /// serving an existing snapshot durably. Refuses to clobber an
    /// existing journal.
    pub fn seed(dir: &Path, graph: Graph, policy: FsyncPolicy) -> Result<Self, JournalError> {
        fs::create_dir_all(dir)?;
        if Self::exists(dir) {
            return Err(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("journal already initialised in {}", dir.display()),
            )));
        }
        let generation = 1;
        write_snapshot_atomic(dir, generation, &graph)?;
        let wal = WalWriter::create(&wal_path(dir, generation), policy)?;
        fsync_dir(dir)?;
        Ok(DurableGraph {
            dir: dir.to_path_buf(),
            policy,
            inner: RwLock::new(DurableInner {
                graph,
                wal,
                generation,
            }),
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.read_inner().generation
    }

    /// The wrapped graph's mutation epoch (see [`Graph::epoch`]). Every
    /// journaled write bumps it, and so does WAL replay during
    /// recovery (replay re-applies ops through the same mutation
    /// paths), so an epoch-keyed query cache can never serve a result
    /// from before a write — committed live or recovered — through
    /// this wrapper. A reopened journal additionally gets a fresh
    /// [`Graph::graph_id`], so cache keys from a previous incarnation
    /// can never match at all.
    pub fn epoch(&self) -> u64 {
        self.read_inner().graph.epoch()
    }

    /// Runs a closure against the graph under the shared (read) lock.
    pub fn read<R>(&self, f: impl FnOnce(&Graph) -> R) -> R {
        f(&self.read_inner().graph)
    }

    /// Runs a mutating closure under the exclusive lock, then appends
    /// every op it performed to the WAL as one batch.
    ///
    /// The ops are *effects* already applied in memory, so they are
    /// journaled even if the closure's own result is an error — the WAL
    /// always matches the in-memory graph. Callers wanting query-level
    /// atomicity should validate before mutating (the Cypher executor
    /// does).
    pub fn write<R>(&self, f: impl FnOnce(&mut Graph) -> R) -> Result<R, JournalError> {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.graph.begin_recording();
        let result = f(&mut inner.graph);
        let ops = inner.graph.take_recording();
        inner.wal.append_batch(&ops)?;
        Ok(result)
    }

    /// Compacts the WAL into a new snapshot generation. Returns the new
    /// generation number. Takes the exclusive lock for the duration.
    pub fn checkpoint(&self) -> Result<u64, JournalError> {
        let _span = telemetry::span(telemetry::names::JOURNAL_CHECKPOINT_SECONDS);
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let old = inner.generation;
        let new = old + 1;
        // Make sure everything the snapshot supersedes is on disk first:
        // if we crash mid-checkpoint, generation `old` must be complete.
        inner.wal.sync()?;
        write_snapshot_atomic(&self.dir, new, &inner.graph)?;
        // New (empty) WAL before deleting the old generation — every
        // point in this sequence leaves one complete generation on disk.
        inner.wal = WalWriter::create(&wal_path(&self.dir, new), self.policy)?;
        inner.generation = new;
        fsync_dir(&self.dir)?;
        for p in [snapshot_path(&self.dir, old), wal_path(&self.dir, old)] {
            if p.exists() {
                fs::remove_file(&p)?;
            }
        }
        fsync_dir(&self.dir)?;
        Ok(new)
    }

    /// Consumes the wrapper, returning the in-memory graph.
    pub fn into_graph(self) -> Graph {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .graph
    }

    fn read_inner(&self) -> RwLockReadGuard<'_, DurableInner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }
}

/// Writes `snapshot-<gen>.bin` via tmp file + fsync + atomic rename.
fn write_snapshot_atomic(dir: &Path, generation: u64, graph: &Graph) -> Result<(), JournalError> {
    let tmp = dir.join(format!("snapshot-{generation}.bin.tmp"));
    let dst = snapshot_path(dir, generation);
    let bytes = snapshot::to_binary(graph);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        telemetry::counter(telemetry::names::JOURNAL_FSYNCS_TOTAL).incr();
    }
    fs::rename(&tmp, &dst)?;
    fsync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::{props, Props, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iyp-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn graph_bytes(d: &DurableGraph) -> Vec<u8> {
        d.read(|g| snapshot::to_binary(g).to_vec())
    }

    #[test]
    fn writes_survive_reopen_without_checkpoint() {
        let dir = tmpdir("reopen");
        let (d, rep) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rep.generation, 0);
        assert!(!rep.snapshot_loaded);
        d.write(|g| {
            let a = g.merge_node("AS", "asn", 2497i64, Props::new());
            let b = g.merge_node("AS", "asn", 2500i64, Props::new());
            g.create_rel(a, "PEERS_WITH", b, props([("src", "test".into())]))
                .unwrap();
        })
        .unwrap();
        let before = graph_bytes(&d);
        drop(d);

        let (d2, rep2) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rep2.replay.batches, 1);
        assert_eq!(rep2.replay.ops, 3);
        assert_eq!(
            graph_bytes(&d2),
            before,
            "recovered graph must be byte-identical"
        );
    }

    #[test]
    fn checkpoint_compacts_and_advances_generation() {
        let dir = tmpdir("checkpoint");
        let (d, _) = DurableGraph::open(&dir, FsyncPolicy::Never).unwrap();
        d.write(|g| {
            g.merge_node("AS", "asn", 1i64, Props::new());
        })
        .unwrap();
        assert_eq!(d.checkpoint().unwrap(), 1);
        d.write(|g| {
            g.merge_node("AS", "asn", 2i64, Props::new());
        })
        .unwrap();
        let before = graph_bytes(&d);
        drop(d);

        assert!(snapshot_path(&dir, 1).exists());
        assert!(!snapshot_path(&dir, 0).exists());
        assert!(!wal_path(&dir, 0).exists());

        let (d2, rep) = DurableGraph::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(rep.generation, 1);
        assert!(rep.snapshot_loaded);
        assert_eq!(rep.replay.ops, 1, "only the post-checkpoint write replays");
        assert_eq!(graph_bytes(&d2), before);
    }

    #[test]
    fn seed_then_write_then_recover() {
        let dir = tmpdir("seed");
        let mut g = Graph::new();
        g.merge_node("AS", "asn", 2497i64, props([("name", "IIJ".into())]));
        let d = DurableGraph::seed(&dir, g, FsyncPolicy::Always).unwrap();
        assert_eq!(d.generation(), 1);
        d.write(|g| {
            let a = g.lookup("AS", "asn", 2497i64).unwrap();
            g.set_node_prop(a, "cc", Value::Str("JP".into())).unwrap();
        })
        .unwrap();
        let before = graph_bytes(&d);
        drop(d);

        // Seeding over an existing journal is refused.
        assert!(DurableGraph::seed(&dir, Graph::new(), FsyncPolicy::Always).is_err());

        let (d2, rep) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        assert!(rep.snapshot_loaded);
        assert_eq!(graph_bytes(&d2), before);
    }

    #[test]
    fn crash_after_snapshot_rename_recovers_new_generation() {
        // Simulate a crash between the snapshot rename and the new-WAL
        // creation: generation g+1 snapshot exists, no wal-(g+1), stale
        // generation-g files still present.
        let dir = tmpdir("midckpt");
        let (d, _) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        d.write(|g| {
            g.merge_node("AS", "asn", 7i64, Props::new());
        })
        .unwrap();
        let expected = graph_bytes(&d);
        d.read(|g| snapshot::save_binary(g, &snapshot_path(&dir, 1)))
            .unwrap();
        drop(d); // wal-0.log still on disk alongside snapshot-1.bin

        let (d2, rep) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rep.generation, 1);
        assert!(rep.snapshot_loaded);
        assert_eq!(rep.replay.batches, 0);
        assert!(
            rep.removed_stale_files >= 1,
            "stale generation-0 files cleaned"
        );
        assert_eq!(graph_bytes(&d2), expected);
        assert!(!wal_path(&dir, 0).exists());
    }

    #[test]
    fn crash_before_snapshot_rename_keeps_old_generation() {
        // A lingering .tmp snapshot must be ignored and removed.
        let dir = tmpdir("tmpfile");
        let (d, _) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        d.write(|g| {
            g.merge_node("AS", "asn", 9i64, Props::new());
        })
        .unwrap();
        let expected = graph_bytes(&d);
        std::fs::write(dir.join("snapshot-1.bin.tmp"), b"half-written").unwrap();
        drop(d);

        let (d2, rep) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rep.generation, 0);
        assert_eq!(rep.removed_stale_files, 1);
        assert_eq!(graph_bytes(&d2), expected);
        assert!(!dir.join("snapshot-1.bin.tmp").exists());
    }

    #[test]
    fn failed_write_closure_still_journals_its_effects() {
        let dir = tmpdir("partial");
        let (d, _) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        // The closure mutates, then "fails" — WAL must still match memory.
        let r: Result<(), &str> = d
            .write(|g| {
                g.merge_node("AS", "asn", 1i64, Props::new());
                Err("query failed after mutating")
            })
            .unwrap();
        assert!(r.is_err());
        let before = graph_bytes(&d);
        drop(d);
        let (d2, _) = DurableGraph::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(graph_bytes(&d2), before);
    }

    #[test]
    fn journaled_writes_and_recovery_replay_bump_the_epoch() {
        let dir = tmpdir("epoch");
        let (d, _) = DurableGraph::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(d.epoch(), 0);
        d.write(|g| {
            g.merge_node("AS", "asn", 1i64, Props::new());
        })
        .unwrap();
        let after_one = d.epoch();
        assert!(after_one > 0, "a journaled write must bump the epoch");
        d.write(|g| {
            g.merge_node("AS", "asn", 2i64, Props::new());
        })
        .unwrap();
        assert!(d.epoch() > after_one);
        let old_id = d.read(|g| g.graph_id());
        drop(d);

        // Recovery replays the WAL through the same mutation paths, so
        // the epoch is non-zero again and the graph id is fresh —
        // either is enough to keep pre-crash cache entries unmatchable.
        let (d2, rep) = DurableGraph::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(rep.replay.ops, 2);
        assert!(d2.epoch() > 0, "replay must bump the epoch");
        assert_ne!(d2.read(|g| g.graph_id()), old_id);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        use std::sync::Arc;
        let dir = tmpdir("concurrent");
        let (d, _) = DurableGraph::open(&dir, FsyncPolicy::Never).unwrap();
        let d = Arc::new(d);
        let writer = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                for i in 0..200i64 {
                    d.write(|g| {
                        g.merge_node("AS", "asn", i, Props::new());
                    })
                    .unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..500 {
                        let n = d.read(|g| g.node_count());
                        assert!(n >= last, "node count must be monotonic");
                        last = n;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(d.read(|g| g.node_count()), 200);
    }
}
