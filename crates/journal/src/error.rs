//! Journal errors.

use iyp_graph::GraphError;
use std::fmt;
use std::io;

/// Errors returned by the journal layer.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// Replaying the WAL diverged or an op failed to apply — the log
    /// does not correspond to the base snapshot.
    Replay(GraphError),
    /// The journal directory contains no usable state and `open` was
    /// told not to initialise one.
    NotInitialised(String),
    /// A snapshot file failed to decode.
    Snapshot(GraphError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Replay(e) => write!(f, "WAL replay failed: {e}"),
            JournalError::NotInitialised(dir) => {
                write!(f, "no journal state in {dir} (run with seeding enabled)")
            }
            JournalError::Snapshot(e) => write!(f, "snapshot decode failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Replay(e) | JournalError::Snapshot(e) => Some(e),
            JournalError::NotInitialised(_) => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}
