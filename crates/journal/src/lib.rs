//! iyp-journal: durability for the IYP graph store.
//!
//! The paper's local-instance workflow (§6.1) has users *mutating* the
//! knowledge graph — tagging resources, importing confidential data,
//! materialising intermediate results — so writes must survive a crash
//! without a full snapshot rewrite per query. This crate provides:
//!
//! - a **write-ahead log** ([`wal`]) of CRC32-framed batches of logical
//!   graph ops, with a configurable [`FsyncPolicy`] and torn-tail
//!   detection-and-truncation on replay;
//! - **checkpointing** that compacts the WAL into generation-numbered
//!   binary snapshots, crash-safe at every intermediate step;
//! - [`DurableGraph`], the serving wrapper: concurrent readers and an
//!   exclusive writer over the in-memory graph, journaling one batch
//!   per write query, with automatic recovery on open.
//!
//! Determinism: ops record *effects* (assigned ids, merge resolutions),
//! so replaying `snapshot + WAL` reproduces the pre-crash graph
//! byte-identically — including node and relationship ids. See
//! [`iyp_graph::op`] for the op model.

pub mod crc;
pub mod durable;
pub mod error;
pub mod wal;

pub use durable::{DurableGraph, RecoveryReport};
pub use error::JournalError;
pub use wal::{encode_frame, replay_into, FsyncPolicy, ReplayReport, WalWriter};
