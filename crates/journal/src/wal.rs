//! The write-ahead log: CRC-framed batches of [`GraphOp`]s on disk.
//!
//! # File format
//!
//! ```text
//! [ 4B magic "IYPW" ][ 4B version u32 LE ]          file header
//! [ 4B len u32 LE ][ 4B crc32 u32 LE ][ payload ]   frame, repeated
//! ```
//!
//! Each frame's payload is one *batch* — `u32 LE` op count followed by
//! that many binary-encoded [`GraphOp`]s — and `crc32` covers the
//! payload bytes. A batch corresponds to one write query, so replay is
//! all-or-nothing per query: a frame interrupted mid-write (torn tail)
//! fails its length or CRC check and is dropped wholesale, never
//! half-applied.
//!
//! # Torn-tail handling
//!
//! Replay walks frames until the file ends or a frame fails to
//! validate. Everything after the last valid frame is considered a torn
//! tail from a crash mid-append: [`replay_into`] reports it and (in
//! repair mode) truncates the file back to the last valid offset so the
//! log is append-ready again. A CRC *pass* followed by a payload decode
//! error is different — the bytes are intact but unintelligible — and
//! fails recovery loudly instead of silently dropping data.

use crate::crc::crc32;
use crate::error::JournalError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use iyp_graph::{op, Graph, GraphOp};
use iyp_telemetry as telemetry;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"IYPW";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
const FRAME_HEADER_LEN: usize = 8;

/// When the WAL flushes its file to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every appended batch (default): a batch acknowledged
    /// to the client survives an immediate power cut.
    #[default]
    Always,
    /// fsync after every `n` batches: bounded data loss, higher
    /// throughput.
    EveryN(u32),
    /// Never fsync explicitly; durability is whenever the OS flushes.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `every=N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => match s.strip_prefix("every=").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "invalid fsync policy {s:?} (expected always, never, or every=N)"
                )),
            },
        }
    }
}

/// Appends op batches to a WAL file.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    unsynced_batches: u32,
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (truncating any existing file) and
    /// writes the file header.
    pub fn create(path: &Path, policy: FsyncPolicy) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.sync_all()?;
        telemetry::counter(telemetry::names::JOURNAL_FSYNCS_TOTAL).incr();
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced_batches: 0,
        })
    }

    /// Opens an existing WAL for appending. The file must already have
    /// been validated/repaired by [`replay_into`]; an empty or missing
    /// file gets a fresh header.
    pub fn open_append(path: &Path, policy: FsyncPolicy) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len < HEADER_LEN {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_all()?;
            telemetry::counter(telemetry::names::JOURNAL_FSYNCS_TOTAL).incr();
        } else {
            file.seek(SeekFrom::End(0))?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced_batches: 0,
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one batch (one frame) and applies the fsync policy.
    /// Returns the number of bytes written. Empty batches are skipped.
    pub fn append_batch(&mut self, ops: &[GraphOp]) -> Result<u64, JournalError> {
        if ops.is_empty() {
            return Ok(0);
        }
        let frame = encode_frame(ops);
        self.file.write_all(&frame)?;
        telemetry::counter(telemetry::names::JOURNAL_APPEND_BYTES_TOTAL).add(frame.len() as u64);
        self.unsynced_batches += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced_batches >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(frame.len() as u64)
    }

    /// Forces the file to stable storage.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_all()?;
        self.unsynced_batches = 0;
        telemetry::counter(telemetry::names::JOURNAL_FSYNCS_TOTAL).incr();
        Ok(())
    }
}

/// Encodes one batch as a complete frame (header + payload).
pub fn encode_frame(ops: &[GraphOp]) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.put_u32_le(ops.len() as u32);
    for o in ops {
        op::encode_op(&mut payload, o);
    }
    let payload = payload.freeze();
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// What [`replay_into`] found in a WAL file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Valid frames (batches) replayed.
    pub batches: u64,
    /// Ops applied to the graph.
    pub ops: u64,
    /// Torn-tail bytes past the last valid frame (0 for a clean log).
    pub truncated_bytes: u64,
    /// Whether the torn tail was truncated off the file (repair mode).
    pub repaired: bool,
}

/// Replays the WAL at `path` into `graph`, stopping at the first torn
/// frame. With `repair`, the file is truncated back to the last valid
/// frame so it can be appended to again.
///
/// A missing file replays as empty. A file shorter than its header (a
/// crash during creation) is treated as an empty log with the header
/// counted as torn bytes.
pub fn replay_into(
    graph: &mut Graph,
    path: &Path,
    repair: bool,
) -> Result<ReplayReport, JournalError> {
    let mut report = ReplayReport::default();
    let mut data = Vec::new();
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e.into()),
    };
    file.read_to_end(&mut data)?;
    drop(file);

    // File header. A short or mismatched header means no frame ever hit
    // the disk; valid_end 0 truncates the whole file.
    let mut valid_end: usize = 0;
    if data.len() >= HEADER_LEN as usize
        && &data[..4] == MAGIC
        && u32::from_le_bytes(data[4..8].try_into().expect("4 bytes")) == VERSION
    {
        valid_end = HEADER_LEN as usize;
        let mut off = valid_end;
        while off < data.len() {
            if data.len() - off < FRAME_HEADER_LEN {
                break; // torn frame header
            }
            let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("4 bytes"));
            let start = off + FRAME_HEADER_LEN;
            if data.len() - start < len {
                break; // torn payload
            }
            let payload = &data[start..start + len];
            if crc32(payload) != crc {
                break; // corrupt (partially written) frame
            }
            // CRC-validated payload: decode/apply failures are fatal.
            let mut buf = Bytes::copy_from_slice(payload);
            if buf.remaining() < 4 {
                return Err(JournalError::Replay(iyp_graph::GraphError::Snapshot(
                    "frame payload shorter than its op count".into(),
                )));
            }
            let count = buf.get_u32_le();
            for _ in 0..count {
                let graph_op = op::decode_op(&mut buf).map_err(JournalError::Replay)?;
                graph.apply(&graph_op).map_err(JournalError::Replay)?;
                report.ops += 1;
            }
            report.batches += 1;
            off = start + len;
            valid_end = off;
        }
    }

    report.truncated_bytes = (data.len() - valid_end) as u64;
    telemetry::counter(telemetry::names::JOURNAL_REPLAYED_OPS_TOTAL).add(report.ops);
    if report.truncated_bytes > 0 {
        telemetry::counter(telemetry::names::JOURNAL_TRUNCATED_BYTES_TOTAL)
            .add(report.truncated_bytes);
        if repair {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
            report.repaired = true;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::{NodeId, Props, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iyp-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_batches() -> Vec<Vec<GraphOp>> {
        // Record a realistic op stream by running live mutations.
        let mut g = Graph::new();
        let mut batches = Vec::new();
        g.begin_recording();
        let a = g.merge_node("AS", "asn", 2497i64, Props::new());
        let b = g.merge_node("AS", "asn", 2500i64, Props::new());
        batches.push(g.take_recording());
        g.begin_recording();
        let r = g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        g.set_rel_prop(r, "weight", Value::Float(1.5)).unwrap();
        g.set_node_prop(a, "name", Value::Str("IIJ".into()))
            .unwrap();
        batches.push(g.take_recording());
        g.begin_recording();
        g.add_label(b, "Tier1").unwrap();
        g.delete_node(a).unwrap();
        batches.push(g.take_recording());
        batches
    }

    fn write_wal(path: &Path, batches: &[Vec<GraphOp>]) {
        let mut w = WalWriter::create(path, FsyncPolicy::Never).unwrap();
        for b in batches {
            w.append_batch(b).unwrap();
        }
        w.sync().unwrap();
    }

    fn replayed(path: &Path) -> (Graph, ReplayReport) {
        let mut g = Graph::new();
        let report = replay_into(&mut g, path, false).unwrap();
        (g, report)
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let batches = sample_batches();
        write_wal(&path, &batches);
        let (g, report) = replayed(&path);
        assert_eq!(report.batches, 3);
        assert_eq!(
            report.ops,
            batches.iter().map(|b| b.len() as u64).sum::<u64>()
        );
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(g.node_count(), 1);
        assert!(g.lookup("AS", "asn", 2500i64).is_some());
    }

    #[test]
    fn missing_file_is_empty_log() {
        let dir = tmpdir("missing");
        let (g, report) = replayed(&dir.join("nope.log"));
        assert_eq!(report, ReplayReport::default());
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn torn_tail_is_detected_and_repaired() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        write_wal(&path, &sample_batches());
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the final frame.
        let cut = full.len() - 3;
        std::fs::write(&path, &full[..cut]).unwrap();

        let mut g = Graph::new();
        let report = replay_into(&mut g, &path, true).unwrap();
        assert_eq!(report.batches, 2);
        assert!(report.truncated_bytes > 0);
        assert!(report.repaired);
        // The file is now clean: re-replay sees no tail.
        let (_, report2) = replayed(&path);
        assert_eq!(report2.batches, 2);
        assert_eq!(report2.truncated_bytes, 0);
        // And append-able again: record a new op against the recovered
        // state (ids continue from where the surviving prefix left off).
        let (mut recovered, _) = replayed(&path);
        let mut w = WalWriter::open_append(&path, FsyncPolicy::Always).unwrap();
        recovered.begin_recording();
        recovered.create_node(&["X"], Props::new());
        w.append_batch(&recovered.take_recording()).unwrap();
        let (_, report3) = replayed(&path);
        assert_eq!(report3.batches, 3);
    }

    #[test]
    fn corrupt_crc_stops_replay_at_last_good_frame() {
        let dir = tmpdir("crc");
        let path = dir.join("wal.log");
        write_wal(&path, &sample_batches());
        let mut data = std::fs::read(&path).unwrap();
        // Flip one bit in the last byte (inside the final frame's payload).
        let last = data.len() - 1;
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let (_, report) = replayed(&path);
        assert_eq!(report.batches, 2);
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn short_header_treated_as_empty() {
        let dir = tmpdir("header");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"IYP").unwrap();
        let mut g = Graph::new();
        let report = replay_into(&mut g, &path, true).unwrap();
        assert_eq!(report.batches, 0);
        assert_eq!(report.truncated_bytes, 3);
        assert!(report.repaired);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // open_append rewrites the header on the now-empty file.
        let mut w = WalWriter::open_append(&path, FsyncPolicy::Never).unwrap();
        let op = GraphOp::CreateNode {
            id: NodeId(0),
            labels: vec!["X".into()],
            props: Props::new(),
        };
        w.append_batch(&[op]).unwrap();
        w.sync().unwrap();
        let (g2, report2) = replayed(&path);
        assert_eq!(report2.batches, 1);
        assert_eq!(g2.node_count(), 1);
    }

    #[test]
    fn empty_batch_writes_nothing() {
        let dir = tmpdir("empty");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(w.append_batch(&[]).unwrap(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN);
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Ok(FsyncPolicy::EveryN(8)));
        assert!(FsyncPolicy::parse("every=0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }
}
