//! Property test: for ANY op sequence and ANY byte-truncation point,
//! replaying the surviving WAL prefix yields a valid graph (the one
//! produced by the surviving complete frames) and reports the
//! truncation — never an error, never a half-applied batch.

use iyp_graph::{props, Graph, GraphOp, NodeId, Props, RelId, Value};
use iyp_journal::{replay_into, FsyncPolicy, WalWriter};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpfile() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("iyp-walprop-{}-{n}.log", std::process::id()))
}

/// Applies one seeded mutation step to the graph (no-op when the graph
/// has no suitable target yet). Returns false if nothing was mutated.
fn step(g: &mut Graph, kind: u8, v: i64) -> bool {
    let nodes: Vec<NodeId> = g.all_nodes().map(|n| n.id).collect();
    let rels: Vec<RelId> = g.all_rels().map(|r| r.id).collect();
    let pick = |ids: &[NodeId]| ids[v.unsigned_abs() as usize % ids.len()];
    match kind % 7 {
        0 => {
            // Merge + prop write in the same batch exercises multi-op
            // frames (all-or-nothing per write query).
            let id = g.merge_node("AS", "asn", v % 32, Props::new());
            g.set_node_prop(id, "seen", Value::Int(v)).unwrap();
            true
        }
        1 => {
            g.create_node(&["Tag"], props([("label", Value::Str(format!("t{v}")))]));
            true
        }
        2 if !nodes.is_empty() => {
            let n = pick(&nodes);
            g.set_node_prop(n, "v", Value::List(vec![Value::Int(v), Value::Null]))
                .unwrap();
            true
        }
        3 if nodes.len() >= 2 => {
            let a = pick(&nodes);
            let b = nodes[(v.unsigned_abs() as usize + 1) % nodes.len()];
            g.create_rel(a, "PEERS_WITH", b, props([("w", Value::Float(0.5))]))
                .unwrap();
            true
        }
        4 if !rels.is_empty() => {
            let r = rels[v.unsigned_abs() as usize % rels.len()];
            g.set_rel_prop(r, "w2", Value::Bool(v % 2 == 0)).unwrap();
            true
        }
        5 if !rels.is_empty() => {
            let r = rels[v.unsigned_abs() as usize % rels.len()];
            g.delete_rel(r).unwrap();
            true
        }
        6 if !nodes.is_empty() => {
            let n = pick(&nodes);
            g.delete_node(n).unwrap();
            true
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn any_truncation_point_recovers_longest_valid_prefix(
        steps in proptest::collection::vec((any::<u8>(), any::<i64>()), 1..25),
        cut_seed in any::<u64>(),
    ) {
        // Run the op sequence live, one WAL batch per mutation step.
        let mut live = Graph::new();
        let mut batches: Vec<Vec<GraphOp>> = Vec::new();
        for (kind, v) in &steps {
            live.begin_recording();
            let mutated = step(&mut live, *kind, *v);
            let ops = live.take_recording();
            if mutated {
                prop_assert!(!ops.is_empty());
                batches.push(ops);
            }
        }

        let path = tmpfile();
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        let mut frame_ends = vec![std::fs::metadata(&path).unwrap().len()];
        for b in &batches {
            let bytes = w.append_batch(b).unwrap();
            frame_ends.push(frame_ends.last().unwrap() + bytes);
        }
        w.sync().unwrap();
        drop(w);

        let full = std::fs::read(&path).unwrap();
        let cut = (cut_seed % (full.len() as u64 + 1)) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        // Replay of the truncated file must succeed...
        let mut recovered = Graph::new();
        let report = replay_into(&mut recovered, &path, true).unwrap();

        // ...recovering exactly the complete frames below the cut.
        let surviving = frame_ends[1..]
            .iter()
            .filter(|end| **end <= cut as u64)
            .count();
        prop_assert_eq!(report.batches as usize, surviving);
        prop_assert_eq!(
            report.ops as usize,
            batches[..surviving].iter().map(Vec::len).sum::<usize>()
        );

        // The recovered graph is the one the surviving batches produce.
        let mut expected = Graph::new();
        for b in &batches[..surviving] {
            for op in b {
                expected.apply(op).unwrap();
            }
        }
        prop_assert_eq!(
            iyp_graph::snapshot::to_binary(&recovered).to_vec(),
            iyp_graph::snapshot::to_binary(&expected).to_vec()
        );

        // Truncation below the file header reports everything as torn;
        // otherwise the torn bytes are whatever sits past the last
        // complete frame. Either way the file was repaired in place and
        // a second replay is clean.
        let expected_torn = if surviving == 0 && cut < frame_ends[0] as usize {
            cut as u64
        } else {
            cut as u64 - frame_ends[surviving]
        };
        prop_assert_eq!(report.truncated_bytes, expected_torn);
        prop_assert!(report.truncated_bytes == 0 || report.repaired);
        let mut again = Graph::new();
        let report2 = replay_into(&mut again, &path, false).unwrap();
        prop_assert_eq!(report2.batches, report.batches);
        prop_assert_eq!(report2.truncated_bytes, 0);

        let _ = std::fs::remove_file(&path);
    }
}
