//! Autonomous-system numbers.

use crate::error::NetDataError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 32-bit autonomous-system number.
///
/// `Asn` accepts the common textual spellings found in community datasets
/// (`"64496"`, `"AS64496"`, `"as64496"`, and the asdot notation
/// `"1.10"` used by some legacy feeds) and always renders the canonical
/// asplain decimal form, which is the form IYP stores in the `asn` node
/// property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved AS number used for private use ranges start (RFC 6996).
    pub const PRIVATE_16BIT_START: u32 = 64512;
    /// End of the 16-bit private range (RFC 6996).
    pub const PRIVATE_16BIT_END: u32 = 65534;
    /// Start of the 32-bit private range (RFC 6996).
    pub const PRIVATE_32BIT_START: u32 = 4_200_000_000;
    /// End of the 32-bit private range (RFC 6996).
    pub const PRIVATE_32BIT_END: u32 = 4_294_967_294;

    /// Returns the numeric value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// True if the ASN falls in a private-use range (RFC 6996) or is the
    /// reserved AS 0 / AS 23456 (AS_TRANS) / 65535 / 4294967295.
    pub fn is_reserved(self) -> bool {
        matches!(self.0, 0 | 23456 | 65535 | u32::MAX)
            || (Self::PRIVATE_16BIT_START..=Self::PRIVATE_16BIT_END).contains(&self.0)
            || (Self::PRIVATE_32BIT_START..=Self::PRIVATE_32BIT_END).contains(&self.0)
    }

    /// Renders the asdot form (`high.low`), used only for display of
    /// 4-byte ASNs in some legacy tooling.
    pub fn asdot(self) -> String {
        if self.0 <= u16::MAX as u32 {
            self.0.to_string()
        } else {
            format!("{}.{}", self.0 >> 16, self.0 & 0xffff)
        }
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for Asn {
    type Err = NetDataError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let t = t
            .strip_prefix("AS")
            .or_else(|| t.strip_prefix("as"))
            .or_else(|| t.strip_prefix("As"))
            .or_else(|| t.strip_prefix("aS"))
            .unwrap_or(t);
        if let Some((hi, lo)) = t.split_once('.') {
            // asdot notation
            let hi: u32 = hi.parse().map_err(|_| NetDataError::InvalidAsn(s.into()))?;
            let lo: u32 = lo.parse().map_err(|_| NetDataError::InvalidAsn(s.into()))?;
            if hi > u16::MAX as u32 || lo > u16::MAX as u32 {
                return Err(NetDataError::InvalidAsn(s.into()));
            }
            return Ok(Asn((hi << 16) | lo));
        }
        t.parse::<u32>()
            .map(Asn)
            .map_err(|_| NetDataError::InvalidAsn(s.into()))
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_decimal() {
        assert_eq!("64496".parse::<Asn>().unwrap(), Asn(64496));
    }

    #[test]
    fn parses_as_prefix_any_case() {
        assert_eq!("AS64496".parse::<Asn>().unwrap(), Asn(64496));
        assert_eq!("as64496".parse::<Asn>().unwrap(), Asn(64496));
        assert_eq!("As64496".parse::<Asn>().unwrap(), Asn(64496));
    }

    #[test]
    fn parses_asdot() {
        assert_eq!("1.10".parse::<Asn>().unwrap(), Asn(65546));
        assert_eq!("AS2.0".parse::<Asn>().unwrap(), Asn(131072));
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("ASX".parse::<Asn>().is_err());
        assert!("1.70000".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn display_is_asplain() {
        assert_eq!(Asn(65546).to_string(), "65546");
    }

    #[test]
    fn asdot_rendering() {
        assert_eq!(Asn(65546).asdot(), "1.10");
        assert_eq!(Asn(64496).asdot(), "64496");
    }

    #[test]
    fn reserved_ranges() {
        assert!(Asn(0).is_reserved());
        assert!(Asn(23456).is_reserved());
        assert!(Asn(64512).is_reserved());
        assert!(Asn(65534).is_reserved());
        assert!(Asn(4_200_000_000).is_reserved());
        assert!(!Asn(64511).is_reserved());
        assert!(!Asn(15169).is_reserved());
    }
}
