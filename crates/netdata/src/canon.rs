//! Canonical forms for the identifiers that define node identity in IYP.
//!
//! §2.3 of the paper: *"We avoid creating duplicate nodes by enforcing
//! canonical forms of certain identifiers (IP address, IP prefix, ASN,
//! country code)."* This module is the single place where those forms are
//! defined; crawlers call these helpers before handing identifiers to the
//! graph store. Hostnames and URLs get the same treatment because the
//! refinement stage links `URL` nodes to `HostName` nodes by name.

use crate::asn::Asn;
use crate::country;
use crate::error::NetDataError;
use crate::ip::canonical_ip;
use crate::prefix::Prefix;

/// Canonical ASN text (asplain decimal, no `AS` prefix).
pub fn asn(s: &str) -> Result<String, NetDataError> {
    s.parse::<Asn>().map(|a| a.to_string())
}

/// Canonical IP address text (RFC 5952 for IPv6).
pub fn ip(s: &str) -> Result<String, NetDataError> {
    canonical_ip(s)
}

/// Canonical prefix text (masked network address + length).
pub fn prefix(s: &str) -> Result<String, NetDataError> {
    s.parse::<Prefix>().map(|p| p.canonical())
}

/// Canonical country code (upper-case alpha-2).
pub fn country_code(s: &str) -> Result<String, NetDataError> {
    country::canonical_alpha2(s).map(|c| c.to_string())
}

/// Canonical hostname: lower-cased, trailing dot stripped, surrounding
/// whitespace removed. DNS names are case-insensitive, and zone files mix
/// absolute (`example.com.`) and relative spellings.
pub fn hostname(s: &str) -> String {
    let t = s.trim().to_ascii_lowercase();
    t.strip_suffix('.').unwrap_or(&t).to_string()
}

/// Extracts the canonical hostname from a URL, used by the refinement
/// stage to add `PART_OF` links between `URL` and `HostName` nodes.
///
/// Returns `None` when the URL has no recognisable authority component.
pub fn url_hostname(url: &str) -> Option<String> {
    let t = url.trim();
    let rest = t.split_once("://").map(|(_, r)| r).unwrap_or(t);
    // Strip userinfo.
    let rest = rest.rsplit_once('@').map(|(_, r)| r).unwrap_or(rest);
    // Authority ends at the first '/', '?' or '#'.
    let authority = rest.split(['/', '?', '#']).next()?;
    // Strip port (but not IPv6 bracket contents).
    let host = if let Some(stripped) = authority.strip_prefix('[') {
        stripped.split(']').next()?
    } else {
        authority.split(':').next()?
    };
    if host.is_empty() {
        return None;
    }
    Some(hostname(host))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_forms() {
        assert_eq!(asn("AS2497").unwrap(), "2497");
        assert_eq!(asn("2497").unwrap(), "2497");
        assert!(asn("ASN2497").is_err());
    }

    #[test]
    fn prefix_forms() {
        assert_eq!(prefix("2001:0DB8::/32").unwrap(), "2001:db8::/32");
        assert!(prefix("192.000.002.000/24").is_err()); // leading zeros rejected by std
        assert_eq!(prefix("192.0.2.5/24").unwrap(), "192.0.2.0/24");
    }

    #[test]
    fn country_forms() {
        assert_eq!(country_code("jp").unwrap(), "JP");
        assert_eq!(country_code("JPN").unwrap(), "JP");
    }

    #[test]
    fn hostname_forms() {
        assert_eq!(hostname("WWW.Example.COM."), "www.example.com");
        assert_eq!(hostname(" ns1.example.org "), "ns1.example.org");
    }

    #[test]
    fn url_hostnames() {
        assert_eq!(
            url_hostname("https://www.Example.com/path?q=1"),
            Some("www.example.com".into())
        );
        assert_eq!(
            url_hostname("http://user:pw@example.org:8080/x"),
            Some("example.org".into())
        );
        assert_eq!(url_hostname("example.net/abc"), Some("example.net".into()));
        assert_eq!(
            url_hostname("https://[2001:db8::1]:443/"),
            Some("2001:db8::1".into())
        );
        assert_eq!(url_hostname("https:///nopath"), None);
    }
}
