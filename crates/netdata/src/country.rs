//! ISO 3166-1 country registry.
//!
//! The IYP refinement stage guarantees that every `Country` node carries a
//! two-letter code (`country_code`), a three-letter code (`alpha3`) and a
//! common `name` (§2.3, last paragraph). This module provides the lookup
//! table backing that guarantee, covering all ISO 3166-1 assigned codes
//! plus the user-assigned codes that appear in RIR delegated files
//! (`ZZ` for unknown, `EU` for pan-European registrations).

use crate::error::NetDataError;

/// One ISO 3166-1 entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Country {
    /// Alpha-2 code, e.g. `JP`.
    pub alpha2: &'static str,
    /// Alpha-3 code, e.g. `JPN`.
    pub alpha3: &'static str,
    /// Common (short) English name.
    pub name: &'static str,
}

/// All ISO 3166-1 assigned entries, ordered by alpha-2 code, plus the
/// `EU`/`ZZ` user-assigned codes used in RIR data.
pub const COUNTRIES: &[Country] = &[
    Country {
        alpha2: "AD",
        alpha3: "AND",
        name: "Andorra",
    },
    Country {
        alpha2: "AE",
        alpha3: "ARE",
        name: "United Arab Emirates",
    },
    Country {
        alpha2: "AF",
        alpha3: "AFG",
        name: "Afghanistan",
    },
    Country {
        alpha2: "AG",
        alpha3: "ATG",
        name: "Antigua and Barbuda",
    },
    Country {
        alpha2: "AI",
        alpha3: "AIA",
        name: "Anguilla",
    },
    Country {
        alpha2: "AL",
        alpha3: "ALB",
        name: "Albania",
    },
    Country {
        alpha2: "AM",
        alpha3: "ARM",
        name: "Armenia",
    },
    Country {
        alpha2: "AO",
        alpha3: "AGO",
        name: "Angola",
    },
    Country {
        alpha2: "AQ",
        alpha3: "ATA",
        name: "Antarctica",
    },
    Country {
        alpha2: "AR",
        alpha3: "ARG",
        name: "Argentina",
    },
    Country {
        alpha2: "AS",
        alpha3: "ASM",
        name: "American Samoa",
    },
    Country {
        alpha2: "AT",
        alpha3: "AUT",
        name: "Austria",
    },
    Country {
        alpha2: "AU",
        alpha3: "AUS",
        name: "Australia",
    },
    Country {
        alpha2: "AW",
        alpha3: "ABW",
        name: "Aruba",
    },
    Country {
        alpha2: "AX",
        alpha3: "ALA",
        name: "Aland Islands",
    },
    Country {
        alpha2: "AZ",
        alpha3: "AZE",
        name: "Azerbaijan",
    },
    Country {
        alpha2: "BA",
        alpha3: "BIH",
        name: "Bosnia and Herzegovina",
    },
    Country {
        alpha2: "BB",
        alpha3: "BRB",
        name: "Barbados",
    },
    Country {
        alpha2: "BD",
        alpha3: "BGD",
        name: "Bangladesh",
    },
    Country {
        alpha2: "BE",
        alpha3: "BEL",
        name: "Belgium",
    },
    Country {
        alpha2: "BF",
        alpha3: "BFA",
        name: "Burkina Faso",
    },
    Country {
        alpha2: "BG",
        alpha3: "BGR",
        name: "Bulgaria",
    },
    Country {
        alpha2: "BH",
        alpha3: "BHR",
        name: "Bahrain",
    },
    Country {
        alpha2: "BI",
        alpha3: "BDI",
        name: "Burundi",
    },
    Country {
        alpha2: "BJ",
        alpha3: "BEN",
        name: "Benin",
    },
    Country {
        alpha2: "BL",
        alpha3: "BLM",
        name: "Saint Barthelemy",
    },
    Country {
        alpha2: "BM",
        alpha3: "BMU",
        name: "Bermuda",
    },
    Country {
        alpha2: "BN",
        alpha3: "BRN",
        name: "Brunei Darussalam",
    },
    Country {
        alpha2: "BO",
        alpha3: "BOL",
        name: "Bolivia",
    },
    Country {
        alpha2: "BQ",
        alpha3: "BES",
        name: "Bonaire, Sint Eustatius and Saba",
    },
    Country {
        alpha2: "BR",
        alpha3: "BRA",
        name: "Brazil",
    },
    Country {
        alpha2: "BS",
        alpha3: "BHS",
        name: "Bahamas",
    },
    Country {
        alpha2: "BT",
        alpha3: "BTN",
        name: "Bhutan",
    },
    Country {
        alpha2: "BV",
        alpha3: "BVT",
        name: "Bouvet Island",
    },
    Country {
        alpha2: "BW",
        alpha3: "BWA",
        name: "Botswana",
    },
    Country {
        alpha2: "BY",
        alpha3: "BLR",
        name: "Belarus",
    },
    Country {
        alpha2: "BZ",
        alpha3: "BLZ",
        name: "Belize",
    },
    Country {
        alpha2: "CA",
        alpha3: "CAN",
        name: "Canada",
    },
    Country {
        alpha2: "CC",
        alpha3: "CCK",
        name: "Cocos (Keeling) Islands",
    },
    Country {
        alpha2: "CD",
        alpha3: "COD",
        name: "Congo, Democratic Republic of the",
    },
    Country {
        alpha2: "CF",
        alpha3: "CAF",
        name: "Central African Republic",
    },
    Country {
        alpha2: "CG",
        alpha3: "COG",
        name: "Congo",
    },
    Country {
        alpha2: "CH",
        alpha3: "CHE",
        name: "Switzerland",
    },
    Country {
        alpha2: "CI",
        alpha3: "CIV",
        name: "Cote d'Ivoire",
    },
    Country {
        alpha2: "CK",
        alpha3: "COK",
        name: "Cook Islands",
    },
    Country {
        alpha2: "CL",
        alpha3: "CHL",
        name: "Chile",
    },
    Country {
        alpha2: "CM",
        alpha3: "CMR",
        name: "Cameroon",
    },
    Country {
        alpha2: "CN",
        alpha3: "CHN",
        name: "China",
    },
    Country {
        alpha2: "CO",
        alpha3: "COL",
        name: "Colombia",
    },
    Country {
        alpha2: "CR",
        alpha3: "CRI",
        name: "Costa Rica",
    },
    Country {
        alpha2: "CU",
        alpha3: "CUB",
        name: "Cuba",
    },
    Country {
        alpha2: "CV",
        alpha3: "CPV",
        name: "Cabo Verde",
    },
    Country {
        alpha2: "CW",
        alpha3: "CUW",
        name: "Curacao",
    },
    Country {
        alpha2: "CX",
        alpha3: "CXR",
        name: "Christmas Island",
    },
    Country {
        alpha2: "CY",
        alpha3: "CYP",
        name: "Cyprus",
    },
    Country {
        alpha2: "CZ",
        alpha3: "CZE",
        name: "Czechia",
    },
    Country {
        alpha2: "DE",
        alpha3: "DEU",
        name: "Germany",
    },
    Country {
        alpha2: "DJ",
        alpha3: "DJI",
        name: "Djibouti",
    },
    Country {
        alpha2: "DK",
        alpha3: "DNK",
        name: "Denmark",
    },
    Country {
        alpha2: "DM",
        alpha3: "DMA",
        name: "Dominica",
    },
    Country {
        alpha2: "DO",
        alpha3: "DOM",
        name: "Dominican Republic",
    },
    Country {
        alpha2: "DZ",
        alpha3: "DZA",
        name: "Algeria",
    },
    Country {
        alpha2: "EC",
        alpha3: "ECU",
        name: "Ecuador",
    },
    Country {
        alpha2: "EE",
        alpha3: "EST",
        name: "Estonia",
    },
    Country {
        alpha2: "EG",
        alpha3: "EGY",
        name: "Egypt",
    },
    Country {
        alpha2: "EH",
        alpha3: "ESH",
        name: "Western Sahara",
    },
    Country {
        alpha2: "ER",
        alpha3: "ERI",
        name: "Eritrea",
    },
    Country {
        alpha2: "ES",
        alpha3: "ESP",
        name: "Spain",
    },
    Country {
        alpha2: "ET",
        alpha3: "ETH",
        name: "Ethiopia",
    },
    Country {
        alpha2: "EU",
        alpha3: "EUE",
        name: "European Union",
    },
    Country {
        alpha2: "FI",
        alpha3: "FIN",
        name: "Finland",
    },
    Country {
        alpha2: "FJ",
        alpha3: "FJI",
        name: "Fiji",
    },
    Country {
        alpha2: "FK",
        alpha3: "FLK",
        name: "Falkland Islands",
    },
    Country {
        alpha2: "FM",
        alpha3: "FSM",
        name: "Micronesia",
    },
    Country {
        alpha2: "FO",
        alpha3: "FRO",
        name: "Faroe Islands",
    },
    Country {
        alpha2: "FR",
        alpha3: "FRA",
        name: "France",
    },
    Country {
        alpha2: "GA",
        alpha3: "GAB",
        name: "Gabon",
    },
    Country {
        alpha2: "GB",
        alpha3: "GBR",
        name: "United Kingdom",
    },
    Country {
        alpha2: "GD",
        alpha3: "GRD",
        name: "Grenada",
    },
    Country {
        alpha2: "GE",
        alpha3: "GEO",
        name: "Georgia",
    },
    Country {
        alpha2: "GF",
        alpha3: "GUF",
        name: "French Guiana",
    },
    Country {
        alpha2: "GG",
        alpha3: "GGY",
        name: "Guernsey",
    },
    Country {
        alpha2: "GH",
        alpha3: "GHA",
        name: "Ghana",
    },
    Country {
        alpha2: "GI",
        alpha3: "GIB",
        name: "Gibraltar",
    },
    Country {
        alpha2: "GL",
        alpha3: "GRL",
        name: "Greenland",
    },
    Country {
        alpha2: "GM",
        alpha3: "GMB",
        name: "Gambia",
    },
    Country {
        alpha2: "GN",
        alpha3: "GIN",
        name: "Guinea",
    },
    Country {
        alpha2: "GP",
        alpha3: "GLP",
        name: "Guadeloupe",
    },
    Country {
        alpha2: "GQ",
        alpha3: "GNQ",
        name: "Equatorial Guinea",
    },
    Country {
        alpha2: "GR",
        alpha3: "GRC",
        name: "Greece",
    },
    Country {
        alpha2: "GS",
        alpha3: "SGS",
        name: "South Georgia and the South Sandwich Islands",
    },
    Country {
        alpha2: "GT",
        alpha3: "GTM",
        name: "Guatemala",
    },
    Country {
        alpha2: "GU",
        alpha3: "GUM",
        name: "Guam",
    },
    Country {
        alpha2: "GW",
        alpha3: "GNB",
        name: "Guinea-Bissau",
    },
    Country {
        alpha2: "GY",
        alpha3: "GUY",
        name: "Guyana",
    },
    Country {
        alpha2: "HK",
        alpha3: "HKG",
        name: "Hong Kong",
    },
    Country {
        alpha2: "HM",
        alpha3: "HMD",
        name: "Heard Island and McDonald Islands",
    },
    Country {
        alpha2: "HN",
        alpha3: "HND",
        name: "Honduras",
    },
    Country {
        alpha2: "HR",
        alpha3: "HRV",
        name: "Croatia",
    },
    Country {
        alpha2: "HT",
        alpha3: "HTI",
        name: "Haiti",
    },
    Country {
        alpha2: "HU",
        alpha3: "HUN",
        name: "Hungary",
    },
    Country {
        alpha2: "ID",
        alpha3: "IDN",
        name: "Indonesia",
    },
    Country {
        alpha2: "IE",
        alpha3: "IRL",
        name: "Ireland",
    },
    Country {
        alpha2: "IL",
        alpha3: "ISR",
        name: "Israel",
    },
    Country {
        alpha2: "IM",
        alpha3: "IMN",
        name: "Isle of Man",
    },
    Country {
        alpha2: "IN",
        alpha3: "IND",
        name: "India",
    },
    Country {
        alpha2: "IO",
        alpha3: "IOT",
        name: "British Indian Ocean Territory",
    },
    Country {
        alpha2: "IQ",
        alpha3: "IRQ",
        name: "Iraq",
    },
    Country {
        alpha2: "IR",
        alpha3: "IRN",
        name: "Iran",
    },
    Country {
        alpha2: "IS",
        alpha3: "ISL",
        name: "Iceland",
    },
    Country {
        alpha2: "IT",
        alpha3: "ITA",
        name: "Italy",
    },
    Country {
        alpha2: "JE",
        alpha3: "JEY",
        name: "Jersey",
    },
    Country {
        alpha2: "JM",
        alpha3: "JAM",
        name: "Jamaica",
    },
    Country {
        alpha2: "JO",
        alpha3: "JOR",
        name: "Jordan",
    },
    Country {
        alpha2: "JP",
        alpha3: "JPN",
        name: "Japan",
    },
    Country {
        alpha2: "KE",
        alpha3: "KEN",
        name: "Kenya",
    },
    Country {
        alpha2: "KG",
        alpha3: "KGZ",
        name: "Kyrgyzstan",
    },
    Country {
        alpha2: "KH",
        alpha3: "KHM",
        name: "Cambodia",
    },
    Country {
        alpha2: "KI",
        alpha3: "KIR",
        name: "Kiribati",
    },
    Country {
        alpha2: "KM",
        alpha3: "COM",
        name: "Comoros",
    },
    Country {
        alpha2: "KN",
        alpha3: "KNA",
        name: "Saint Kitts and Nevis",
    },
    Country {
        alpha2: "KP",
        alpha3: "PRK",
        name: "Korea, Democratic People's Republic of",
    },
    Country {
        alpha2: "KR",
        alpha3: "KOR",
        name: "Korea, Republic of",
    },
    Country {
        alpha2: "KW",
        alpha3: "KWT",
        name: "Kuwait",
    },
    Country {
        alpha2: "KY",
        alpha3: "CYM",
        name: "Cayman Islands",
    },
    Country {
        alpha2: "KZ",
        alpha3: "KAZ",
        name: "Kazakhstan",
    },
    Country {
        alpha2: "LA",
        alpha3: "LAO",
        name: "Lao People's Democratic Republic",
    },
    Country {
        alpha2: "LB",
        alpha3: "LBN",
        name: "Lebanon",
    },
    Country {
        alpha2: "LC",
        alpha3: "LCA",
        name: "Saint Lucia",
    },
    Country {
        alpha2: "LI",
        alpha3: "LIE",
        name: "Liechtenstein",
    },
    Country {
        alpha2: "LK",
        alpha3: "LKA",
        name: "Sri Lanka",
    },
    Country {
        alpha2: "LR",
        alpha3: "LBR",
        name: "Liberia",
    },
    Country {
        alpha2: "LS",
        alpha3: "LSO",
        name: "Lesotho",
    },
    Country {
        alpha2: "LT",
        alpha3: "LTU",
        name: "Lithuania",
    },
    Country {
        alpha2: "LU",
        alpha3: "LUX",
        name: "Luxembourg",
    },
    Country {
        alpha2: "LV",
        alpha3: "LVA",
        name: "Latvia",
    },
    Country {
        alpha2: "LY",
        alpha3: "LBY",
        name: "Libya",
    },
    Country {
        alpha2: "MA",
        alpha3: "MAR",
        name: "Morocco",
    },
    Country {
        alpha2: "MC",
        alpha3: "MCO",
        name: "Monaco",
    },
    Country {
        alpha2: "MD",
        alpha3: "MDA",
        name: "Moldova",
    },
    Country {
        alpha2: "ME",
        alpha3: "MNE",
        name: "Montenegro",
    },
    Country {
        alpha2: "MF",
        alpha3: "MAF",
        name: "Saint Martin (French part)",
    },
    Country {
        alpha2: "MG",
        alpha3: "MDG",
        name: "Madagascar",
    },
    Country {
        alpha2: "MH",
        alpha3: "MHL",
        name: "Marshall Islands",
    },
    Country {
        alpha2: "MK",
        alpha3: "MKD",
        name: "North Macedonia",
    },
    Country {
        alpha2: "ML",
        alpha3: "MLI",
        name: "Mali",
    },
    Country {
        alpha2: "MM",
        alpha3: "MMR",
        name: "Myanmar",
    },
    Country {
        alpha2: "MN",
        alpha3: "MNG",
        name: "Mongolia",
    },
    Country {
        alpha2: "MO",
        alpha3: "MAC",
        name: "Macao",
    },
    Country {
        alpha2: "MP",
        alpha3: "MNP",
        name: "Northern Mariana Islands",
    },
    Country {
        alpha2: "MQ",
        alpha3: "MTQ",
        name: "Martinique",
    },
    Country {
        alpha2: "MR",
        alpha3: "MRT",
        name: "Mauritania",
    },
    Country {
        alpha2: "MS",
        alpha3: "MSR",
        name: "Montserrat",
    },
    Country {
        alpha2: "MT",
        alpha3: "MLT",
        name: "Malta",
    },
    Country {
        alpha2: "MU",
        alpha3: "MUS",
        name: "Mauritius",
    },
    Country {
        alpha2: "MV",
        alpha3: "MDV",
        name: "Maldives",
    },
    Country {
        alpha2: "MW",
        alpha3: "MWI",
        name: "Malawi",
    },
    Country {
        alpha2: "MX",
        alpha3: "MEX",
        name: "Mexico",
    },
    Country {
        alpha2: "MY",
        alpha3: "MYS",
        name: "Malaysia",
    },
    Country {
        alpha2: "MZ",
        alpha3: "MOZ",
        name: "Mozambique",
    },
    Country {
        alpha2: "NA",
        alpha3: "NAM",
        name: "Namibia",
    },
    Country {
        alpha2: "NC",
        alpha3: "NCL",
        name: "New Caledonia",
    },
    Country {
        alpha2: "NE",
        alpha3: "NER",
        name: "Niger",
    },
    Country {
        alpha2: "NF",
        alpha3: "NFK",
        name: "Norfolk Island",
    },
    Country {
        alpha2: "NG",
        alpha3: "NGA",
        name: "Nigeria",
    },
    Country {
        alpha2: "NI",
        alpha3: "NIC",
        name: "Nicaragua",
    },
    Country {
        alpha2: "NL",
        alpha3: "NLD",
        name: "Netherlands",
    },
    Country {
        alpha2: "NO",
        alpha3: "NOR",
        name: "Norway",
    },
    Country {
        alpha2: "NP",
        alpha3: "NPL",
        name: "Nepal",
    },
    Country {
        alpha2: "NR",
        alpha3: "NRU",
        name: "Nauru",
    },
    Country {
        alpha2: "NU",
        alpha3: "NIU",
        name: "Niue",
    },
    Country {
        alpha2: "NZ",
        alpha3: "NZL",
        name: "New Zealand",
    },
    Country {
        alpha2: "OM",
        alpha3: "OMN",
        name: "Oman",
    },
    Country {
        alpha2: "PA",
        alpha3: "PAN",
        name: "Panama",
    },
    Country {
        alpha2: "PE",
        alpha3: "PER",
        name: "Peru",
    },
    Country {
        alpha2: "PF",
        alpha3: "PYF",
        name: "French Polynesia",
    },
    Country {
        alpha2: "PG",
        alpha3: "PNG",
        name: "Papua New Guinea",
    },
    Country {
        alpha2: "PH",
        alpha3: "PHL",
        name: "Philippines",
    },
    Country {
        alpha2: "PK",
        alpha3: "PAK",
        name: "Pakistan",
    },
    Country {
        alpha2: "PL",
        alpha3: "POL",
        name: "Poland",
    },
    Country {
        alpha2: "PM",
        alpha3: "SPM",
        name: "Saint Pierre and Miquelon",
    },
    Country {
        alpha2: "PN",
        alpha3: "PCN",
        name: "Pitcairn",
    },
    Country {
        alpha2: "PR",
        alpha3: "PRI",
        name: "Puerto Rico",
    },
    Country {
        alpha2: "PS",
        alpha3: "PSE",
        name: "Palestine, State of",
    },
    Country {
        alpha2: "PT",
        alpha3: "PRT",
        name: "Portugal",
    },
    Country {
        alpha2: "PW",
        alpha3: "PLW",
        name: "Palau",
    },
    Country {
        alpha2: "PY",
        alpha3: "PRY",
        name: "Paraguay",
    },
    Country {
        alpha2: "QA",
        alpha3: "QAT",
        name: "Qatar",
    },
    Country {
        alpha2: "RE",
        alpha3: "REU",
        name: "Reunion",
    },
    Country {
        alpha2: "RO",
        alpha3: "ROU",
        name: "Romania",
    },
    Country {
        alpha2: "RS",
        alpha3: "SRB",
        name: "Serbia",
    },
    Country {
        alpha2: "RU",
        alpha3: "RUS",
        name: "Russian Federation",
    },
    Country {
        alpha2: "RW",
        alpha3: "RWA",
        name: "Rwanda",
    },
    Country {
        alpha2: "SA",
        alpha3: "SAU",
        name: "Saudi Arabia",
    },
    Country {
        alpha2: "SB",
        alpha3: "SLB",
        name: "Solomon Islands",
    },
    Country {
        alpha2: "SC",
        alpha3: "SYC",
        name: "Seychelles",
    },
    Country {
        alpha2: "SD",
        alpha3: "SDN",
        name: "Sudan",
    },
    Country {
        alpha2: "SE",
        alpha3: "SWE",
        name: "Sweden",
    },
    Country {
        alpha2: "SG",
        alpha3: "SGP",
        name: "Singapore",
    },
    Country {
        alpha2: "SH",
        alpha3: "SHN",
        name: "Saint Helena",
    },
    Country {
        alpha2: "SI",
        alpha3: "SVN",
        name: "Slovenia",
    },
    Country {
        alpha2: "SJ",
        alpha3: "SJM",
        name: "Svalbard and Jan Mayen",
    },
    Country {
        alpha2: "SK",
        alpha3: "SVK",
        name: "Slovakia",
    },
    Country {
        alpha2: "SL",
        alpha3: "SLE",
        name: "Sierra Leone",
    },
    Country {
        alpha2: "SM",
        alpha3: "SMR",
        name: "San Marino",
    },
    Country {
        alpha2: "SN",
        alpha3: "SEN",
        name: "Senegal",
    },
    Country {
        alpha2: "SO",
        alpha3: "SOM",
        name: "Somalia",
    },
    Country {
        alpha2: "SR",
        alpha3: "SUR",
        name: "Suriname",
    },
    Country {
        alpha2: "SS",
        alpha3: "SSD",
        name: "South Sudan",
    },
    Country {
        alpha2: "ST",
        alpha3: "STP",
        name: "Sao Tome and Principe",
    },
    Country {
        alpha2: "SV",
        alpha3: "SLV",
        name: "El Salvador",
    },
    Country {
        alpha2: "SX",
        alpha3: "SXM",
        name: "Sint Maarten (Dutch part)",
    },
    Country {
        alpha2: "SY",
        alpha3: "SYR",
        name: "Syrian Arab Republic",
    },
    Country {
        alpha2: "SZ",
        alpha3: "SWZ",
        name: "Eswatini",
    },
    Country {
        alpha2: "TC",
        alpha3: "TCA",
        name: "Turks and Caicos Islands",
    },
    Country {
        alpha2: "TD",
        alpha3: "TCD",
        name: "Chad",
    },
    Country {
        alpha2: "TF",
        alpha3: "ATF",
        name: "French Southern Territories",
    },
    Country {
        alpha2: "TG",
        alpha3: "TGO",
        name: "Togo",
    },
    Country {
        alpha2: "TH",
        alpha3: "THA",
        name: "Thailand",
    },
    Country {
        alpha2: "TJ",
        alpha3: "TJK",
        name: "Tajikistan",
    },
    Country {
        alpha2: "TK",
        alpha3: "TKL",
        name: "Tokelau",
    },
    Country {
        alpha2: "TL",
        alpha3: "TLS",
        name: "Timor-Leste",
    },
    Country {
        alpha2: "TM",
        alpha3: "TKM",
        name: "Turkmenistan",
    },
    Country {
        alpha2: "TN",
        alpha3: "TUN",
        name: "Tunisia",
    },
    Country {
        alpha2: "TO",
        alpha3: "TON",
        name: "Tonga",
    },
    Country {
        alpha2: "TR",
        alpha3: "TUR",
        name: "Turkiye",
    },
    Country {
        alpha2: "TT",
        alpha3: "TTO",
        name: "Trinidad and Tobago",
    },
    Country {
        alpha2: "TV",
        alpha3: "TUV",
        name: "Tuvalu",
    },
    Country {
        alpha2: "TW",
        alpha3: "TWN",
        name: "Taiwan",
    },
    Country {
        alpha2: "TZ",
        alpha3: "TZA",
        name: "Tanzania",
    },
    Country {
        alpha2: "UA",
        alpha3: "UKR",
        name: "Ukraine",
    },
    Country {
        alpha2: "UG",
        alpha3: "UGA",
        name: "Uganda",
    },
    Country {
        alpha2: "UM",
        alpha3: "UMI",
        name: "United States Minor Outlying Islands",
    },
    Country {
        alpha2: "US",
        alpha3: "USA",
        name: "United States",
    },
    Country {
        alpha2: "UY",
        alpha3: "URY",
        name: "Uruguay",
    },
    Country {
        alpha2: "UZ",
        alpha3: "UZB",
        name: "Uzbekistan",
    },
    Country {
        alpha2: "VA",
        alpha3: "VAT",
        name: "Holy See",
    },
    Country {
        alpha2: "VC",
        alpha3: "VCT",
        name: "Saint Vincent and the Grenadines",
    },
    Country {
        alpha2: "VE",
        alpha3: "VEN",
        name: "Venezuela",
    },
    Country {
        alpha2: "VG",
        alpha3: "VGB",
        name: "Virgin Islands (British)",
    },
    Country {
        alpha2: "VI",
        alpha3: "VIR",
        name: "Virgin Islands (U.S.)",
    },
    Country {
        alpha2: "VN",
        alpha3: "VNM",
        name: "Viet Nam",
    },
    Country {
        alpha2: "VU",
        alpha3: "VUT",
        name: "Vanuatu",
    },
    Country {
        alpha2: "WF",
        alpha3: "WLF",
        name: "Wallis and Futuna",
    },
    Country {
        alpha2: "WS",
        alpha3: "WSM",
        name: "Samoa",
    },
    Country {
        alpha2: "YE",
        alpha3: "YEM",
        name: "Yemen",
    },
    Country {
        alpha2: "YT",
        alpha3: "MYT",
        name: "Mayotte",
    },
    Country {
        alpha2: "ZA",
        alpha3: "ZAF",
        name: "South Africa",
    },
    Country {
        alpha2: "ZM",
        alpha3: "ZMB",
        name: "Zambia",
    },
    Country {
        alpha2: "ZW",
        alpha3: "ZWE",
        name: "Zimbabwe",
    },
    Country {
        alpha2: "ZZ",
        alpha3: "ZZZ",
        name: "Unknown",
    },
];

/// Looks up a country by alpha-2 code (case-insensitive).
pub fn by_alpha2(code: &str) -> Option<&'static Country> {
    let up = code.trim().to_ascii_uppercase();
    COUNTRIES.iter().find(|c| c.alpha2 == up)
}

/// Looks up a country by alpha-3 code (case-insensitive).
pub fn by_alpha3(code: &str) -> Option<&'static Country> {
    let up = code.trim().to_ascii_uppercase();
    COUNTRIES.iter().find(|c| c.alpha3 == up)
}

/// Canonicalises a country code (either alpha-2 or alpha-3) to alpha-2.
pub fn canonical_alpha2(code: &str) -> Result<&'static str, NetDataError> {
    let t = code.trim();
    let hit = match t.len() {
        2 => by_alpha2(t),
        3 => by_alpha3(t),
        _ => None,
    };
    hit.map(|c| c.alpha2)
        .ok_or_else(|| NetDataError::UnknownCountry(code.into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_alpha2() {
        assert_eq!(by_alpha2("jp").unwrap().name, "Japan");
        assert_eq!(by_alpha2(" US ").unwrap().alpha3, "USA");
        assert!(by_alpha2("XQ").is_none());
    }

    #[test]
    fn lookup_by_alpha3() {
        assert_eq!(by_alpha3("nld").unwrap().alpha2, "NL");
        assert!(by_alpha3("XXX").is_none());
    }

    #[test]
    fn canonicalisation() {
        assert_eq!(canonical_alpha2("jpn").unwrap(), "JP");
        assert_eq!(canonical_alpha2("de").unwrap(), "DE");
        assert!(canonical_alpha2("Germany").is_err());
        assert!(canonical_alpha2("").is_err());
    }

    #[test]
    fn table_is_sorted_and_unique() {
        for w in COUNTRIES.windows(2) {
            assert!(
                w[0].alpha2 < w[1].alpha2,
                "{} !< {}",
                w[0].alpha2,
                w[1].alpha2
            );
        }
    }

    #[test]
    fn rir_user_assigned_codes_present() {
        assert!(by_alpha2("EU").is_some());
        assert!(by_alpha2("ZZ").is_some());
    }

    #[test]
    fn all_codes_have_expected_shape() {
        for c in COUNTRIES {
            assert_eq!(c.alpha2.len(), 2);
            assert_eq!(c.alpha3.len(), 3);
            assert!(!c.name.is_empty());
            assert!(c.alpha2.chars().all(|ch| ch.is_ascii_uppercase()));
            assert!(c.alpha3.chars().all(|ch| ch.is_ascii_uppercase()));
        }
    }
}
