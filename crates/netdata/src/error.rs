//! Error type shared by the netdata parsers.

use std::fmt;

/// Errors produced while parsing or canonicalising network identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetDataError {
    /// The string was not a valid autonomous-system number.
    InvalidAsn(String),
    /// The string was not a valid IPv4 or IPv6 address.
    InvalidIp(String),
    /// The string was not a valid CIDR prefix.
    InvalidPrefix(String),
    /// The prefix length exceeded the maximum for the address family.
    PrefixLenOutOfRange { len: u8, max: u8 },
    /// The string was not a known ISO-3166 country code.
    UnknownCountry(String),
}

impl fmt::Display for NetDataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetDataError::InvalidAsn(s) => write!(f, "invalid ASN: {s:?}"),
            NetDataError::InvalidIp(s) => write!(f, "invalid IP address: {s:?}"),
            NetDataError::InvalidPrefix(s) => write!(f, "invalid prefix: {s:?}"),
            NetDataError::PrefixLenOutOfRange { len, max } => {
                write!(f, "prefix length {len} out of range (max {max})")
            }
            NetDataError::UnknownCountry(s) => write!(f, "unknown country code: {s:?}"),
        }
    }
}

impl std::error::Error for NetDataError {}
