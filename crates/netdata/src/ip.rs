//! IP address handling and canonical textual forms.
//!
//! The IYP fusion stage (§2.3) avoids duplicate nodes by translating every
//! identifier to a canonical form before node creation. For IP addresses
//! the canonical form is the RFC 5952 compressed, lower-case rendering for
//! IPv6 and the plain dotted quad for IPv4 — exactly what
//! [`std::net::IpAddr`]'s `Display` produces, so canonicalisation is
//! parse-then-render.

use crate::error::NetDataError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv6Addr};
use std::str::FromStr;

/// The address family of an IP address or prefix.
///
/// Stored as the `af` property on `IP` and `Prefix` nodes by the
/// post-processing stage (valued `4` or `6`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AddressFamily {
    /// IPv4.
    V4,
    /// IPv6.
    V6,
}

impl AddressFamily {
    /// The numeric value used for the `af` property (4 or 6).
    pub fn as_number(self) -> i64 {
        match self {
            AddressFamily::V4 => 4,
            AddressFamily::V6 => 6,
        }
    }

    /// Address width in bits (32 or 128).
    pub fn bits(self) -> u8 {
        match self {
            AddressFamily::V4 => 32,
            AddressFamily::V6 => 128,
        }
    }
}

impl fmt::Display for AddressFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_number())
    }
}

/// Returns the address family of an already-parsed address.
pub fn family_of(ip: &IpAddr) -> AddressFamily {
    match ip {
        IpAddr::V4(_) => AddressFamily::V4,
        IpAddr::V6(_) => AddressFamily::V6,
    }
}

/// Parses `s` as an IPv4 or IPv6 address and returns the canonical text.
///
/// IPv6 addresses are compressed and lower-cased per RFC 5952;
/// IPv4-mapped IPv6 addresses (`::ffff:a.b.c.d`) are kept in the v6
/// family (they identify a v6 datapoint in the source dataset).
///
/// ```
/// use iyp_netdata::canonical_ip;
/// assert_eq!(canonical_ip("2001:DB8::0001").unwrap(), "2001:db8::1");
/// assert_eq!(canonical_ip("192.0.2.1").unwrap(), "192.0.2.1");
/// ```
pub fn canonical_ip(s: &str) -> Result<String, NetDataError> {
    parse_ip(s).map(|ip| ip.to_string())
}

/// Parses `s` as an IP address, accepting surrounding whitespace and
/// bracketed IPv6 literals (`[2001:db8::1]`).
pub fn parse_ip(s: &str) -> Result<IpAddr, NetDataError> {
    let t = s.trim();
    let t = t
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .unwrap_or(t);
    IpAddr::from_str(t).map_err(|_| NetDataError::InvalidIp(s.into()))
}

/// Converts an IP address to its 128-bit integer key, used by the radix
/// trie. IPv4 addresses occupy the low 32 bits.
pub fn ip_to_bits(ip: &IpAddr) -> u128 {
    match ip {
        IpAddr::V4(v4) => u32::from(*v4) as u128,
        IpAddr::V6(v6) => u128::from(*v6),
    }
}

/// Converts a 128-bit key back to an address of the given family.
pub fn bits_to_ip(bits: u128, af: AddressFamily) -> IpAddr {
    match af {
        AddressFamily::V4 => IpAddr::V4(std::net::Ipv4Addr::from(bits as u32)),
        AddressFamily::V6 => IpAddr::V6(Ipv6Addr::from(bits)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalises_ipv6_case_and_zeros() {
        assert_eq!(canonical_ip("2001:DB8:0:0:0:0:0:1").unwrap(), "2001:db8::1");
        assert_eq!(canonical_ip("2001:0db8::0001").unwrap(), "2001:db8::1");
    }

    #[test]
    fn ipv4_passthrough() {
        assert_eq!(canonical_ip("192.0.2.1").unwrap(), "192.0.2.1");
    }

    #[test]
    fn accepts_brackets_and_whitespace() {
        assert_eq!(canonical_ip(" [2001:db8::1] ").unwrap(), "2001:db8::1");
    }

    #[test]
    fn rejects_invalid() {
        assert!(canonical_ip("192.0.2.256").is_err());
        assert!(canonical_ip("2001:db8::g").is_err());
        assert!(canonical_ip("").is_err());
    }

    #[test]
    fn family_numbers() {
        assert_eq!(AddressFamily::V4.as_number(), 4);
        assert_eq!(AddressFamily::V6.as_number(), 6);
        assert_eq!(AddressFamily::V4.bits(), 32);
        assert_eq!(AddressFamily::V6.bits(), 128);
    }

    #[test]
    fn bits_roundtrip_v4() {
        let ip = parse_ip("198.51.100.7").unwrap();
        let bits = ip_to_bits(&ip);
        assert_eq!(bits_to_ip(bits, AddressFamily::V4), ip);
    }

    #[test]
    fn bits_roundtrip_v6() {
        let ip = parse_ip("2001:db8::42").unwrap();
        let bits = ip_to_bits(&ip);
        assert_eq!(bits_to_ip(bits, AddressFamily::V6), ip);
    }
}
