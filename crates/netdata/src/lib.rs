//! Network-data primitives for the Internet Yellow Pages.
//!
//! This crate provides the low-level vocabulary shared by every other IYP
//! crate: autonomous-system numbers, IP addresses and prefixes with the
//! *canonical forms* required by the IYP fusion stage (§2.3 of the paper),
//! a longest-prefix-match radix trie used by the refinement stage, and an
//! ISO-3166 country table used to guarantee that every `Country` node has
//! a two- and three-letter code plus a common name.
//!
//! Everything here is implemented from scratch on top of `std::net`; there
//! are no third-party networking dependencies.

pub mod asn;
pub mod canon;
pub mod country;
pub mod error;
pub mod ip;
pub mod prefix;
pub mod trie;

pub use asn::Asn;
pub use error::NetDataError;
pub use ip::{canonical_ip, AddressFamily};
pub use prefix::Prefix;
pub use trie::PrefixTrie;
