//! CIDR prefixes with canonical forms and containment tests.

use crate::error::NetDataError;
use crate::ip::{family_of, ip_to_bits, parse_ip, AddressFamily};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;
use std::str::FromStr;

/// An IPv4 or IPv6 CIDR prefix.
///
/// Parsing produces the canonical form used for `Prefix` node identity in
/// the knowledge graph: host bits are masked off and the network address
/// is rendered canonically, so `2001:DB8::1/32` and `2001:0db8::/32` both
/// canonicalise to `2001:db8::/32` and map to the *same* node — the
/// dedup behaviour described in §2.3 / Figure 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    /// Network bits, right-aligned in a 128-bit integer (v4 uses the low
    /// 32 bits).
    bits: u128,
    /// Prefix length in bits.
    len: u8,
    /// Address family.
    af: AddressFamily,
}

impl Prefix {
    /// Builds a prefix from an address and length, masking host bits.
    pub fn new(addr: IpAddr, len: u8) -> Result<Self, NetDataError> {
        let af = family_of(&addr);
        if len > af.bits() {
            return Err(NetDataError::PrefixLenOutOfRange {
                len,
                max: af.bits(),
            });
        }
        let bits = ip_to_bits(&addr) & mask(len, af);
        Ok(Prefix { bits, len, af })
    }

    /// The masked network address.
    pub fn network(&self) -> IpAddr {
        crate::ip::bits_to_ip(self.bits, self.af)
    }

    /// Prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route; provided to satisfy
    /// the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address family.
    pub fn family(&self) -> AddressFamily {
        self.af
    }

    /// The raw network bits (right-aligned).
    pub fn raw_bits(&self) -> u128 {
        self.bits
    }

    /// True if `ip` falls inside this prefix. Addresses of a different
    /// family are never contained.
    pub fn contains_ip(&self, ip: &IpAddr) -> bool {
        if family_of(ip) != self.af {
            return false;
        }
        ip_to_bits(ip) & mask(self.len, self.af) == self.bits
    }

    /// True if `other` is equal to or more specific than `self`.
    pub fn covers(&self, other: &Prefix) -> bool {
        self.af == other.af
            && self.len <= other.len
            && (other.bits & mask(self.len, self.af)) == self.bits
    }

    /// The immediate parent prefix (one bit shorter), or `None` at /0.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix {
            bits: self.bits & mask(len, self.af),
            len,
            af: self.af,
        })
    }

    /// The canonical textual form (`network/len`).
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

/// Bit mask for the top `len` bits of an address of family `af`,
/// right-aligned in a u128.
fn mask(len: u8, af: AddressFamily) -> u128 {
    let width = af.bits() as u32;
    if len == 0 {
        return 0;
    }
    let width_mask = if width == 128 {
        !0u128
    } else {
        (1u128 << width) - 1
    };
    (!0u128 << (width - len as u32)) & width_mask
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = NetDataError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let (addr, len) = t
            .split_once('/')
            .ok_or_else(|| NetDataError::InvalidPrefix(s.into()))?;
        let addr = parse_ip(addr).map_err(|_| NetDataError::InvalidPrefix(s.into()))?;
        let len: u8 = len
            .trim()
            .parse()
            .map_err(|_| NetDataError::InvalidPrefix(s.into()))?;
        Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalises_paper_example() {
        // Figure 2: 2001:DB8::/32 and 2001:0db8::/32 are the same node.
        assert_eq!(p("2001:DB8::/32"), p("2001:0db8::/32"));
        assert_eq!(p("2001:DB8::/32").canonical(), "2001:db8::/32");
    }

    #[test]
    fn masks_host_bits() {
        assert_eq!(p("192.0.2.77/24").canonical(), "192.0.2.0/24");
        assert_eq!(p("2001:db8::1/32").canonical(), "2001:db8::/32");
    }

    #[test]
    fn containment_v4() {
        let pfx = p("198.51.100.0/24");
        assert!(pfx.contains_ip(&"198.51.100.200".parse().unwrap()));
        assert!(!pfx.contains_ip(&"198.51.101.1".parse().unwrap()));
        assert!(!pfx.contains_ip(&"2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn covers_relation() {
        assert!(p("10.0.0.0/8").covers(&p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").covers(&p("11.0.0.0/16")));
        assert!(!p("10.0.0.0/8").covers(&p("2001:db8::/32")));
    }

    #[test]
    fn parent_chain() {
        let pfx = p("192.0.2.0/25");
        assert_eq!(pfx.parent().unwrap().canonical(), "192.0.2.0/24");
        assert!(p("0.0.0.0/0").parent().is_none());
    }

    #[test]
    fn default_routes() {
        assert_eq!(p("0.0.0.0/0").canonical(), "0.0.0.0/0");
        assert_eq!(p("::/0").canonical(), "::/0");
        assert!(p("::/0").contains_ip(&"2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn rejects_bad_input() {
        assert!("192.0.2.0".parse::<Prefix>().is_err()); // no length
        assert!("192.0.2.0/33".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("notaprefix/8".parse::<Prefix>().is_err());
        assert!("192.0.2.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn family_detection() {
        assert_eq!(p("10.0.0.0/8").family(), AddressFamily::V4);
        assert_eq!(p("2001:db8::/32").family(), AddressFamily::V6);
    }
}
