//! A binary radix (Patricia-style) trie over CIDR prefixes.
//!
//! Used by the IYP refinement stage (§2.3) to link every `IP` node to the
//! `Prefix` node of its longest prefix match, and every prefix to its
//! closest covering prefix. One trie is kept per address family; the
//! [`PrefixTrie`] facade dispatches on family.

use crate::ip::{family_of, ip_to_bits, AddressFamily};
use crate::prefix::Prefix;
use std::net::IpAddr;

/// Per-family binary trie node. Children are indexed by the next address
/// bit after the node's depth.
#[derive(Debug)]
struct TrieNode<V> {
    children: [Option<Box<TrieNode<V>>>; 2],
    /// Value stored when a prefix terminates exactly at this node.
    value: Option<V>,
}

impl<V> TrieNode<V> {
    fn new() -> Self {
        TrieNode {
            children: [None, None],
            value: None,
        }
    }
}

/// Extracts bit `i` (0 = most significant network bit) of a key of the
/// given width.
fn bit_at(width: u32, bits: u128, i: u32) -> usize {
    ((bits >> (width - 1 - i)) & 1) as usize
}

#[derive(Debug)]
struct FamilyTrie<V> {
    root: TrieNode<V>,
    width: u32,
    len: usize,
}

impl<V> FamilyTrie<V> {
    fn new(af: AddressFamily) -> Self {
        FamilyTrie {
            root: TrieNode::new(),
            width: af.bits() as u32,
            len: 0,
        }
    }

    /// Extracts bit `i` (0 = most significant network bit) of `bits`.
    fn bit(&self, bits: u128, i: u32) -> usize {
        bit_at(self.width, bits, i)
    }

    fn insert(&mut self, prefix: &Prefix, value: V) -> Option<V> {
        let bits = prefix.raw_bits();
        let width = self.width;
        let mut node = &mut self.root;
        for i in 0..prefix.len() as u32 {
            let b = bit_at(width, bits, i);
            node = node.children[b].get_or_insert_with(|| Box::new(TrieNode::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn longest_match(&self, bits: u128, max_len: u32) -> Option<(u8, &V)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = None;
        if let Some(v) = &node.value {
            best = Some((0, v));
        }
        for i in 0..max_len {
            let b = self.bit(bits, i);
            match &node.children[b] {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        best = Some(((i + 1) as u8, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    fn exact(&self, prefix: &Prefix) -> Option<&V> {
        let bits = prefix.raw_bits();
        let mut node = &self.root;
        for i in 0..prefix.len() as u32 {
            let b = self.bit(bits, i);
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }
}

/// A longest-prefix-match map from CIDR prefixes to arbitrary values.
///
/// ```
/// use iyp_netdata::{Prefix, PrefixTrie};
/// let mut t = PrefixTrie::new();
/// t.insert(&"10.0.0.0/8".parse().unwrap(), "big");
/// t.insert(&"10.1.0.0/16".parse().unwrap(), "small");
/// let ip = "10.1.2.3".parse().unwrap();
/// assert_eq!(t.longest_match_ip(&ip).map(|(p, v)| (p.to_string(), *v)),
///            Some(("10.1.0.0/16".to_string(), "small")));
/// ```
#[derive(Debug)]
pub struct PrefixTrie<V> {
    v4: FamilyTrie<V>,
    v6: FamilyTrie<V>,
    /// All inserted prefixes, kept for iteration.
    entries: Vec<Prefix>,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            v4: FamilyTrie::new(AddressFamily::V4),
            v6: FamilyTrie::new(AddressFamily::V6),
            entries: Vec::new(),
        }
    }

    fn family(&self, af: AddressFamily) -> &FamilyTrie<V> {
        match af {
            AddressFamily::V4 => &self.v4,
            AddressFamily::V6 => &self.v6,
        }
    }

    /// Inserts `prefix` with `value`; returns the previous value if the
    /// exact prefix was already present.
    pub fn insert(&mut self, prefix: &Prefix, value: V) -> Option<V> {
        let t = match prefix.family() {
            AddressFamily::V4 => &mut self.v4,
            AddressFamily::V6 => &mut self.v6,
        };
        let old = t.insert(prefix, value);
        if old.is_none() {
            self.entries.push(*prefix);
        }
        old
    }

    /// Number of distinct prefixes stored.
    pub fn len(&self) -> usize {
        self.v4.len + self.v6.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Longest-prefix match for an IP address. Returns the matched prefix
    /// and its value.
    pub fn longest_match_ip(&self, ip: &IpAddr) -> Option<(Prefix, &V)> {
        let af = family_of(ip);
        let t = self.family(af);
        let bits = ip_to_bits(ip);
        t.longest_match(bits, af.bits() as u32).map(|(len, v)| {
            let p = Prefix::new(*ip, len).expect("length bounded by family width");
            (p, v)
        })
    }

    /// The most specific *strictly covering* prefix of `prefix` (i.e., the
    /// longest stored prefix that covers it and is shorter than it).
    pub fn covering(&self, prefix: &Prefix) -> Option<(Prefix, &V)> {
        let af = prefix.family();
        let t = self.family(af);
        let max = (prefix.len() as u32).saturating_sub(1);
        t.longest_match(prefix.raw_bits(), max).map(|(len, v)| {
            let p = Prefix::new(prefix.network(), len).expect("length bounded");
            (p, v)
        })
    }

    /// Exact lookup of a stored prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        self.family(prefix.family()).exact(prefix)
    }

    /// Iterates over all stored prefixes in insertion order.
    pub fn prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(&p("10.0.0.0/8"), 8);
        t.insert(&p("10.1.0.0/16"), 16);
        t.insert(&p("10.1.2.0/24"), 24);
        let hit = t.longest_match_ip(&"10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(hit.0, p("10.1.2.0/24"));
        assert_eq!(*hit.1, 24);
        let hit = t.longest_match_ip(&"10.1.9.9".parse().unwrap()).unwrap();
        assert_eq!(hit.0, p("10.1.0.0/16"));
        let hit = t.longest_match_ip(&"10.200.0.1".parse().unwrap()).unwrap();
        assert_eq!(hit.0, p("10.0.0.0/8"));
        assert!(t.longest_match_ip(&"11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn families_are_separate() {
        let mut t = PrefixTrie::new();
        t.insert(&p("0.0.0.0/0"), "v4");
        assert!(t
            .longest_match_ip(&"2001:db8::1".parse().unwrap())
            .is_none());
        t.insert(&p("2001:db8::/32"), "v6");
        let hit = t.longest_match_ip(&"2001:db8::1".parse().unwrap()).unwrap();
        assert_eq!(*hit.1, "v6");
    }

    #[test]
    fn covering_excludes_self() {
        let mut t = PrefixTrie::new();
        t.insert(&p("10.0.0.0/8"), ());
        t.insert(&p("10.1.0.0/16"), ());
        // The covering prefix of the /16 is the /8, not itself.
        let cov = t.covering(&p("10.1.0.0/16")).unwrap();
        assert_eq!(cov.0, p("10.0.0.0/8"));
        assert!(t.covering(&p("10.0.0.0/8")).is_none());
        // Covering of a prefix not in the trie still works.
        let cov = t.covering(&p("10.1.2.0/24")).unwrap();
        assert_eq!(cov.0, p("10.1.0.0/16"));
    }

    #[test]
    fn insert_replaces_and_counts() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(&p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(&p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
    }

    #[test]
    fn default_route_matches_everything_v4() {
        let mut t = PrefixTrie::new();
        t.insert(&p("0.0.0.0/0"), ());
        assert!(t
            .longest_match_ip(&"203.0.113.9".parse().unwrap())
            .is_some());
    }

    #[test]
    fn ipv6_deep_prefixes() {
        let mut t = PrefixTrie::new();
        t.insert(&p("2001:db8::/32"), 32);
        t.insert(&p("2001:db8:abcd::/48"), 48);
        t.insert(&p("2001:db8:abcd:12::/64"), 64);
        let hit = t
            .longest_match_ip(&"2001:db8:abcd:12::99".parse().unwrap())
            .unwrap();
        assert_eq!(*hit.1, 64);
        let hit = t
            .longest_match_ip(&"2001:db8:abcd:ffff::1".parse().unwrap())
            .unwrap();
        assert_eq!(*hit.1, 48);
        let hit = t
            .longest_match_ip(&"2001:db8:ffff::1".parse().unwrap())
            .unwrap();
        assert_eq!(*hit.1, 32);
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(&p("192.0.2.1/32"), "host");
        let hit = t.longest_match_ip(&"192.0.2.1".parse().unwrap()).unwrap();
        assert_eq!(*hit.1, "host");
        assert!(t.longest_match_ip(&"192.0.2.2".parse().unwrap()).is_none());
    }
}
