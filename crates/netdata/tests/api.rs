//! API-surface tests for netdata: error rendering, display paths,
//! country-table completeness against the crawler needs.

use iyp_netdata::{canon, country, NetDataError, Prefix};

#[test]
fn error_messages_are_informative() {
    assert!(NetDataError::InvalidAsn("x".into())
        .to_string()
        .contains("x"));
    assert!(NetDataError::InvalidIp("y".into())
        .to_string()
        .contains("y"));
    assert!(NetDataError::InvalidPrefix("z".into())
        .to_string()
        .contains("z"));
    assert!(NetDataError::PrefixLenOutOfRange { len: 33, max: 32 }
        .to_string()
        .contains("33"));
    assert!(NetDataError::UnknownCountry("QQ".into())
        .to_string()
        .contains("QQ"));
}

#[test]
fn prefix_display_and_ord() {
    let a: Prefix = "10.0.0.0/8".parse().unwrap();
    let b: Prefix = "10.0.0.0/9".parse().unwrap();
    assert_eq!(format!("{a}"), "10.0.0.0/8");
    assert!(a < b, "same network, shorter length sorts first");
    let mut v = [b, a];
    v.sort();
    assert_eq!(v[0], a);
}

#[test]
fn country_table_covers_generator_pool() {
    // Every country the synthetic Internet uses must be resolvable, or
    // crawler country links would silently drop.
    for cc in [
        "US", "DE", "GB", "FR", "NL", "JP", "CN", "RU", "BR", "IN", "AU", "CA", "KR", "SG", "ZA",
        "SE", "IT", "ES", "PL", "UA", "MX", "ID", "NG", "AR", "CH",
    ] {
        assert!(country::by_alpha2(cc).is_some(), "{cc} missing");
    }
}

#[test]
fn canonical_forms_compose() {
    // A full round through the canonicalisers used by the importer.
    assert_eq!(canon::asn(" AS2497 ").unwrap(), "2497");
    assert_eq!(canon::ip("2001:DB8:0:0:0:0:0:1").unwrap(), "2001:db8::1");
    assert_eq!(canon::prefix("2001:DB8::1/32").unwrap(), "2001:db8::/32");
    assert_eq!(canon::country_code("jpn").unwrap(), "JP");
    assert_eq!(canon::hostname("NS1.Example.ORG."), "ns1.example.org");
    assert_eq!(
        canon::url_hostname("https://User@WWW.Example.com:8443/a?b#c"),
        Some("www.example.com".into())
    );
}

#[test]
fn asn_asdot_round() {
    use iyp_netdata::Asn;
    let a: Asn = "AS3.77".parse().unwrap();
    assert_eq!(a.value(), 3 * 65536 + 77);
    assert_eq!(a.asdot(), "3.77");
    let b: Asn = a.to_string().parse().unwrap();
    assert_eq!(a, b);
}
