//! Property-based tests for the netdata primitives.

use iyp_netdata::ip::{bits_to_ip, ip_to_bits, AddressFamily};
use iyp_netdata::{canonical_ip, Prefix, PrefixTrie};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_ipv4() -> impl Strategy<Value = IpAddr> {
    any::<u32>().prop_map(|v| IpAddr::V4(Ipv4Addr::from(v)))
}

fn arb_ipv6() -> impl Strategy<Value = IpAddr> {
    any::<u128>().prop_map(|v| IpAddr::V6(Ipv6Addr::from(v)))
}

fn arb_ip() -> impl Strategy<Value = IpAddr> {
    prop_oneof![arb_ipv4(), arb_ipv6()]
}

proptest! {
    /// Canonicalisation is idempotent: canon(canon(x)) == canon(x).
    #[test]
    fn canonical_ip_idempotent(ip in arb_ip()) {
        let once = canonical_ip(&ip.to_string()).unwrap();
        let twice = canonical_ip(&once).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// Bit conversion roundtrips for both families.
    #[test]
    fn ip_bits_roundtrip(ip in arb_ip()) {
        let af = match ip { IpAddr::V4(_) => AddressFamily::V4, IpAddr::V6(_) => AddressFamily::V6 };
        prop_assert_eq!(bits_to_ip(ip_to_bits(&ip), af), ip);
    }

    /// A prefix always contains its own network address, and parsing its
    /// canonical text yields an equal prefix.
    #[test]
    fn prefix_contains_network_and_roundtrips(ip in arb_ipv4(), len in 0u8..=32) {
        let p = Prefix::new(ip, len).unwrap();
        prop_assert!(p.contains_ip(&p.network()));
        let back: Prefix = p.canonical().parse().unwrap();
        prop_assert_eq!(p, back);
    }

    /// Same for IPv6.
    #[test]
    fn prefix_v6_roundtrips(ip in arb_ipv6(), len in 0u8..=128) {
        let p = Prefix::new(ip, len).unwrap();
        prop_assert!(p.contains_ip(&p.network()));
        let back: Prefix = p.canonical().parse().unwrap();
        prop_assert_eq!(p, back);
    }

    /// covers() agrees with contains_ip() on the network address, and the
    /// parent always covers the child.
    #[test]
    fn parent_covers_child(ip in arb_ipv4(), len in 1u8..=32) {
        let child = Prefix::new(ip, len).unwrap();
        let parent = child.parent().unwrap();
        prop_assert!(parent.covers(&child));
        prop_assert!(!child.covers(&parent) || parent == child);
    }

    /// Trie longest-match result always contains the queried IP, and is
    /// at least as specific as any other inserted prefix containing it.
    #[test]
    fn trie_lpm_is_correct(
        ips in proptest::collection::vec(arb_ipv4(), 1..20),
        lens in proptest::collection::vec(1u8..=28, 1..20),
        query in arb_ipv4(),
    ) {
        let mut trie = PrefixTrie::new();
        let mut stored = Vec::new();
        for (ip, len) in ips.iter().zip(lens.iter()) {
            let p = Prefix::new(*ip, *len).unwrap();
            trie.insert(&p, ());
            stored.push(p);
        }
        let brute = stored.iter().filter(|p| p.contains_ip(&query)).max_by_key(|p| p.len());
        let got = trie.longest_match_ip(&query).map(|(p, _)| p);
        prop_assert_eq!(got, brute.copied());
    }

    /// Exact get() finds exactly what was inserted.
    #[test]
    fn trie_get_finds_inserted(ip in arb_ipv4(), len in 0u8..=32) {
        let p = Prefix::new(ip, len).unwrap();
        let mut trie = PrefixTrie::new();
        trie.insert(&p, 7usize);
        prop_assert_eq!(trie.get(&p), Some(&7));
    }
}
