//! Entity (node) types — Table 6 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The 24 entity types of the IYP ontology.
///
/// Each entity is identified in the graph by the *key property* returned
/// by [`Entity::key_property`]; e.g. an `AS` node is uniquely identified
/// by its `asn` property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Entity {
    /// Autonomous System, identified by `asn`.
    As,
    /// RIPE Atlas measurement, identified by `id`.
    AtlasMeasurement,
    /// RIPE Atlas probe, identified by `id`.
    AtlasProbe,
    /// Authoritative DNS nameserver, identified by `name`.
    AuthoritativeNameServer,
    /// RIS/RouteViews BGP collector, identified by `name`.
    BgpCollector,
    /// CAIDA IXP identifier, identified by `id`.
    CaidaIxId,
    /// Economy/country, identified by `country_code` (alpha-2).
    Country,
    /// DNS domain name that is not a FQDN, identified by `name`.
    DomainName,
    /// A report approximating a quantity (e.g. population), identified by `name`.
    Estimate,
    /// Co-location facility, identified by `name`.
    Facility,
    /// Fully qualified domain name, identified by `name`.
    HostName,
    /// IPv4/IPv6 address, identified by `ip`.
    Ip,
    /// Internet Exchange Point, loosely identified by `name`.
    Ixp,
    /// A name associated to a resource, identified by `name`.
    Name,
    /// RIR delegated-file opaque id, identified by `id`.
    OpaqueId,
    /// Organization, loosely identified by `name`.
    Organization,
    /// PeeringDB facility id, identified by `id`.
    PeeringdbFacId,
    /// PeeringDB IXP id, identified by `id`.
    PeeringdbIxId,
    /// PeeringDB network id, identified by `id`.
    PeeringdbNetId,
    /// PeeringDB organization id, identified by `id`.
    PeeringdbOrgId,
    /// IPv4/IPv6 prefix, identified by `prefix`.
    Prefix,
    /// A ranking of Internet resources, identified by `name`.
    Ranking,
    /// Output of a classification, identified by `label`.
    Tag,
    /// Full URL, identified by `url`.
    Url,
}

/// All entities, in Table 6 order.
pub const ALL_ENTITIES: [Entity; 24] = [
    Entity::As,
    Entity::AtlasMeasurement,
    Entity::AtlasProbe,
    Entity::AuthoritativeNameServer,
    Entity::BgpCollector,
    Entity::CaidaIxId,
    Entity::Country,
    Entity::DomainName,
    Entity::Estimate,
    Entity::Facility,
    Entity::HostName,
    Entity::Ip,
    Entity::Ixp,
    Entity::Name,
    Entity::OpaqueId,
    Entity::Organization,
    Entity::PeeringdbFacId,
    Entity::PeeringdbIxId,
    Entity::PeeringdbNetId,
    Entity::PeeringdbOrgId,
    Entity::Prefix,
    Entity::Ranking,
    Entity::Tag,
    Entity::Url,
];

impl Entity {
    /// The Neo4j-convention label string (camel-case, upper first).
    pub fn label(self) -> &'static str {
        match self {
            Entity::As => "AS",
            Entity::AtlasMeasurement => "AtlasMeasurement",
            Entity::AtlasProbe => "AtlasProbe",
            Entity::AuthoritativeNameServer => "AuthoritativeNameServer",
            Entity::BgpCollector => "BGPCollector",
            Entity::CaidaIxId => "CaidaIXID",
            Entity::Country => "Country",
            Entity::DomainName => "DomainName",
            Entity::Estimate => "Estimate",
            Entity::Facility => "Facility",
            Entity::HostName => "HostName",
            Entity::Ip => "IP",
            Entity::Ixp => "IXP",
            Entity::Name => "Name",
            Entity::OpaqueId => "OpaqueID",
            Entity::Organization => "Organization",
            Entity::PeeringdbFacId => "PeeringdbFacID",
            Entity::PeeringdbIxId => "PeeringdbIXID",
            Entity::PeeringdbNetId => "PeeringdbNetID",
            Entity::PeeringdbOrgId => "PeeringdbOrgID",
            Entity::Prefix => "Prefix",
            Entity::Ranking => "Ranking",
            Entity::Tag => "Tag",
            Entity::Url => "URL",
        }
    }

    /// The property that uniquely identifies nodes of this entity.
    pub fn key_property(self) -> &'static str {
        match self {
            Entity::As => "asn",
            Entity::AtlasMeasurement | Entity::AtlasProbe => "id",
            Entity::AuthoritativeNameServer => "name",
            Entity::BgpCollector => "name",
            Entity::CaidaIxId => "id",
            Entity::Country => "country_code",
            Entity::DomainName | Entity::HostName => "name",
            Entity::Estimate => "name",
            Entity::Facility => "name",
            Entity::Ip => "ip",
            Entity::Ixp => "name",
            Entity::Name => "name",
            Entity::OpaqueId => "id",
            Entity::Organization => "name",
            Entity::PeeringdbFacId
            | Entity::PeeringdbIxId
            | Entity::PeeringdbNetId
            | Entity::PeeringdbOrgId => "id",
            Entity::Prefix => "prefix",
            Entity::Ranking => "name",
            Entity::Tag => "label",
            Entity::Url => "url",
        }
    }

    /// One-line description (from Table 6).
    pub fn description(self) -> &'static str {
        match self {
            Entity::As => "Autonomous System, uniquely identified with the asn property",
            Entity::AtlasMeasurement => "RIPE Atlas measurement, identified with the id property",
            Entity::AtlasProbe => "RIPE Atlas probe, identified with the id property",
            Entity::AuthoritativeNameServer => {
                "Authoritative DNS nameserver for a set of domain names"
            }
            Entity::BgpCollector => "A RIPE RIS or RouteViews BGP collector",
            Entity::CaidaIxId => "Unique identifier for IXPs from CAIDA's IXP dataset",
            Entity::Country => "Represents an economy, identified by its two/three character code",
            Entity::DomainName => "Any DNS domain name that is not a FQDN",
            Entity::Estimate => "A report that approximates a quantity",
            Entity::Facility => "Co-location facility for IXPs and ASes",
            Entity::HostName => "A fully qualified domain name",
            Entity::Ip => "An IPv4 or IPv6 address, with af property for the address family",
            Entity::Ixp => "An Internet Exchange Point",
            Entity::Name => "A name associated to a network resource",
            Entity::OpaqueId => "Opaque-id value found in RIR delegated files",
            Entity::Organization => "Represents an organization",
            Entity::PeeringdbFacId => "Unique identifier for a Facility as assigned by PeeringDB",
            Entity::PeeringdbIxId => "Unique identifier for an IXP as assigned by PeeringDB",
            Entity::PeeringdbNetId => "Unique identifier for an AS as assigned by PeeringDB",
            Entity::PeeringdbOrgId => {
                "Unique identifier for an Organization as assigned by PeeringDB"
            }
            Entity::Prefix => "An IPv4 or IPv6 prefix, with af property for the address family",
            Entity::Ranking => "A specific ranking of Internet resources",
            Entity::Tag => "The output of a manual or automated classification",
            Entity::Url => "The full URL for an Internet resource",
        }
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Entity {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_ENTITIES
            .iter()
            .find(|e| e.label() == s)
            .copied()
            .ok_or(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_24_entities() {
        assert_eq!(ALL_ENTITIES.len(), 24);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = ALL_ENTITIES.iter().map(|e| e.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 24);
    }

    #[test]
    fn labels_follow_neo4j_convention() {
        for e in ALL_ENTITIES {
            let l = e.label();
            assert!(l.chars().next().unwrap().is_ascii_uppercase(), "{l}");
            assert!(!l.contains('_'), "{l}");
            assert!(!l.contains(' '), "{l}");
        }
    }

    #[test]
    fn roundtrip_from_str() {
        for e in ALL_ENTITIES {
            assert_eq!(e.label().parse::<Entity>().unwrap(), e);
        }
        assert!("NotAnEntity".parse::<Entity>().is_err());
    }

    #[test]
    fn key_properties_match_paper() {
        assert_eq!(Entity::As.key_property(), "asn");
        assert_eq!(Entity::Ip.key_property(), "ip");
        assert_eq!(Entity::Prefix.key_property(), "prefix");
        assert_eq!(Entity::Country.key_property(), "country_code");
        assert_eq!(Entity::Tag.key_property(), "label");
        assert_eq!(Entity::Url.key_property(), "url");
    }

    #[test]
    fn descriptions_nonempty() {
        for e in ALL_ENTITIES {
            assert!(!e.description().is_empty());
        }
    }
}
