//! The IYP ontology (§2.2 of the paper).
//!
//! The ontology is the glue between data providers, the knowledge graph,
//! and users: it enumerates the **entities** (node types, Table 6 of the
//! paper), the **relationships** (link types, Table 7), and the
//! **provenance properties** every imported link carries. This crate also
//! encodes which `(source entity, relationship, destination entity)`
//! triples are meaningful, so a constructed graph can be *validated*
//! against the ontology.
//!
//! Naming follows the Neo4j convention the paper adopts: entities are
//! camel-case beginning upper-case (`DomainName`), relationships are
//! upper-case with underscores (`RESOLVES_TO`).

pub mod entity;
pub mod reference;
pub mod relationship;
pub mod schema;
pub mod validate;

pub use entity::Entity;
pub use reference::Reference;
pub use relationship::Relationship;
pub use schema::{allowed_triples, is_allowed, Triple};
pub use validate::{validate_graph, Violation};
