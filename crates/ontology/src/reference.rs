//! Provenance ("reference") properties — §2.2 of the paper.
//!
//! Every link created while importing a dataset is annotated with six
//! properties documenting the origin of the data. These enable tracking
//! the exact source of every datapoint and selecting/discarding specific
//! datasets at query time (e.g. `[:RESOLVES_TO
//! {reference_name:'openintel.tranco1m'}]` in Listing 3).

use iyp_graph::{Props, Value};
use serde::{Deserialize, Serialize};

/// The six provenance properties stamped on every imported relationship.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reference {
    /// Name of the organization that provides and maintains the dataset.
    pub organization: String,
    /// Unique name for the original dataset, e.g. `bgpkit.pfx2as`.
    pub dataset_name: String,
    /// Link to a human-readable description of the dataset, if available.
    pub info_url: Option<String>,
    /// URL from which the dataset was retrieved.
    pub data_url: Option<String>,
    /// Time the dataset was last modified (unix seconds), if available.
    pub modification_time: Option<i64>,
    /// Time the dataset was imported into IYP (unix seconds).
    pub fetch_time: i64,
}

/// Property key for the providing organization.
pub const KEY_ORG: &str = "reference_org";
/// Property key for the dataset name.
pub const KEY_NAME: &str = "reference_name";
/// Property key for the human-readable info URL.
pub const KEY_URL_INFO: &str = "reference_url_info";
/// Property key for the data URL.
pub const KEY_URL_DATA: &str = "reference_url_data";
/// Property key for the dataset modification time.
pub const KEY_TIME_MODIFICATION: &str = "reference_time_modification";
/// Property key for the fetch time.
pub const KEY_TIME_FETCH: &str = "reference_time_fetch";

impl Reference {
    /// Creates a reference with the two mandatory fields.
    pub fn new(organization: &str, dataset_name: &str, fetch_time: i64) -> Self {
        Reference {
            organization: organization.to_string(),
            dataset_name: dataset_name.to_string(),
            info_url: None,
            data_url: None,
            modification_time: None,
            fetch_time,
        }
    }

    /// Sets the info URL.
    pub fn with_info_url(mut self, url: &str) -> Self {
        self.info_url = Some(url.to_string());
        self
    }

    /// Sets the data URL.
    pub fn with_data_url(mut self, url: &str) -> Self {
        self.data_url = Some(url.to_string());
        self
    }

    /// Sets the modification time.
    pub fn with_modification_time(mut self, t: i64) -> Self {
        self.modification_time = Some(t);
        self
    }

    /// Renders the reference as relationship properties, merged with
    /// `extra` (dataset-specific) properties. Reference keys win over
    /// accidental collisions in `extra`.
    pub fn to_props(&self, extra: Props) -> Props {
        let mut p = extra;
        p.insert(KEY_ORG.into(), Value::Str(self.organization.clone()));
        p.insert(KEY_NAME.into(), Value::Str(self.dataset_name.clone()));
        p.insert(KEY_URL_INFO.into(), self.info_url.clone().into());
        p.insert(KEY_URL_DATA.into(), self.data_url.clone().into());
        p.insert(KEY_TIME_MODIFICATION.into(), self.modification_time.into());
        p.insert(KEY_TIME_FETCH.into(), Value::Int(self.fetch_time));
        p
    }

    /// Parses a reference back out of relationship properties, if the
    /// mandatory keys are present.
    pub fn from_props(props: &Props) -> Option<Reference> {
        Some(Reference {
            organization: props.get(KEY_ORG)?.as_str()?.to_string(),
            dataset_name: props.get(KEY_NAME)?.as_str()?.to_string(),
            info_url: props
                .get(KEY_URL_INFO)
                .and_then(|v| v.as_str())
                .map(String::from),
            data_url: props
                .get(KEY_URL_DATA)
                .and_then(|v| v.as_str())
                .map(String::from),
            modification_time: props.get(KEY_TIME_MODIFICATION).and_then(|v| v.as_int()),
            fetch_time: props.get(KEY_TIME_FETCH)?.as_int()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::props;

    #[test]
    fn roundtrip_through_props() {
        let r = Reference::new("BGPKIT", "bgpkit.pfx2as", 1_714_521_600)
            .with_info_url("https://data.bgpkit.com")
            .with_data_url("https://data.bgpkit.com/pfx2as/latest.json")
            .with_modification_time(1_714_500_000);
        let p = r.to_props(Props::new());
        assert_eq!(Reference::from_props(&p), Some(r));
    }

    #[test]
    fn optional_fields_become_null() {
        let r = Reference::new("IHR", "ihr.hegemony", 1);
        let p = r.to_props(Props::new());
        assert!(p[KEY_URL_INFO].is_null());
        assert!(p[KEY_TIME_MODIFICATION].is_null());
        assert_eq!(p[KEY_NAME].as_str(), Some("ihr.hegemony"));
    }

    #[test]
    fn extra_props_are_preserved() {
        let r = Reference::new("CAIDA", "caida.asrank", 1);
        let p = r.to_props(props([("rank", Value::Int(12))]));
        assert_eq!(p["rank"].as_int(), Some(12));
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn reference_keys_win_over_collisions() {
        let r = Reference::new("CAIDA", "caida.asrank", 1);
        let p = r.to_props(props([(KEY_NAME, Value::Str("spoofed".into()))]));
        assert_eq!(p[KEY_NAME].as_str(), Some("caida.asrank"));
    }

    #[test]
    fn from_props_requires_mandatory_keys() {
        assert_eq!(Reference::from_props(&Props::new()), None);
    }
}
