//! Relationship types — Table 7 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The 24 relationship types of the IYP ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Relationship {
    /// CNAME equivalence between two HostNames.
    AliasOf,
    /// RIR allocation of a resource to a holder, or an Atlas probe's IP.
    Assigned,
    /// Resource unallocated and available at an RIR.
    Available,
    /// Resource classified with a Tag.
    Categorized,
    /// Any node related to its Country.
    Country,
    /// Reachability of an AS/Prefix depends on an AS.
    DependsOn,
    /// Identifier assigned by an external organization (e.g. PeeringDB).
    ExternalId,
    /// Geographical or topological location of a resource.
    LocatedIn,
    /// Entity in charge of a resource (AS→Organization, DomainName→NS).
    ManagedBy,
    /// Membership (e.g. AS member of IXP).
    MemberOf,
    /// Usual or registered name of an entity.
    Name,
    /// Prefix originated by an AS in BGP.
    Originate,
    /// Zone cut between parent and child DomainNames.
    Parent,
    /// One entity is part of another (IP∈Prefix, HostName∈DomainName).
    PartOf,
    /// BGP peering between ASes or AS↔collector.
    PeersWith,
    /// AS hosts a fraction of a country's population, or country population.
    Population,
    /// Top AS/Country querying a DomainName (Cloudflare radar).
    QueriedFrom,
    /// Resource appears in a Ranking (with rank property).
    Rank,
    /// Resource reserved by RIRs or IANA.
    Reserved,
    /// HostName resolves to an IP address.
    ResolvesTo,
    /// RPKI ROA: AS authorized to originate a Prefix.
    RouteOriginAuthorization,
    /// Two ASes/Organizations are the same entity.
    SiblingOf,
    /// Atlas measurement probes a resource.
    Target,
    /// Common website for a resource.
    Website,
}

/// All relationships, in Table 7 order.
pub const ALL_RELATIONSHIPS: [Relationship; 24] = [
    Relationship::AliasOf,
    Relationship::Assigned,
    Relationship::Available,
    Relationship::Categorized,
    Relationship::Country,
    Relationship::DependsOn,
    Relationship::ExternalId,
    Relationship::LocatedIn,
    Relationship::ManagedBy,
    Relationship::MemberOf,
    Relationship::Name,
    Relationship::Originate,
    Relationship::Parent,
    Relationship::PartOf,
    Relationship::PeersWith,
    Relationship::Population,
    Relationship::QueriedFrom,
    Relationship::Rank,
    Relationship::Reserved,
    Relationship::ResolvesTo,
    Relationship::RouteOriginAuthorization,
    Relationship::SiblingOf,
    Relationship::Target,
    Relationship::Website,
];

impl Relationship {
    /// The Neo4j-convention type string (upper-case, underscores).
    pub fn type_name(self) -> &'static str {
        match self {
            Relationship::AliasOf => "ALIAS_OF",
            Relationship::Assigned => "ASSIGNED",
            Relationship::Available => "AVAILABLE",
            Relationship::Categorized => "CATEGORIZED",
            Relationship::Country => "COUNTRY",
            Relationship::DependsOn => "DEPENDS_ON",
            Relationship::ExternalId => "EXTERNAL_ID",
            Relationship::LocatedIn => "LOCATED_IN",
            Relationship::ManagedBy => "MANAGED_BY",
            Relationship::MemberOf => "MEMBER_OF",
            Relationship::Name => "NAME",
            Relationship::Originate => "ORIGINATE",
            Relationship::Parent => "PARENT",
            Relationship::PartOf => "PART_OF",
            Relationship::PeersWith => "PEERS_WITH",
            Relationship::Population => "POPULATION",
            Relationship::QueriedFrom => "QUERIED_FROM",
            Relationship::Rank => "RANK",
            Relationship::Reserved => "RESERVED",
            Relationship::ResolvesTo => "RESOLVES_TO",
            Relationship::RouteOriginAuthorization => "ROUTE_ORIGIN_AUTHORIZATION",
            Relationship::SiblingOf => "SIBLING_OF",
            Relationship::Target => "TARGET",
            Relationship::Website => "WEBSITE",
        }
    }

    /// One-line description (from Table 7).
    pub fn description(self) -> &'static str {
        match self {
            Relationship::AliasOf => "Equivalent to the CNAME record in DNS; relates two HostNames",
            Relationship::Assigned => {
                "RIR allocation of a resource to a holder, or the assigned IP of an AtlasProbe"
            }
            Relationship::Available => "Resource not allocated and available at the related RIR",
            Relationship::Categorized => "Resource classified according to the related Tag",
            Relationship::Country => "Relates a node to its corresponding country",
            Relationship::DependsOn => "Reachability of the AS/Prefix depends on a certain AS",
            Relationship::ExternalId => "Identifier commonly used by an external organization",
            Relationship::LocatedIn => "Location at a geographical or topological place",
            Relationship::ManagedBy => "Entity in charge of a network resource",
            Relationship::MemberOf => "Membership to an organization (e.g. AS member of IXP)",
            Relationship::Name => "Relates an entity to its usual or registered name",
            Relationship::Originate => "Prefix seen as originated from that AS in BGP",
            Relationship::Parent => "Zone cut between the parent zone and the more specific zone",
            Relationship::PartOf => "One entity is a part of another",
            Relationship::PeersWith => "Connection between two ASes as seen in BGP",
            Relationship::Population => "AS hosts a fraction of the population of a country",
            Relationship::QueriedFrom => {
                "AS/Country among the top querying the DomainName (Cloudflare radar)"
            }
            Relationship::Rank => "Resource appears in the Ranking; rank property gives position",
            Relationship::Reserved => "AS or Prefix reserved for a certain purpose by RIRs/IANA",
            Relationship::ResolvesTo => "A DNS resolution resolved the corresponding IP",
            Relationship::RouteOriginAuthorization => {
                "AS authorized to originate the Prefix by RPKI"
            }
            Relationship::SiblingOf => "ASes or Organizations representing the same entity",
            Relationship::Target => "Atlas measurement set up to probe that resource",
            Relationship::Website => "Common website for the resource",
        }
    }
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

impl FromStr for Relationship {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_RELATIONSHIPS
            .iter()
            .find(|r| r.type_name() == s)
            .copied()
            .ok_or(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_24_relationships() {
        assert_eq!(ALL_RELATIONSHIPS.len(), 24);
    }

    #[test]
    fn names_follow_neo4j_convention() {
        for r in ALL_RELATIONSHIPS {
            let n = r.type_name();
            assert!(n.chars().all(|c| c.is_ascii_uppercase() || c == '_'), "{n}");
        }
    }

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut names: Vec<&str> = ALL_RELATIONSHIPS.iter().map(|r| r.type_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 24);
        for r in ALL_RELATIONSHIPS {
            assert_eq!(r.type_name().parse::<Relationship>().unwrap(), r);
        }
        assert!("NOT_A_REL".parse::<Relationship>().is_err());
    }

    #[test]
    fn descriptions_nonempty() {
        for r in ALL_RELATIONSHIPS {
            assert!(!r.description().is_empty());
        }
    }
}
