//! Allowed `(source, relationship, destination)` triples.
//!
//! The ontology not only names entities and relationships but constrains
//! which combinations are meaningful (e.g. `ORIGINATE` connects an `AS`
//! to a `Prefix`, never a `HostName` to a `Country`). The triples below
//! are drawn from Table 7's descriptions and the Figure 4 walk-through.

use crate::entity::Entity;
use crate::relationship::Relationship;

/// An allowed schema triple, in canonical direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triple {
    /// Source entity.
    pub src: Entity,
    /// Relationship type.
    pub rel: Relationship,
    /// Destination entity.
    pub dst: Entity,
}

const fn t(src: Entity, rel: Relationship, dst: Entity) -> Triple {
    Triple { src, rel, dst }
}

/// The full triple catalogue.
pub const TRIPLES: &[Triple] = &[
    // DNS aliasing.
    t(Entity::HostName, Relationship::AliasOf, Entity::HostName),
    // RIR delegated files.
    t(Entity::As, Relationship::Assigned, Entity::OpaqueId),
    t(Entity::Prefix, Relationship::Assigned, Entity::OpaqueId),
    t(Entity::AtlasProbe, Relationship::Assigned, Entity::Ip),
    t(Entity::As, Relationship::Available, Entity::OpaqueId),
    t(Entity::Prefix, Relationship::Available, Entity::OpaqueId),
    t(Entity::As, Relationship::Reserved, Entity::OpaqueId),
    t(Entity::Prefix, Relationship::Reserved, Entity::OpaqueId),
    // Classification.
    t(Entity::As, Relationship::Categorized, Entity::Tag),
    t(Entity::Prefix, Relationship::Categorized, Entity::Tag),
    t(Entity::Url, Relationship::Categorized, Entity::Tag),
    // Geography / registration.
    t(Entity::As, Relationship::Country, Entity::Country),
    t(Entity::Prefix, Relationship::Country, Entity::Country),
    t(Entity::Organization, Relationship::Country, Entity::Country),
    t(Entity::Ixp, Relationship::Country, Entity::Country),
    t(Entity::Facility, Relationship::Country, Entity::Country),
    t(Entity::AtlasProbe, Relationship::Country, Entity::Country),
    t(Entity::OpaqueId, Relationship::Country, Entity::Country),
    t(Entity::DomainName, Relationship::Country, Entity::Country),
    // Inter-domain dependency (AS hegemony), country dependency, and
    // the UTwente DNS dependency graph (§5.2).
    t(Entity::As, Relationship::DependsOn, Entity::As),
    t(Entity::Prefix, Relationship::DependsOn, Entity::As),
    t(Entity::Country, Relationship::DependsOn, Entity::As),
    t(
        Entity::DomainName,
        Relationship::DependsOn,
        Entity::DomainName,
    ),
    // External identifiers.
    t(Entity::Ixp, Relationship::ExternalId, Entity::CaidaIxId),
    t(Entity::Ixp, Relationship::ExternalId, Entity::PeeringdbIxId),
    t(Entity::As, Relationship::ExternalId, Entity::PeeringdbNetId),
    t(
        Entity::Organization,
        Relationship::ExternalId,
        Entity::PeeringdbOrgId,
    ),
    t(
        Entity::Facility,
        Relationship::ExternalId,
        Entity::PeeringdbFacId,
    ),
    // Location.
    t(Entity::Ixp, Relationship::LocatedIn, Entity::Facility),
    t(Entity::As, Relationship::LocatedIn, Entity::Facility),
    t(Entity::AtlasProbe, Relationship::LocatedIn, Entity::As),
    t(Entity::AtlasProbe, Relationship::LocatedIn, Entity::Country),
    t(Entity::Facility, Relationship::LocatedIn, Entity::Country),
    // Management.
    t(Entity::As, Relationship::ManagedBy, Entity::Organization),
    t(Entity::Ixp, Relationship::ManagedBy, Entity::Organization),
    t(
        Entity::Prefix,
        Relationship::ManagedBy,
        Entity::Organization,
    ),
    t(
        Entity::DomainName,
        Relationship::ManagedBy,
        Entity::AuthoritativeNameServer,
    ),
    // IXP peering LANs and rDNS delegations.
    t(Entity::Prefix, Relationship::ManagedBy, Entity::Ixp),
    t(
        Entity::Prefix,
        Relationship::ManagedBy,
        Entity::AuthoritativeNameServer,
    ),
    // Membership.
    t(Entity::As, Relationship::MemberOf, Entity::Ixp),
    // Naming.
    t(Entity::As, Relationship::Name, Entity::Name),
    t(Entity::Organization, Relationship::Name, Entity::Name),
    t(Entity::Ixp, Relationship::Name, Entity::Name),
    t(Entity::Country, Relationship::Name, Entity::Name),
    // Routing.
    t(Entity::As, Relationship::Originate, Entity::Prefix),
    t(Entity::As, Relationship::PeersWith, Entity::As),
    t(Entity::As, Relationship::PeersWith, Entity::BgpCollector),
    t(
        Entity::As,
        Relationship::RouteOriginAuthorization,
        Entity::Prefix,
    ),
    // DNS hierarchy and resolution.
    t(Entity::DomainName, Relationship::Parent, Entity::DomainName),
    t(Entity::Ip, Relationship::PartOf, Entity::Prefix),
    t(Entity::Prefix, Relationship::PartOf, Entity::Prefix),
    t(Entity::HostName, Relationship::PartOf, Entity::DomainName),
    t(Entity::Url, Relationship::PartOf, Entity::HostName),
    t(
        Entity::AtlasProbe,
        Relationship::PartOf,
        Entity::AtlasMeasurement,
    ),
    t(Entity::HostName, Relationship::ResolvesTo, Entity::Ip),
    t(
        Entity::AuthoritativeNameServer,
        Relationship::ResolvesTo,
        Entity::Ip,
    ),
    // Population estimates.
    t(Entity::As, Relationship::Population, Entity::Country),
    t(Entity::Country, Relationship::Population, Entity::Estimate),
    // Query statistics (Cloudflare radar).
    t(Entity::DomainName, Relationship::QueriedFrom, Entity::As),
    t(
        Entity::DomainName,
        Relationship::QueriedFrom,
        Entity::Country,
    ),
    // Rankings.
    t(Entity::As, Relationship::Rank, Entity::Ranking),
    t(Entity::DomainName, Relationship::Rank, Entity::Ranking),
    t(Entity::HostName, Relationship::Rank, Entity::Ranking),
    // Siblings.
    t(Entity::As, Relationship::SiblingOf, Entity::As),
    t(
        Entity::Organization,
        Relationship::SiblingOf,
        Entity::Organization,
    ),
    // Atlas measurements.
    t(Entity::AtlasMeasurement, Relationship::Target, Entity::Ip),
    t(
        Entity::AtlasMeasurement,
        Relationship::Target,
        Entity::HostName,
    ),
    t(Entity::AtlasMeasurement, Relationship::Target, Entity::As),
    // Websites.
    t(Entity::Url, Relationship::Website, Entity::Organization),
    t(Entity::Url, Relationship::Website, Entity::Facility),
    t(Entity::Url, Relationship::Website, Entity::Ixp),
    t(Entity::Url, Relationship::Website, Entity::As),
];

/// All allowed triples for a given relationship.
pub fn allowed_triples(rel: Relationship) -> impl Iterator<Item = &'static Triple> {
    TRIPLES.iter().filter(move |x| x.rel == rel)
}

/// True if `(src, rel, dst)` is allowed in the canonical direction.
pub fn is_allowed(src: Entity, rel: Relationship, dst: Entity) -> bool {
    TRIPLES
        .iter()
        .any(|x| x.src == src && x.rel == rel && x.dst == dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::ALL_RELATIONSHIPS;

    #[test]
    fn every_relationship_has_at_least_one_triple() {
        for r in ALL_RELATIONSHIPS {
            assert!(allowed_triples(r).count() > 0, "{r} has no triples");
        }
    }

    #[test]
    fn paper_examples_are_allowed() {
        // §2.2: "An AS is managed by an organization; An AS originates a
        // prefix in BGP; A hostname resolves to an IP address."
        assert!(is_allowed(
            Entity::As,
            Relationship::ManagedBy,
            Entity::Organization
        ));
        assert!(is_allowed(
            Entity::As,
            Relationship::Originate,
            Entity::Prefix
        ));
        assert!(is_allowed(
            Entity::HostName,
            Relationship::ResolvesTo,
            Entity::Ip
        ));
    }

    #[test]
    fn nonsense_is_rejected() {
        assert!(!is_allowed(
            Entity::Country,
            Relationship::Originate,
            Entity::Prefix
        ));
        assert!(!is_allowed(
            Entity::HostName,
            Relationship::PeersWith,
            Entity::Ip
        ));
    }

    #[test]
    fn triples_are_unique() {
        for (i, a) in TRIPLES.iter().enumerate() {
            for b in &TRIPLES[i + 1..] {
                assert!(
                    !(a.src == b.src && a.rel == b.rel && a.dst == b.dst),
                    "{a:?} duplicated"
                );
            }
        }
    }
}

#[cfg(test)]
mod coverage_tests {
    use super::*;
    use crate::entity::ALL_ENTITIES;

    #[test]
    fn every_entity_appears_in_some_triple() {
        for e in ALL_ENTITIES {
            let used = TRIPLES.iter().any(|t| t.src == e || t.dst == e);
            assert!(used, "{e} appears in no schema triple");
        }
    }

    #[test]
    fn identity_style_entities_are_only_destinations() {
        // External-id entities are pure identifiers: nothing should
        // originate from them.
        for e in [
            Entity::CaidaIxId,
            Entity::PeeringdbFacId,
            Entity::PeeringdbIxId,
            Entity::PeeringdbNetId,
            Entity::PeeringdbOrgId,
            Entity::Name,
            Entity::Tag,
        ] {
            assert!(
                TRIPLES.iter().all(|t| t.src != e),
                "{e} should never be a triple source"
            );
        }
    }
}
