//! Graph-against-ontology validation.
//!
//! Used by the pipeline's final consistency check and by tests: every
//! relationship in the constructed knowledge graph must use an ontology
//! relationship type, connect entities in an allowed combination, and
//! carry the mandatory provenance properties; every node with an ontology
//! label must carry its identity key property.

use crate::entity::Entity;
use crate::reference::{KEY_NAME, KEY_ORG, KEY_TIME_FETCH};
use crate::relationship::Relationship;
use crate::schema::is_allowed;
use iyp_graph::{Graph, NodeId, RelId};

/// A single validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A relationship uses a type that is not in the ontology.
    UnknownRelType { rel: RelId, type_name: String },
    /// A relationship connects entities in a combination the ontology
    /// does not allow (in either direction).
    DisallowedTriple {
        rel: RelId,
        src_labels: Vec<String>,
        type_name: String,
        dst_labels: Vec<String>,
    },
    /// A relationship is missing one of the mandatory provenance keys.
    MissingReference { rel: RelId, key: &'static str },
    /// A node with an ontology label is missing its identity property.
    MissingKeyProperty {
        node: NodeId,
        label: String,
        key: &'static str,
    },
}

/// Validates the graph against the ontology, returning all violations.
///
/// Labels that are not ontology entities (e.g. study-specific tags added
/// in a local instance, which §6.1 encourages) are ignored, matching the
/// paper's "extend the ontology or store as properties" policy.
pub fn validate_graph(graph: &Graph) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Node identity keys.
    for node in graph.all_nodes() {
        for label_id in &node.labels {
            let label = graph.symbols().label_name(*label_id);
            if let Ok(entity) = label.parse::<Entity>() {
                let key = entity.key_property();
                if node.prop(key).is_none() {
                    violations.push(Violation::MissingKeyProperty {
                        node: node.id,
                        label: label.to_string(),
                        key,
                    });
                }
            }
        }
    }

    // Relationship types, triples, and provenance.
    for rel in graph.all_rels() {
        let type_name = graph.symbols().rel_type_name(rel.rel_type).to_string();
        let Ok(ontology_rel) = type_name.parse::<Relationship>() else {
            violations.push(Violation::UnknownRelType {
                rel: rel.id,
                type_name,
            });
            continue;
        };

        let entities_of = |node: NodeId| -> Vec<Entity> {
            graph
                .node(node)
                .map(|n| {
                    n.labels
                        .iter()
                        .filter_map(|l| graph.symbols().label_name(*l).parse::<Entity>().ok())
                        .collect()
                })
                .unwrap_or_default()
        };
        let src_entities = entities_of(rel.src);
        let dst_entities = entities_of(rel.dst);
        let ok = src_entities.iter().any(|s| {
            dst_entities
                .iter()
                .any(|d| is_allowed(*s, ontology_rel, *d) || is_allowed(*d, ontology_rel, *s))
        });
        if !ok {
            let labels_of = |node: NodeId| -> Vec<String> {
                graph
                    .node(node)
                    .map(|n| {
                        n.labels
                            .iter()
                            .map(|l| graph.symbols().label_name(*l).to_string())
                            .collect()
                    })
                    .unwrap_or_default()
            };
            violations.push(Violation::DisallowedTriple {
                rel: rel.id,
                src_labels: labels_of(rel.src),
                type_name: type_name.clone(),
                dst_labels: labels_of(rel.dst),
            });
        }

        for key in [KEY_ORG, KEY_NAME, KEY_TIME_FETCH] {
            if rel.prop(key).is_none() {
                violations.push(Violation::MissingReference { rel: rel.id, key });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Reference;
    use iyp_graph::{props, Props, Value};

    fn reference_props() -> Props {
        Reference::new("TestOrg", "test.dataset", 1_714_521_600).to_props(Props::new())
    }

    #[test]
    fn valid_graph_passes() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, Props::new());
        let p = g.merge_node("Prefix", "prefix", "2001:db8::/32", Props::new());
        g.create_rel(a, "ORIGINATE", p, reference_props()).unwrap();
        assert!(validate_graph(&g).is_empty());
    }

    #[test]
    fn reversed_direction_is_accepted() {
        // Queries are undirected; validation accepts either orientation.
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, Props::new());
        let p = g.merge_node("Prefix", "prefix", "2001:db8::/32", Props::new());
        g.create_rel(p, "ORIGINATE", a, reference_props()).unwrap();
        assert!(validate_graph(&g).is_empty());
    }

    #[test]
    fn unknown_rel_type_is_flagged() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        let b = g.merge_node("AS", "asn", 2u32, Props::new());
        g.create_rel(a, "FRIENDS_WITH", b, reference_props())
            .unwrap();
        let v = validate_graph(&g);
        assert!(matches!(v[0], Violation::UnknownRelType { .. }));
    }

    #[test]
    fn disallowed_triple_is_flagged() {
        let mut g = Graph::new();
        let c = g.merge_node("Country", "country_code", "JP", Props::new());
        let p = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        g.create_rel(c, "ORIGINATE", p, reference_props()).unwrap();
        let v = validate_graph(&g);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DisallowedTriple { .. })));
    }

    #[test]
    fn missing_reference_is_flagged() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 1u32, Props::new());
        let p = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        g.create_rel(a, "ORIGINATE", p, Props::new()).unwrap();
        let v = validate_graph(&g);
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, Violation::MissingReference { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn missing_key_property_is_flagged() {
        let mut g = Graph::new();
        g.create_node(&["AS"], props([("name", Value::Str("no asn".into()))]));
        let v = validate_graph(&g);
        assert!(matches!(
            v[0],
            Violation::MissingKeyProperty { key: "asn", .. }
        ));
    }

    #[test]
    fn non_ontology_labels_are_ignored() {
        let mut g = Graph::new();
        let a = g.create_node(&["MyStudyMarker"], Props::new());
        let b = g.merge_node("AS", "asn", 1u32, Props::new());
        // Relationship with an ontology type between a non-ontology node
        // and an AS: the triple check can't match, but unknown labels on
        // *nodes* alone don't violate anything.
        let _ = (a, b);
        assert!(validate_graph(&g).is_empty());
    }

    #[test]
    fn multi_label_nodes_use_any_matching_entity() {
        // AuthoritativeNameServer nodes also carry HostName in IYP.
        let mut g = Graph::new();
        let ns = g.merge_node("HostName", "name", "ns1.example.com", Props::new());
        g.add_label(ns, "AuthoritativeNameServer").unwrap();
        let ip = g.merge_node("IP", "ip", "192.0.2.1", Props::new());
        g.create_rel(ns, "RESOLVES_TO", ip, reference_props())
            .unwrap();
        assert!(validate_graph(&g).is_empty());
    }
}
