//! Full-graph construction.

use crate::postprocess;
use crate::report::BuildReport;
use iyp_crawlers::{import_dataset, CrawlError};
use iyp_graph::{Graph, GraphStats};
use iyp_ontology::validate_graph;
use iyp_simnet::datasets::ALL_DATASETS;
use iyp_simnet::{DatasetId, World};
use std::time::Instant;

/// Options for a build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Datasets to import; defaults to all 46.
    pub datasets: Vec<DatasetId>,
    /// Run the refinement passes (IP→Prefix LPM, covering prefixes,
    /// URL→HostName, `af` props, country completion).
    pub refine: bool,
    /// Run the final ontology validation.
    pub validate: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            datasets: ALL_DATASETS.to_vec(),
            refine: true,
            validate: true,
        }
    }
}

impl BuildOptions {
    /// Build with only the named datasets (plus refinement).
    pub fn only(datasets: &[DatasetId]) -> Self {
        BuildOptions {
            datasets: datasets.to_vec(),
            ..Default::default()
        }
    }

    /// Disable refinement (used by the refinement ablation bench).
    pub fn without_refinement(mut self) -> Self {
        self.refine = false;
        self
    }
}

/// Builds the IYP knowledge graph from a synthetic world.
///
/// Dataset texts are rendered concurrently (they are independent pure
/// functions of the world); imports run serially in Table 8 order so
/// the build is deterministic.
pub fn build_graph(
    world: &World,
    options: &BuildOptions,
) -> Result<(Graph, BuildReport), CrawlError> {
    let build_start = Instant::now();
    let _span = iyp_telemetry::span(iyp_telemetry::names::BUILD_SECONDS);
    // Render all dataset texts in parallel.
    let mut texts: Vec<(DatasetId, String)> = Vec::with_capacity(options.datasets.len());
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = options
            .datasets
            .iter()
            .map(|&id| s.spawn(move |_| (id, world.render_dataset(id))))
            .collect();
        for h in handles {
            texts.push(h.join().expect("render thread panicked"));
        }
    })
    .expect("crossbeam scope");

    // Deterministic import order.
    texts.sort_by_key(|(id, _)| *id);

    let mut graph = Graph::new();
    let mut datasets = Vec::with_capacity(texts.len());
    let mut dataset_timings = Vec::with_capacity(texts.len());
    for (id, text) in &texts {
        let started = Instant::now();
        let links = import_dataset(&mut graph, *id, text, world.fetch_time)?;
        let elapsed = started.elapsed();
        datasets.push((id.name().to_string(), links));
        dataset_timings.push((id.name().to_string(), elapsed));
        if iyp_telemetry::enabled() {
            let name = iyp_telemetry::labeled(
                iyp_telemetry::names::BUILD_IMPORT_SECONDS,
                &[("dataset", id.name())],
            );
            iyp_telemetry::histogram(&name).record(elapsed);
            iyp_telemetry::counter(iyp_telemetry::names::BUILD_LINKS_TOTAL).add(links as u64);
        }
    }

    let mut refinement = Vec::new();
    let mut refinement_timings = Vec::new();
    if options.refine {
        let pass = |name: &'static str,
                    links: usize,
                    started: Instant,
                    refinement: &mut Vec<(&'static str, usize)>,
                    timings: &mut Vec<(&'static str, std::time::Duration)>| {
            let elapsed = started.elapsed();
            refinement.push((name, links));
            timings.push((name, elapsed));
            if iyp_telemetry::enabled() {
                let labeled = iyp_telemetry::labeled(
                    iyp_telemetry::names::BUILD_REFINE_SECONDS,
                    &[("pass", name)],
                );
                iyp_telemetry::histogram(&labeled).record(elapsed);
            }
        };
        let t = Instant::now();
        let n = postprocess::add_address_families(&mut graph);
        pass(
            "address families (af)",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
        let t = Instant::now();
        let n = postprocess::link_ips_to_prefixes(&mut graph, world.fetch_time)?;
        pass(
            "IP -> Prefix (longest match)",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
        let t = Instant::now();
        let n = postprocess::link_covering_prefixes(&mut graph, world.fetch_time)?;
        pass(
            "Prefix -> covering Prefix",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
        let t = Instant::now();
        let n = postprocess::link_urls_to_hostnames(&mut graph, world.fetch_time)?;
        pass(
            "URL -> HostName",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
        let t = Instant::now();
        let n = postprocess::complete_countries(&mut graph);
        pass(
            "country completion",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
    }

    let violations = if options.validate {
        validate_graph(&graph).len()
    } else {
        0
    };
    let stats = GraphStats::compute(&graph);
    if iyp_telemetry::enabled() {
        iyp_telemetry::gauge(iyp_telemetry::names::GRAPH_NODES).set(graph.node_count() as i64);
        iyp_telemetry::gauge(iyp_telemetry::names::GRAPH_RELS).set(graph.rel_count() as i64);
    }
    Ok((
        graph,
        BuildReport {
            datasets,
            refinement,
            stats,
            violations,
            dataset_timings,
            refinement_timings,
            total_time: build_start.elapsed(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_simnet::SimConfig;

    #[test]
    fn full_build_is_ontology_clean() {
        let world = World::generate(&SimConfig::tiny(), 42);
        let (graph, report) = build_graph(&world, &BuildOptions::default()).unwrap();
        assert_eq!(report.violations, 0, "ontology violations in full build");
        assert_eq!(report.datasets.len(), 46);
        // Every dataset contributed at least one link.
        for (name, links) in &report.datasets {
            assert!(*links > 0, "{name} created no links");
        }
        assert!(report.refinement_links() > 0);
        assert!(graph.node_count() > 500);
        assert!(graph.rel_count() > graph.node_count());
        // The report renders.
        let text = report.to_string();
        assert!(text.contains("bgpkit.pfx2as"));
        assert!(text.contains("refinement"));
    }

    #[test]
    fn dataset_subset_build() {
        let world = World::generate(&SimConfig::tiny(), 42);
        let opts = BuildOptions::only(&[DatasetId::TrancoList, DatasetId::BgpkitPfx2as]);
        let (graph, report) = build_graph(&world, &opts).unwrap();
        assert_eq!(report.datasets.len(), 2);
        assert_eq!(report.violations, 0);
        assert!(graph.label_count("DomainName") > 0);
        assert!(graph.label_count("Prefix") > 0);
    }

    #[test]
    fn refinement_can_be_disabled() {
        let world = World::generate(&SimConfig::tiny(), 42);
        let opts = BuildOptions::only(&[DatasetId::OpenintelTranco1m, DatasetId::BgpkitPfx2as])
            .without_refinement();
        let (_, report) = build_graph(&world, &opts).unwrap();
        assert!(report.refinement.is_empty());
        assert_eq!(report.refinement_links(), 0);
    }

    #[test]
    fn builds_are_deterministic() {
        let world = World::generate(&SimConfig::tiny(), 42);
        let (g1, r1) = build_graph(&world, &BuildOptions::default()).unwrap();
        let (g2, r2) = build_graph(&world, &BuildOptions::default()).unwrap();
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.rel_count(), g2.rel_count());
        assert_eq!(r1.datasets, r2.datasets);
    }
}
