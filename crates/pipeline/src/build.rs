//! Full-graph construction.

use crate::postprocess;
use crate::report::{BuildReport, DatasetFailure, QuarantineEntry};
use iyp_crawlers::{import_dataset_with, CrawlError, ImportPolicy};
use iyp_graph::{Graph, GraphStats};
use iyp_ontology::validate_graph;
use iyp_simnet::datasets::ALL_DATASETS;
use iyp_simnet::{DatasetId, FaultPlan, World};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Options for a build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Datasets to import; defaults to all 46.
    pub datasets: Vec<DatasetId>,
    /// Run the refinement passes (IP→Prefix LPM, covering prefixes,
    /// URL→HostName, `af` props, country completion).
    pub refine: bool,
    /// Run the final ontology validation.
    pub validate: bool,
    /// Fault-injection plan applied to simulated fetches and rendered
    /// texts (chaos testing). `None` builds cleanly.
    pub chaos: Option<FaultPlan>,
    /// Fetch retries after a transient failure (attempts = retries + 1).
    pub max_retries: u32,
    /// Base backoff slept between fetch attempts; doubles per retry.
    /// Tests set this to zero.
    pub retry_backoff: Duration,
    /// Record-quarantine policy handed to every importer.
    pub import_policy: ImportPolicy,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            datasets: ALL_DATASETS.to_vec(),
            refine: true,
            validate: true,
            chaos: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            import_policy: ImportPolicy::default(),
        }
    }
}

impl BuildOptions {
    /// Build with only the named datasets (plus refinement).
    pub fn only(datasets: &[DatasetId]) -> Self {
        BuildOptions {
            datasets: datasets.to_vec(),
            ..Default::default()
        }
    }

    /// Disable refinement (used by the refinement ablation bench).
    pub fn without_refinement(mut self) -> Self {
        self.refine = false;
        self
    }

    /// Inject faults from a [`FaultPlan`] (chaos testing).
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }
}

/// Renders a panic payload as a short message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Simulated fetch with bounded retries. Returns the retries spent on
/// success, or `(final cause, retries spent)` when the dataset could
/// not be fetched within the retry budget.
fn simulate_fetch(
    plan: &FaultPlan,
    id: DatasetId,
    max_retries: u32,
    backoff: Duration,
) -> Result<u32, (String, u32)> {
    let mut retries = 0;
    loop {
        let attempt = retries + 1;
        match plan.fetch_outcome(id, attempt) {
            Ok(()) => return Ok(retries),
            Err(cause) if retries >= max_retries => return Err((cause, retries)),
            Err(_) => {
                retries += 1;
                if iyp_telemetry::enabled() {
                    iyp_telemetry::counter(iyp_telemetry::names::BUILD_RETRIES_TOTAL).incr();
                }
                if !backoff.is_zero() {
                    // Exponential backoff, capped at 16× the base.
                    std::thread::sleep(backoff * 1u32.wrapping_shl(retries.min(4) - 1));
                }
            }
        }
    }
}

/// Builds the IYP knowledge graph from a synthetic world.
///
/// Dataset texts are rendered concurrently (they are independent pure
/// functions of the world); imports run serially in Table 8 order so
/// the build is deterministic.
///
/// Each dataset is isolated: a renderer or importer that panics or
/// returns an error fails only its own dataset, which is recorded in
/// the report's `failed`/`skipped` sections while the build continues.
/// Links a failing importer created before its error stay in the graph
/// (imports are best-effort, matching the production IYP's "import
/// as-is" stance). Only refinement and validation errors abort the
/// build — those indicate bugs, not bad data.
pub fn build_graph(
    world: &World,
    options: &BuildOptions,
) -> Result<(Graph, BuildReport), CrawlError> {
    let build_start = Instant::now();
    let _span = iyp_telemetry::span(iyp_telemetry::names::BUILD_SECONDS);
    // Render all dataset texts in parallel; a panicking renderer is
    // caught on its own thread and fails only its dataset.
    let mut texts: Vec<(DatasetId, Result<String, String>)> =
        Vec::with_capacity(options.datasets.len());
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = options
            .datasets
            .iter()
            .map(|&id| {
                (
                    id,
                    s.spawn(move |_| {
                        catch_unwind(AssertUnwindSafe(|| world.render_dataset(id)))
                            .map_err(|p| format!("render panicked: {}", panic_message(p)))
                    }),
                )
            })
            .collect();
        for (id, h) in handles {
            let rendered = h
                .join()
                .unwrap_or_else(|p| Err(format!("render thread died: {}", panic_message(p))));
            texts.push((id, rendered));
        }
    })
    .expect("crossbeam scope");

    // Deterministic import order.
    texts.sort_by_key(|(id, _)| *id);

    let mut graph = Graph::new();
    let mut datasets = Vec::with_capacity(texts.len());
    let mut dataset_timings = Vec::with_capacity(texts.len());
    let mut failed: Vec<DatasetFailure> = Vec::new();
    let mut skipped: Vec<DatasetFailure> = Vec::new();
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    for (id, rendered) in &texts {
        let name = id.name().to_string();
        let started = Instant::now();

        // Simulated fetch: transient chaos failures are retried with
        // bounded backoff; a dataset that never fetches is skipped.
        let mut retries = 0;
        if let Some(plan) = &options.chaos {
            match simulate_fetch(plan, *id, options.max_retries, options.retry_backoff) {
                Ok(r) => retries = r,
                Err((cause, retries)) => {
                    skipped.push(DatasetFailure {
                        dataset: name,
                        cause,
                        retries,
                    });
                    continue;
                }
            }
        }

        let text = match rendered {
            Ok(t) => t,
            Err(cause) => {
                failed.push(DatasetFailure {
                    dataset: name,
                    cause: cause.clone(),
                    retries,
                });
                continue;
            }
        };
        // Chaos corruption of the fetched text, when planned.
        let corrupted;
        let text: &str = match &options.chaos {
            Some(plan) if plan.is_corrupted(*id) => {
                corrupted = plan.corrupt(*id, text);
                &corrupted
            }
            _ => text,
        };

        // Isolated import: a panicking or failing importer loses only
        // its own dataset.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            import_dataset_with(
                &mut graph,
                *id,
                text,
                world.fetch_time,
                options.import_policy,
            )
        }));
        let elapsed = started.elapsed();
        let links = match outcome {
            Ok(Ok(out)) => {
                if out.quarantined > 0 {
                    quarantine.push(QuarantineEntry {
                        dataset: name.clone(),
                        records: out.records,
                        quarantined: out.quarantined,
                        samples: out.samples,
                    });
                    if iyp_telemetry::enabled() {
                        iyp_telemetry::counter(
                            iyp_telemetry::names::BUILD_QUARANTINED_RECORDS_TOTAL,
                        )
                        .add(out.quarantined as u64);
                    }
                }
                out.links
            }
            Ok(Err(e)) => {
                failed.push(DatasetFailure {
                    dataset: name,
                    cause: e.to_string(),
                    retries,
                });
                continue;
            }
            Err(p) => {
                failed.push(DatasetFailure {
                    dataset: name,
                    cause: format!("importer panicked: {}", panic_message(p)),
                    retries,
                });
                continue;
            }
        };
        datasets.push((name.clone(), links));
        dataset_timings.push((name.clone(), elapsed));
        if iyp_telemetry::enabled() {
            let metric = iyp_telemetry::labeled(
                iyp_telemetry::names::BUILD_IMPORT_SECONDS,
                &[("dataset", id.name())],
            );
            iyp_telemetry::histogram(&metric).record(elapsed);
            iyp_telemetry::counter(iyp_telemetry::names::BUILD_LINKS_TOTAL).add(links as u64);
        }
    }
    if iyp_telemetry::enabled() && (!failed.is_empty() || !skipped.is_empty()) {
        iyp_telemetry::counter(iyp_telemetry::names::BUILD_FAILED_DATASETS_TOTAL)
            .add((failed.len() + skipped.len()) as u64);
    }

    let mut refinement = Vec::new();
    let mut refinement_timings = Vec::new();
    if options.refine {
        let pass = |name: &'static str,
                    links: usize,
                    started: Instant,
                    refinement: &mut Vec<(&'static str, usize)>,
                    timings: &mut Vec<(&'static str, std::time::Duration)>| {
            let elapsed = started.elapsed();
            refinement.push((name, links));
            timings.push((name, elapsed));
            if iyp_telemetry::enabled() {
                let labeled = iyp_telemetry::labeled(
                    iyp_telemetry::names::BUILD_REFINE_SECONDS,
                    &[("pass", name)],
                );
                iyp_telemetry::histogram(&labeled).record(elapsed);
            }
        };
        let t = Instant::now();
        let n = postprocess::add_address_families(&mut graph);
        pass(
            "address families (af)",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
        let t = Instant::now();
        let n = postprocess::link_ips_to_prefixes(&mut graph, world.fetch_time)?;
        pass(
            "IP -> Prefix (longest match)",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
        let t = Instant::now();
        let n = postprocess::link_covering_prefixes(&mut graph, world.fetch_time)?;
        pass(
            "Prefix -> covering Prefix",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
        let t = Instant::now();
        let n = postprocess::link_urls_to_hostnames(&mut graph, world.fetch_time)?;
        pass(
            "URL -> HostName",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
        let t = Instant::now();
        let n = postprocess::complete_countries(&mut graph);
        pass(
            "country completion",
            n,
            t,
            &mut refinement,
            &mut refinement_timings,
        );
    }

    let violations = if options.validate {
        validate_graph(&graph).len()
    } else {
        0
    };
    let stats = GraphStats::compute(&graph);
    if iyp_telemetry::enabled() {
        iyp_telemetry::gauge(iyp_telemetry::names::GRAPH_NODES).set(graph.node_count() as i64);
        iyp_telemetry::gauge(iyp_telemetry::names::GRAPH_RELS).set(graph.rel_count() as i64);
    }
    Ok((
        graph,
        BuildReport {
            datasets,
            failed,
            skipped,
            quarantine,
            refinement,
            stats,
            violations,
            dataset_timings,
            refinement_timings,
            total_time: build_start.elapsed(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_simnet::SimConfig;

    #[test]
    fn full_build_is_ontology_clean() {
        let world = World::generate(&SimConfig::tiny(), 42);
        let (graph, report) = build_graph(&world, &BuildOptions::default()).unwrap();
        assert_eq!(report.violations, 0, "ontology violations in full build");
        assert_eq!(report.datasets.len(), 46);
        // Every dataset contributed at least one link.
        for (name, links) in &report.datasets {
            assert!(*links > 0, "{name} created no links");
        }
        assert!(report.refinement_links() > 0);
        assert!(graph.node_count() > 500);
        assert!(graph.rel_count() > graph.node_count());
        // The report renders.
        let text = report.to_string();
        assert!(text.contains("bgpkit.pfx2as"));
        assert!(text.contains("refinement"));
    }

    #[test]
    fn dataset_subset_build() {
        let world = World::generate(&SimConfig::tiny(), 42);
        let opts = BuildOptions::only(&[DatasetId::TrancoList, DatasetId::BgpkitPfx2as]);
        let (graph, report) = build_graph(&world, &opts).unwrap();
        assert_eq!(report.datasets.len(), 2);
        assert_eq!(report.violations, 0);
        assert!(graph.label_count("DomainName") > 0);
        assert!(graph.label_count("Prefix") > 0);
    }

    #[test]
    fn refinement_can_be_disabled() {
        let world = World::generate(&SimConfig::tiny(), 42);
        let opts = BuildOptions::only(&[DatasetId::OpenintelTranco1m, DatasetId::BgpkitPfx2as])
            .without_refinement();
        let (_, report) = build_graph(&world, &opts).unwrap();
        assert!(report.refinement.is_empty());
        assert_eq!(report.refinement_links(), 0);
    }

    #[test]
    fn builds_are_deterministic() {
        let world = World::generate(&SimConfig::tiny(), 42);
        let (g1, r1) = build_graph(&world, &BuildOptions::default()).unwrap();
        let (g2, r2) = build_graph(&world, &BuildOptions::default()).unwrap();
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.rel_count(), g2.rel_count());
        assert_eq!(r1.datasets, r2.datasets);
    }
}
