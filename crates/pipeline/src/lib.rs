//! IYP graph construction pipeline.
//!
//! Drives the three stages of §2.3 of the paper:
//!
//! 1. **Knowledge extraction** — every dataset is rendered by the
//!    synthetic Internet (`iyp-simnet`) and parsed by its crawler
//!    (`iyp-crawlers`); dataset texts are produced concurrently with
//!    `crossbeam` scoped threads, imports are applied in deterministic
//!    Table 8 order.
//! 2. **Fusion** — happens implicitly through canonical identifiers and
//!    `MERGE` semantics in the graph store.
//! 3. **Refinement** — the post-processing passes that add the implicit
//!    common knowledge: address families, longest-prefix-match
//!    `IP→Prefix` links, covering-prefix links, `URL→HostName` links,
//!    and country-code completion.
//!
//! The result is a [`BuildReport`] plus the graph itself, ready for the
//! Cypher studies in `iyp-studies`.

pub mod build;
pub mod postprocess;
pub mod report;

pub use build::{build_graph, BuildOptions};
pub use report::BuildReport;
