//! Refinement passes (§2.3, "the final touch").

use iyp_crawlers::{CrawlError, Importer};
use iyp_graph::{Graph, NodeId, Value};
use iyp_netdata::{canon, country, Prefix, PrefixTrie};
use iyp_ontology::{Entity, Reference, Relationship};
use std::str::FromStr;

/// Provenance stamped on refinement-created links.
pub fn refinement_reference(fetch_time: i64) -> Reference {
    Reference::new("IYP", "iyp.postprocess", fetch_time)
}

/// Adds the `af` property (4 or 6) to every `IP` and `Prefix` node.
pub fn add_address_families(graph: &mut Graph) -> usize {
    let mut updates: Vec<(NodeId, i64)> = Vec::new();
    for id in graph
        .nodes_with_label(Entity::Ip.label())
        .collect::<Vec<_>>()
    {
        let Some(node) = graph.node(id) else { continue };
        if node.prop("af").is_some() {
            continue;
        }
        if let Some(ip) = node.prop("ip").and_then(|v| v.as_str()) {
            if let Ok(addr) = std::net::IpAddr::from_str(ip) {
                updates.push((id, if addr.is_ipv4() { 4 } else { 6 }));
            }
        }
    }
    for id in graph
        .nodes_with_label(Entity::Prefix.label())
        .collect::<Vec<_>>()
    {
        let Some(node) = graph.node(id) else { continue };
        if node.prop("af").is_some() {
            continue;
        }
        if let Some(p) = node.prop("prefix").and_then(|v| v.as_str()) {
            if let Ok(prefix) = p.parse::<Prefix>() {
                updates.push((id, prefix.family().as_number()));
            }
        }
    }
    let n = updates.len();
    for (id, af) in updates {
        graph
            .set_node_prop(id, "af", Value::Int(af))
            .expect("node exists");
    }
    n
}

/// Builds the trie of all `Prefix` nodes.
fn prefix_trie(graph: &Graph) -> PrefixTrie<NodeId> {
    let mut trie = PrefixTrie::new();
    for id in graph.nodes_with_label(Entity::Prefix.label()) {
        let Some(node) = graph.node(id) else { continue };
        if let Some(p) = node.prop("prefix").and_then(|v| v.as_str()) {
            if let Ok(prefix) = p.parse::<Prefix>() {
                trie.insert(&prefix, id);
            }
        }
    }
    trie
}

/// Links every `IP` node to the `Prefix` node of its longest prefix
/// match (`IP -PART_OF→ Prefix`).
pub fn link_ips_to_prefixes(graph: &mut Graph, fetch_time: i64) -> Result<usize, CrawlError> {
    let trie = prefix_trie(graph);
    let mut links: Vec<(NodeId, NodeId)> = Vec::new();
    for id in graph
        .nodes_with_label(Entity::Ip.label())
        .collect::<Vec<_>>()
    {
        let Some(node) = graph.node(id) else { continue };
        let Some(ip) = node.prop("ip").and_then(|v| v.as_str()) else {
            continue;
        };
        let Ok(addr) = std::net::IpAddr::from_str(ip) else {
            continue;
        };
        if let Some((_, &pfx_node)) = trie.longest_match_ip(&addr) {
            links.push((id, pfx_node));
        }
    }
    let mut imp = Importer::new(graph, refinement_reference(fetch_time));
    for (ip, pfx) in links {
        imp.link(ip, Relationship::PartOf, pfx, iyp_graph::Props::new())?;
    }
    Ok(imp.link_count())
}

/// Links every `Prefix` node to its most specific covering prefix
/// (`Prefix -PART_OF→ Prefix`).
pub fn link_covering_prefixes(graph: &mut Graph, fetch_time: i64) -> Result<usize, CrawlError> {
    let trie = prefix_trie(graph);
    let mut links: Vec<(NodeId, NodeId)> = Vec::new();
    for id in graph
        .nodes_with_label(Entity::Prefix.label())
        .collect::<Vec<_>>()
    {
        let Some(node) = graph.node(id) else { continue };
        let Some(p) = node.prop("prefix").and_then(|v| v.as_str()) else {
            continue;
        };
        let Ok(prefix) = p.parse::<Prefix>() else {
            continue;
        };
        if let Some((_, &cover)) = trie.covering(&prefix) {
            links.push((id, cover));
        }
    }
    let mut imp = Importer::new(graph, refinement_reference(fetch_time));
    for (p, cover) in links {
        imp.link(p, Relationship::PartOf, cover, iyp_graph::Props::new())?;
    }
    Ok(imp.link_count())
}

/// Links every `URL` node to its `HostName` node (`URL -PART_OF→
/// HostName`), creating the hostname when absent.
pub fn link_urls_to_hostnames(graph: &mut Graph, fetch_time: i64) -> Result<usize, CrawlError> {
    let mut hosts: Vec<(NodeId, String)> = Vec::new();
    for id in graph
        .nodes_with_label(Entity::Url.label())
        .collect::<Vec<_>>()
    {
        let Some(node) = graph.node(id) else { continue };
        let Some(url) = node.prop("url").and_then(|v| v.as_str()) else {
            continue;
        };
        if let Some(host) = canon::url_hostname(url) {
            hosts.push((id, host));
        }
    }
    let mut imp = Importer::new(graph, refinement_reference(fetch_time));
    for (url, host) in hosts {
        let h = imp.hostname_node(&host);
        imp.link(url, Relationship::PartOf, h, iyp_graph::Props::new())?;
    }
    Ok(imp.link_count())
}

/// Guarantees that every `Country` node carries `alpha3` and `name`
/// (§2.3 last paragraph). Returns the number of nodes completed.
pub fn complete_countries(graph: &mut Graph) -> usize {
    let mut updates: Vec<(NodeId, &'static str, &'static str)> = Vec::new();
    for id in graph
        .nodes_with_label(Entity::Country.label())
        .collect::<Vec<_>>()
    {
        let Some(node) = graph.node(id) else { continue };
        if node.prop("alpha3").is_some() && node.prop("name").is_some() {
            continue;
        }
        let Some(cc) = node.prop("country_code").and_then(|v| v.as_str()) else {
            continue;
        };
        if let Some(info) = country::by_alpha2(cc) {
            updates.push((id, info.alpha3, info.name));
        }
    }
    let n = updates.len();
    for (id, alpha3, name) in updates {
        graph
            .set_node_prop(id, "alpha3", Value::Str(alpha3.into()))
            .expect("node exists");
        graph
            .set_node_prop(id, "name", Value::Str(name.into()))
            .expect("node exists");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graph::{props, Props};

    #[test]
    fn af_props_are_added() {
        let mut g = Graph::new();
        g.merge_node("IP", "ip", "192.0.2.1", Props::new());
        g.merge_node("IP", "ip", "2001:db8::1", Props::new());
        g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        let n = add_address_families(&mut g);
        assert_eq!(n, 3);
        let v4 = g.lookup("IP", "ip", "192.0.2.1").unwrap();
        assert_eq!(g.node(v4).unwrap().prop("af").unwrap().as_int(), Some(4));
        let v6 = g.lookup("IP", "ip", "2001:db8::1").unwrap();
        assert_eq!(g.node(v6).unwrap().prop("af").unwrap().as_int(), Some(6));
        // Idempotent.
        assert_eq!(add_address_families(&mut g), 0);
    }

    #[test]
    fn lpm_links_most_specific() {
        let mut g = Graph::new();
        let big = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        let small = g.merge_node("Prefix", "prefix", "10.1.0.0/16", Props::new());
        let inside = g.merge_node("IP", "ip", "10.1.2.3", Props::new());
        let outside = g.merge_node("IP", "ip", "10.200.0.1", Props::new());
        let nomatch = g.merge_node("IP", "ip", "192.0.2.1", Props::new());
        let n = link_ips_to_prefixes(&mut g, 0).unwrap();
        assert_eq!(n, 2);
        let hit = g
            .neighbors(inside, iyp_graph::Direction::Outgoing, None)
            .next();
        assert_eq!(hit, Some(small));
        let hit = g
            .neighbors(outside, iyp_graph::Direction::Outgoing, None)
            .next();
        assert_eq!(hit, Some(big));
        assert_eq!(
            g.neighbors(nomatch, iyp_graph::Direction::Both, None)
                .count(),
            0
        );
    }

    #[test]
    fn covering_prefix_links() {
        let mut g = Graph::new();
        let p8 = g.merge_node("Prefix", "prefix", "10.0.0.0/8", Props::new());
        let p16 = g.merge_node("Prefix", "prefix", "10.1.0.0/16", Props::new());
        let p24 = g.merge_node("Prefix", "prefix", "10.1.2.0/24", Props::new());
        let n = link_covering_prefixes(&mut g, 0).unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            g.neighbors(p24, iyp_graph::Direction::Outgoing, None)
                .next(),
            Some(p16)
        );
        assert_eq!(
            g.neighbors(p16, iyp_graph::Direction::Outgoing, None)
                .next(),
            Some(p8)
        );
        assert_eq!(
            g.neighbors(p8, iyp_graph::Direction::Outgoing, None)
                .count(),
            0
        );
    }

    #[test]
    fn url_hostname_links() {
        let mut g = Graph::new();
        let url = g.merge_node("URL", "url", "https://www.Example.com/x?y=1", Props::new());
        let n = link_urls_to_hostnames(&mut g, 0).unwrap();
        assert_eq!(n, 1);
        let host = g.lookup("HostName", "name", "www.example.com").unwrap();
        assert_eq!(
            g.neighbors(url, iyp_graph::Direction::Outgoing, None)
                .next(),
            Some(host)
        );
    }

    #[test]
    fn country_completion() {
        let mut g = Graph::new();
        g.merge_node("Country", "country_code", "JP", Props::new());
        g.merge_node(
            "Country",
            "country_code",
            "US",
            props([("alpha3", "USA".into()), ("name", "United States".into())]),
        );
        let n = complete_countries(&mut g);
        assert_eq!(n, 1);
        let jp = g.lookup("Country", "country_code", "JP").unwrap();
        assert_eq!(
            g.node(jp).unwrap().prop("alpha3").unwrap().as_str(),
            Some("JPN")
        );
        assert_eq!(
            g.node(jp).unwrap().prop("name").unwrap().as_str(),
            Some("Japan")
        );
    }
}
