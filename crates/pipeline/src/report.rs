//! Build reporting.

use iyp_graph::GraphStats;
use std::fmt;
use std::time::Duration;

/// One dataset that did not make it into the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetFailure {
    /// Dataset name (Table 8 spelling, e.g. `bgpkit.pfx2as`).
    pub dataset: String,
    /// Human-readable cause: the parse/graph error, panic payload, or
    /// final fetch failure.
    pub cause: String,
    /// Fetch retries spent on this dataset before it failed (or, for
    /// imported datasets, before it succeeded).
    pub retries: u32,
}

/// Quarantine accounting for a dataset that imported with skipped
/// records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Dataset name.
    pub dataset: String,
    /// Records the importer attempted.
    pub records: usize,
    /// Malformed records skipped under the error budget.
    pub quarantined: usize,
    /// Rendered errors for the first few quarantined records.
    pub samples: Vec<String>,
}

/// Summary of a full IYP build.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// (dataset name, relationships created) in import order.
    pub datasets: Vec<(String, usize)>,
    /// Datasets whose render or import failed (error, panic, or
    /// exhausted record error-budget); the build continued without
    /// them.
    pub failed: Vec<DatasetFailure>,
    /// Datasets that could never be fetched (transient failures that
    /// outlived the retry budget, or hard fetch failures).
    pub skipped: Vec<DatasetFailure>,
    /// Datasets that imported successfully but quarantined records.
    pub quarantine: Vec<QuarantineEntry>,
    /// Relationships added by each refinement pass.
    pub refinement: Vec<(&'static str, usize)>,
    /// Final graph statistics.
    pub stats: GraphStats,
    /// Ontology violations found in the final validation pass.
    pub violations: usize,
    /// Wall time of each dataset import (render + parse + merge), in
    /// import order. Kept separate from `datasets` so that link counts
    /// stay byte-for-byte deterministic across runs.
    pub dataset_timings: Vec<(String, Duration)>,
    /// Wall time of each refinement pass, in pass order.
    pub refinement_timings: Vec<(&'static str, Duration)>,
    /// Wall time of the whole build.
    pub total_time: Duration,
}

impl BuildReport {
    /// Total relationships created by crawlers.
    pub fn crawled_links(&self) -> usize {
        self.datasets.iter().map(|(_, n)| n).sum()
    }

    /// Total relationships added by refinement.
    pub fn refinement_links(&self) -> usize {
        self.refinement.iter().map(|(_, n)| n).sum()
    }

    /// An empty report holding only graph statistics (snapshot loads).
    pub fn empty(stats: GraphStats) -> BuildReport {
        BuildReport {
            datasets: Vec::new(),
            failed: Vec::new(),
            skipped: Vec::new(),
            quarantine: Vec::new(),
            refinement: Vec::new(),
            stats,
            violations: 0,
            dataset_timings: Vec::new(),
            refinement_timings: Vec::new(),
            total_time: Duration::ZERO,
        }
    }

    /// Total records quarantined across all datasets.
    pub fn quarantined_records(&self) -> usize {
        self.quarantine.iter().map(|q| q.quarantined).sum()
    }

    /// Total fetch retries spent across failed and skipped datasets.
    pub fn total_retries(&self) -> u32 {
        self.failed
            .iter()
            .chain(&self.skipped)
            .map(|f| f.retries)
            .sum()
    }

    /// True when every requested dataset imported cleanly.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty() && self.quarantine.is_empty()
    }

    /// The wall time recorded for one dataset import, by name.
    pub fn dataset_time(&self, name: &str) -> Option<Duration> {
        self.dataset_timings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
    }

    /// Renders the timing breakdown (the `--metrics` view): one line
    /// per dataset import and refinement pass in import order, plus
    /// the total.
    pub fn render_timings(&self) -> String {
        let mut out = String::new();
        out.push_str("-- import timings --\n");
        for (name, d) in &self.dataset_timings {
            out.push_str(&format!("  {name:<36} {:>9.3} ms\n", d.as_secs_f64() * 1e3));
        }
        out.push_str("-- refinement timings --\n");
        for (pass, d) in &self.refinement_timings {
            out.push_str(&format!("  {pass:<36} {:>9.3} ms\n", d.as_secs_f64() * 1e3));
        }
        out.push_str(&format!(
            "  {:<36} {:>9.3} ms\n",
            "total build",
            self.total_time.as_secs_f64() * 1e3
        ));
        out
    }
}

impl fmt::Display for BuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== IYP build report ==")?;
        writeln!(f, "-- datasets ({}) --", self.datasets.len())?;
        for (name, links) in &self.datasets {
            writeln!(f, "  {name:<36} {links:>9} links")?;
        }
        if !self.failed.is_empty() {
            writeln!(f, "-- failed ({}) --", self.failed.len())?;
            for d in &self.failed {
                writeln!(f, "  {:<36} retries {}  {}", d.dataset, d.retries, d.cause)?;
            }
        }
        if !self.skipped.is_empty() {
            writeln!(f, "-- skipped ({}) --", self.skipped.len())?;
            for d in &self.skipped {
                writeln!(f, "  {:<36} retries {}  {}", d.dataset, d.retries, d.cause)?;
            }
        }
        if !self.quarantine.is_empty() {
            writeln!(f, "-- quarantined records --")?;
            for q in &self.quarantine {
                writeln!(
                    f,
                    "  {:<36} {:>9} of {} records",
                    q.dataset, q.quarantined, q.records
                )?;
                for s in &q.samples {
                    writeln!(f, "    · {s}")?;
                }
            }
        }
        writeln!(f, "-- refinement --")?;
        for (pass, links) in &self.refinement {
            writeln!(f, "  {pass:<36} {links:>9} links")?;
        }
        writeln!(f, "-- totals --")?;
        writeln!(f, "  crawled links     {:>9}", self.crawled_links())?;
        writeln!(f, "  refinement links  {:>9}", self.refinement_links())?;
        writeln!(f, "  ontology issues   {:>9}", self.violations)?;
        if !self.is_clean() {
            writeln!(f, "  failed datasets   {:>9}", self.failed.len())?;
            writeln!(f, "  skipped datasets  {:>9}", self.skipped.len())?;
            writeln!(f, "  quarantined recs  {:>9}", self.quarantined_records())?;
            writeln!(f, "  fetch retries     {:>9}", self.total_retries())?;
        }
        write!(f, "{}", self.stats)
    }
}
