//! Build reporting.

use iyp_graph::GraphStats;
use std::fmt;

/// Summary of a full IYP build.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// (dataset name, relationships created) in import order.
    pub datasets: Vec<(String, usize)>,
    /// Relationships added by each refinement pass.
    pub refinement: Vec<(&'static str, usize)>,
    /// Final graph statistics.
    pub stats: GraphStats,
    /// Ontology violations found in the final validation pass.
    pub violations: usize,
}

impl BuildReport {
    /// Total relationships created by crawlers.
    pub fn crawled_links(&self) -> usize {
        self.datasets.iter().map(|(_, n)| n).sum()
    }

    /// Total relationships added by refinement.
    pub fn refinement_links(&self) -> usize {
        self.refinement.iter().map(|(_, n)| n).sum()
    }
}

impl fmt::Display for BuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== IYP build report ==")?;
        writeln!(f, "-- datasets ({}) --", self.datasets.len())?;
        for (name, links) in &self.datasets {
            writeln!(f, "  {name:<36} {links:>9} links")?;
        }
        writeln!(f, "-- refinement --")?;
        for (pass, links) in &self.refinement {
            writeln!(f, "  {pass:<36} {links:>9} links")?;
        }
        writeln!(f, "-- totals --")?;
        writeln!(f, "  crawled links     {:>9}", self.crawled_links())?;
        writeln!(f, "  refinement links  {:>9}", self.refinement_links())?;
        writeln!(f, "  ontology issues   {:>9}", self.violations)?;
        write!(f, "{}", self.stats)
    }
}
