//! Build reporting.

use iyp_graph::GraphStats;
use std::fmt;
use std::time::Duration;

/// Summary of a full IYP build.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// (dataset name, relationships created) in import order.
    pub datasets: Vec<(String, usize)>,
    /// Relationships added by each refinement pass.
    pub refinement: Vec<(&'static str, usize)>,
    /// Final graph statistics.
    pub stats: GraphStats,
    /// Ontology violations found in the final validation pass.
    pub violations: usize,
    /// Wall time of each dataset import (render + parse + merge), in
    /// import order. Kept separate from `datasets` so that link counts
    /// stay byte-for-byte deterministic across runs.
    pub dataset_timings: Vec<(String, Duration)>,
    /// Wall time of each refinement pass, in pass order.
    pub refinement_timings: Vec<(&'static str, Duration)>,
    /// Wall time of the whole build.
    pub total_time: Duration,
}

impl BuildReport {
    /// Total relationships created by crawlers.
    pub fn crawled_links(&self) -> usize {
        self.datasets.iter().map(|(_, n)| n).sum()
    }

    /// Total relationships added by refinement.
    pub fn refinement_links(&self) -> usize {
        self.refinement.iter().map(|(_, n)| n).sum()
    }

    /// The wall time recorded for one dataset import, by name.
    pub fn dataset_time(&self, name: &str) -> Option<Duration> {
        self.dataset_timings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
    }

    /// Renders the timing breakdown (the `--metrics` view): one line
    /// per dataset import and refinement pass in import order, plus
    /// the total.
    pub fn render_timings(&self) -> String {
        let mut out = String::new();
        out.push_str("-- import timings --\n");
        for (name, d) in &self.dataset_timings {
            out.push_str(&format!("  {name:<36} {:>9.3} ms\n", d.as_secs_f64() * 1e3));
        }
        out.push_str("-- refinement timings --\n");
        for (pass, d) in &self.refinement_timings {
            out.push_str(&format!("  {pass:<36} {:>9.3} ms\n", d.as_secs_f64() * 1e3));
        }
        out.push_str(&format!(
            "  {:<36} {:>9.3} ms\n",
            "total build",
            self.total_time.as_secs_f64() * 1e3
        ));
        out
    }
}

impl fmt::Display for BuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== IYP build report ==")?;
        writeln!(f, "-- datasets ({}) --", self.datasets.len())?;
        for (name, links) in &self.datasets {
            writeln!(f, "  {name:<36} {links:>9} links")?;
        }
        writeln!(f, "-- refinement --")?;
        for (pass, links) in &self.refinement {
            writeln!(f, "  {pass:<36} {links:>9} links")?;
        }
        writeln!(f, "-- totals --")?;
        writeln!(f, "  crawled links     {:>9}", self.crawled_links())?;
        writeln!(f, "  refinement links  {:>9}", self.refinement_links())?;
        writeln!(f, "  ontology issues   {:>9}", self.violations)?;
        write!(f, "{}", self.stats)
    }
}
