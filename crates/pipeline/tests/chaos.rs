//! Chaos-injection integration tests: a build under a seeded
//! [`FaultPlan`] must never panic, must import every unaffected dataset
//! exactly as a clean build would, and must account for every affected
//! dataset in the [`BuildReport`].

use iyp_pipeline::{build_graph, BuildOptions, BuildReport};
use iyp_simnet::{DatasetId, FaultPlan, FetchFault, SimConfig, World};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// The fixed chaos seed used here and by the CI `chaos` job:
/// `FaultPlan::generate(CHAOS_SEED, 8)` targets 8 datasets, 7 of them
/// with text corruptions.
const CHAOS_SEED: u64 = 0;

fn chaos_options(plan: FaultPlan) -> BuildOptions {
    let mut options = BuildOptions::default().with_chaos(plan);
    options.retry_backoff = Duration::ZERO;
    options
}

fn clean_link_counts(world: &World) -> BTreeMap<String, usize> {
    let (_, report) = build_graph(world, &BuildOptions::default()).expect("clean build");
    report.datasets.into_iter().collect()
}

/// Every dataset is exactly one of: imported, failed, or skipped.
fn assert_accounted(report: &BuildReport, plan: &FaultPlan) {
    assert_eq!(
        report.datasets.len() + report.failed.len() + report.skipped.len(),
        46,
        "datasets lost: {} imported, {:?} failed, {:?} skipped",
        report.datasets.len(),
        report.failed,
        report.skipped
    );
    let affected: Vec<String> = plan.affected().iter().map(|d| d.name().into()).collect();
    for f in report.failed.iter().chain(&report.skipped) {
        assert!(!f.cause.is_empty(), "{} has no cause", f.dataset);
        assert!(
            affected.contains(&f.dataset),
            "{} failed but was never targeted by the plan",
            f.dataset
        );
    }
    for q in &report.quarantine {
        assert!(q.quarantined > 0 && q.quarantined <= q.records, "{q:?}");
        let id = plan
            .affected()
            .iter()
            .copied()
            .find(|d| d.name() == q.dataset);
        assert!(
            id.is_some_and(|d| plan.is_corrupted(d)),
            "{} quarantined records but its text was never corrupted",
            q.dataset
        );
    }
}

#[test]
fn fixed_seed_chaos_build_isolates_every_fault() {
    let world = World::generate(&SimConfig::tiny(), 42);
    let plan = FaultPlan::generate(CHAOS_SEED, 8);
    let corrupted = plan
        .affected()
        .iter()
        .filter(|d| plan.is_corrupted(**d))
        .count();
    assert!(
        corrupted >= 5,
        "seed {CHAOS_SEED} only corrupts {corrupted}"
    );

    let clean = clean_link_counts(&world);
    let (graph, report) =
        build_graph(&world, &chaos_options(plan.clone())).expect("chaos build completes");
    assert_accounted(&report, &plan);
    assert!(
        !report.is_clean(),
        "a plan with 8 targets should leave a mark"
    );

    // Every dataset the plan did not touch imports exactly as in a
    // clean build — fault isolation means bit-identical link counts.
    let affected = plan.affected();
    for id in iyp_simnet::datasets::ALL_DATASETS {
        if affected.contains(&id) {
            continue;
        }
        let links = report
            .datasets
            .iter()
            .find(|(n, _)| n == id.name())
            .unwrap_or_else(|| panic!("{} missing from chaos build", id.name()))
            .1;
        assert_eq!(
            Some(&links),
            clean.get(id.name()),
            "{} diverged from the clean build",
            id.name()
        );
    }
    assert!(graph.node_count() > 0);

    // The report renders its failure sections.
    let text = report.to_string();
    if !report.failed.is_empty() {
        assert!(text.contains("-- failed ("), "{text}");
    }
    if !report.skipped.is_empty() {
        assert!(text.contains("-- skipped ("), "{text}");
    }
    if !report.quarantine.is_empty() {
        assert!(text.contains("-- quarantined records --"), "{text}");
    }
}

#[test]
fn chaos_builds_are_deterministic() {
    let world = World::generate(&SimConfig::tiny(), 42);
    let plan = FaultPlan::generate(CHAOS_SEED, 8);
    let (g1, r1) = build_graph(&world, &chaos_options(plan.clone())).unwrap();
    let (g2, r2) = build_graph(&world, &chaos_options(plan)).unwrap();
    assert_eq!(g1.node_count(), g2.node_count());
    assert_eq!(g1.rel_count(), g2.rel_count());
    assert_eq!(r1.datasets, r2.datasets);
    assert_eq!(r1.failed, r2.failed);
    assert_eq!(r1.skipped, r2.skipped);
    assert_eq!(r1.quarantine, r2.quarantine);
}

#[test]
fn garbage_lines_are_quarantined_not_fatal() {
    let world = World::generate(&SimConfig::tiny(), 42);
    let plan = FaultPlan::new(3)
        .with_corruption(DatasetId::TrancoList, iyp_simnet::FaultKind::GarbageLines);
    let (_, report) = build_graph(&world, &chaos_options(plan)).unwrap();
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    let q = report
        .quarantine
        .iter()
        .find(|q| q.dataset == DatasetId::TrancoList.name())
        .expect("tranco quarantined its garbage lines");
    // The corruption splices exactly three non-record lines in.
    assert_eq!(q.quarantined, 3, "{q:?}");
    assert_eq!(report.quarantined_records(), 3);
    assert!(!q.samples.is_empty());
    // ... and the dataset still imported everything else.
    assert!(report
        .datasets
        .iter()
        .any(|(n, links)| n == DatasetId::TrancoList.name() && *links > 0));
}

#[test]
fn transient_fetch_failures_are_retried_to_success() {
    let world = World::generate(&SimConfig::tiny(), 42);
    let plan =
        FaultPlan::new(7).with_fetch(DatasetId::TrancoList, FetchFault::Transient { failures: 2 });
    let (_, report) = build_graph(&world, &chaos_options(plan)).unwrap();
    // Two failures fit inside the default budget of two retries.
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert!(report.skipped.is_empty(), "{:?}", report.skipped);
    assert!(report
        .datasets
        .iter()
        .any(|(n, links)| n == DatasetId::TrancoList.name() && *links > 0));
}

#[test]
fn hard_fetch_failures_exhaust_retries_and_skip() {
    let world = World::generate(&SimConfig::tiny(), 42);
    let plan = FaultPlan::new(7).with_fetch(DatasetId::TrancoList, FetchFault::Hard);
    let (_, report) = build_graph(&world, &chaos_options(plan)).unwrap();
    assert_eq!(report.skipped.len(), 1);
    let skip = &report.skipped[0];
    assert_eq!(skip.dataset, DatasetId::TrancoList.name());
    assert_eq!(skip.retries, BuildOptions::default().max_retries);
    assert_eq!(report.total_retries(), skip.retries);
    assert!(!report
        .datasets
        .iter()
        .any(|(n, _)| n == DatasetId::TrancoList.name()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seeded fault plan over any number of targets: the build
    /// never panics, always returns a report, and accounts for all 46
    /// datasets.
    #[test]
    fn random_chaos_never_panics(seed in any::<u64>(), targets in 0usize..=12) {
        let world = World::generate(&SimConfig::tiny(), 42);
        let plan = FaultPlan::generate(seed, targets);
        let (_, report) =
            build_graph(&world, &chaos_options(plan.clone())).expect("build completes");
        assert_accounted(&report, &plan);
    }
}
