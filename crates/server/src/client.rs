//! A client for the query service.
//!
//! [`Client::query`] is the typed entry point: it returns a [`Table`]
//! of plain data or a [`ClientError`] whose variants mirror the
//! server's structured error codes (`busy`, `timeout`, `read_only`,
//! `bad_json`, …) — no pattern-matching raw [`Response`] enums. The
//! low-level [`Client::send`]/[`Client::request`] methods remain for
//! protocol-level tests and tools that need the wire representation.

use crate::proto::{Command, Request, Response};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A query result as plain data: named columns and rows of
/// JSON-encoded values (nodes and relationships arrive inlined as
/// `{"~node": …}` / `{"~rel": …}` objects).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column names (projection aliases).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<serde_json::Value>>,
}

impl Table {
    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Convenience: the single value of a one-row, one-column result.
    pub fn single(&self) -> Option<&serde_json::Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Convenience: single integer result (e.g. `RETURN count(...)`).
    pub fn single_int(&self) -> Option<i64> {
        self.single()?.as_i64()
    }
}

/// A typed query failure: transport errors plus every structured error
/// the server produces, each with a stable [`ClientError::code`] and a
/// human-readable [`ClientError::detail`].
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including a server-closed connection, which
    /// surfaces as `ConnectionAborted`).
    Io(std::io::Error),
    /// The server is at its connection cap; retry shortly.
    Busy(String),
    /// The query exceeded the server's `--query-timeout` deadline and
    /// was cancelled at a row boundary.
    Timeout(String),
    /// A write was sent to a server running without a journal.
    ReadOnly(String),
    /// The server's journal failed while persisting a write.
    Journal(String),
    /// The request violated the wire protocol (`empty_request`,
    /// `request_too_large`, `bad_json`, `missing_query`,
    /// `unknown_command`).
    Protocol {
        /// Stable machine-readable code (see
        /// [`crate::proto::ProtoError::code`]).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The query itself failed (lex, parse, or runtime error).
    Query(String),
    /// The server answered with something unexpected for the request.
    Unexpected(String),
}

impl ClientError {
    /// Stable machine-readable error code.
    pub fn code(&self) -> &str {
        match self {
            ClientError::Io(_) => "io",
            ClientError::Busy(_) => "busy",
            ClientError::Timeout(_) => "timeout",
            ClientError::ReadOnly(_) => "read_only",
            ClientError::Journal(_) => "journal",
            ClientError::Protocol { code, .. } => code,
            ClientError::Query(_) => "query",
            ClientError::Unexpected(_) => "unexpected",
        }
    }

    /// Human-readable detail.
    pub fn detail(&self) -> String {
        match self {
            ClientError::Io(e) => e.to_string(),
            ClientError::Busy(d)
            | ClientError::Timeout(d)
            | ClientError::ReadOnly(d)
            | ClientError::Journal(d)
            | ClientError::Query(d)
            | ClientError::Unexpected(d) => d.clone(),
            ClientError::Protocol { detail, .. } => detail.clone(),
        }
    }

    /// Maps a server `error` message to its typed variant. The server
    /// prefixes structured errors with a stable `code:`; anything
    /// without a recognised prefix is a query-evaluation error.
    fn from_server_message(msg: String) -> ClientError {
        let (prefix, rest) = match msg.split_once(':') {
            Some((p, r)) => (p, r.trim_start().to_string()),
            None => ("", msg.clone()),
        };
        match prefix {
            "busy" => ClientError::Busy(rest),
            "timeout" => ClientError::Timeout(rest),
            "read_only" => ClientError::ReadOnly(rest),
            "journal" => ClientError::Journal(rest),
            "empty_request" | "request_too_large" | "bad_json" | "missing_query"
            | "unknown_command" => ClientError::Protocol {
                code: prefix.to_string(),
                detail: rest,
            },
            _ => ClientError::Query(msg),
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected query client. One request/response at a time per
/// connection (open several clients for parallel querying).
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server and verifies liveness with a `PING`
    /// round trip, so a dead or non-IYP endpoint fails here rather
    /// than on the first query.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client { stream, reader };
        match client.send(&Command::Ping)? {
            Response::Pong => Ok(client),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("server failed the PING handshake: {other:?}"),
            )),
        }
    }

    /// Sends any protocol command and waits for the response.
    pub fn send(&mut self, cmd: &Command) -> std::io::Result<Response> {
        self.stream.write_all(cmd.to_line().as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut line = String::new();
        // read_line reports a closed connection as Ok(0); without the
        // check the empty line would surface as a baffling "bad
        // response JSON" parse error instead of a connection error.
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "server closed the connection before responding",
            ));
        }
        Response::from_line(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends a query request and waits for the raw wire response (for
    /// protocol-level tests; most callers want [`Client::query`]).
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(&Command::Query(req.clone()))
    }

    /// Runs a parameter-less read query and returns its result as a
    /// [`Table`]. Server-side failures arrive as typed
    /// [`ClientError`] variants (`busy`, `timeout`, query errors, …).
    pub fn query(&mut self, text: &str) -> Result<Table, ClientError> {
        self.query_request(&Request::new(text))
    }

    /// Runs a read query with parameters, typed like [`Client::query`].
    pub fn query_request(&mut self, req: &Request) -> Result<Table, ClientError> {
        match self.request(req)? {
            Response::Ok { columns, rows } => Ok(Table { columns, rows }),
            Response::Error(msg) => Err(ClientError::from_server_message(msg)),
            other => Err(ClientError::Unexpected(format!(
                "unexpected QUERY response: {other:?}"
            ))),
        }
    }

    /// Sends a write query (`CREATE`/`MERGE`/`SET`/`DELETE`). The
    /// server must be running with a journal.
    pub fn write(&mut self, text: &str) -> std::io::Result<Response> {
        self.send(&Command::Write(Request::new(text)))
    }

    /// Sends a write query with parameters.
    pub fn write_request(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(&Command::Write(req.clone()))
    }

    /// Asks the server to compact its journal into a new snapshot
    /// generation; returns the new generation number.
    pub fn checkpoint(&mut self) -> std::io::Result<u64> {
        match self.send(&Command::Checkpoint)? {
            Response::Checkpointed { generation } => Ok(generation),
            Response::Error(e) => Err(std::io::Error::other(e)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected CHECKPOINT response: {other:?}"),
            )),
        }
    }

    /// Liveness probe: true when the server answers `PING`.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        Ok(matches!(self.send(&Command::Ping)?, Response::Pong))
    }

    /// Fetches graph statistics plus the server's telemetry snapshot.
    pub fn stats(&mut self) -> std::io::Result<serde_json::Value> {
        match self.send(&Command::Stats)? {
            Response::Stats(v) => Ok(v),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected STATS response: {other:?}"),
            )),
        }
    }
}
