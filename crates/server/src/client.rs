//! A client for the query service.

use crate::proto::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected query client. One request/response at a time per
/// connection (open several clients for parallel querying).
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends a request and waits for the response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        self.stream.write_all(req.to_line().as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Response::from_line(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Convenience: run a parameter-less query.
    pub fn query(&mut self, text: &str) -> std::io::Result<Response> {
        self.request(&Request::new(text))
    }
}
