//! A client for the query service.

use crate::proto::{Command, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected query client. One request/response at a time per
/// connection (open several clients for parallel querying).
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server and verifies liveness with a `PING`
    /// round trip, so a dead or non-IYP endpoint fails here rather
    /// than on the first query.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client { stream, reader };
        match client.send(&Command::Ping)? {
            Response::Pong => Ok(client),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("server failed the PING handshake: {other:?}"),
            )),
        }
    }

    /// Sends any protocol command and waits for the response.
    pub fn send(&mut self, cmd: &Command) -> std::io::Result<Response> {
        self.stream.write_all(cmd.to_line().as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Response::from_line(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends a query request and waits for the response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(&Command::Query(req.clone()))
    }

    /// Convenience: run a parameter-less query.
    pub fn query(&mut self, text: &str) -> std::io::Result<Response> {
        self.request(&Request::new(text))
    }

    /// Sends a write query (`CREATE`/`MERGE`/`SET`/`DELETE`). The
    /// server must be running with a journal.
    pub fn write(&mut self, text: &str) -> std::io::Result<Response> {
        self.send(&Command::Write(Request::new(text)))
    }

    /// Sends a write query with parameters.
    pub fn write_request(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(&Command::Write(req.clone()))
    }

    /// Asks the server to compact its journal into a new snapshot
    /// generation; returns the new generation number.
    pub fn checkpoint(&mut self) -> std::io::Result<u64> {
        match self.send(&Command::Checkpoint)? {
            Response::Checkpointed { generation } => Ok(generation),
            Response::Error(e) => Err(std::io::Error::other(e)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected CHECKPOINT response: {other:?}"),
            )),
        }
    }

    /// Liveness probe: true when the server answers `PING`.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        Ok(matches!(self.send(&Command::Ping)?, Response::Pong))
    }

    /// Fetches graph statistics plus the server's telemetry snapshot.
    pub fn stats(&mut self) -> std::io::Result<serde_json::Value> {
        match self.send(&Command::Stats)? {
            Response::Stats(v) => Ok(v),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected STATS response: {other:?}"),
            )),
        }
    }
}
