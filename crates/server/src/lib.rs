//! The IYP query service.
//!
//! The paper operates a public, **read-only** IYP instance that anyone
//! can query over the network (§3.1), and users run **writable** local
//! instances for their own analyses (§6.1). This crate provides both
//! workflows for our store: a multi-threaded TCP server exposing the
//! Cypher engine over a line-delimited JSON protocol — read-only over a
//! shared graph, or read-write over a journaled
//! [`iyp_journal::DurableGraph`] — and a matching client.
//!
//! # Protocol
//!
//! One JSON object per line in each direction.
//!
//! Request:
//! ```json
//! {"query": "MATCH (a:AS) RETURN count(a)", "params": {"x": 1}}
//! ```
//!
//! Response:
//! ```json
//! {"status": "ok", "columns": ["count(a)"], "rows": [[600]]}
//! {"status": "error", "error": "parse error near token 3: …"}
//! ```
//!
//! Besides queries, the protocol has service commands:
//! `{"cmd": "ping"}` (liveness; answered with `{"status": "pong"}`,
//! used by the client's connect handshake), `{"cmd": "stats"}`
//! (graph statistics plus a telemetry snapshot, answered with
//! `{"status": "stats", "stats": {…}}`),
//! `{"cmd": "write", "query": …, "params": …}` (a Cypher write query,
//! answered with `{"status": "written", …, "summary": {…}}`), and
//! `{"cmd": "checkpoint"}` (journal compaction, answered with
//! `{"status": "checkpointed", "generation": N}`). `write` and
//! `checkpoint` are rejected with a `read_only` error on a server
//! started without a journal. Empty, oversized, or malformed request
//! lines are rejected with a structured error code (`empty_request`,
//! `request_too_large`, `bad_json`, …).
//!
//! Graph entities are encoded as objects:
//! `{"~node": 17, "labels": ["AS"], "props": {"asn": 2497}}` and
//! `{"~rel": 99, "type": "ORIGINATE", "props": {…}}` — enough for a
//! client to render results without another round trip.
//!
//! The server is deliberately synchronous (thread-per-connection over
//! `std::net`): the workload is a handful of analysts running
//! read-only queries, not a high-fan-out proxy, so an async runtime
//! would add machinery without benefit.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, Table};
pub use proto::{decode_value, encode_value, Command, ProtoError, Request, Response};
pub use server::{Server, ServerError, ServerOptions, Service};
