//! Wire protocol: requests, responses, and value encoding.

use iyp_cypher::RtVal;
use iyp_graph::{Graph, Value};
use serde_json::json;

/// A query request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Cypher text.
    pub query: String,
    /// Query parameters.
    pub params: iyp_cypher::Params,
}

impl Request {
    /// Creates a parameter-less request.
    pub fn new(query: &str) -> Request {
        Request { query: query.to_string(), params: Default::default() }
    }

    /// Serialises to one protocol line.
    pub fn to_line(&self) -> String {
        let params: serde_json::Map<String, serde_json::Value> = self
            .params
            .iter()
            .map(|(k, v)| (k.clone(), value_to_json(v)))
            .collect();
        serde_json::to_string(&json!({ "query": self.query, "params": params }))
            .expect("serializable")
    }

    /// Parses a protocol line.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let query = v["query"]
            .as_str()
            .ok_or_else(|| "request missing `query`".to_string())?
            .to_string();
        let mut params = iyp_cypher::Params::new();
        if let Some(obj) = v["params"].as_object() {
            for (k, val) in obj {
                params.insert(k.clone(), json_to_value(val));
            }
        }
        Ok(Request { query, params })
    }
}

/// A query response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful result.
    Ok {
        /// Column names.
        columns: Vec<String>,
        /// Rows of JSON-encoded values.
        rows: Vec<Vec<serde_json::Value>>,
    },
    /// Failure with a message.
    Error(String),
}

impl Response {
    /// Serialises to one protocol line.
    pub fn to_line(&self) -> String {
        let v = match self {
            Response::Ok { columns, rows } => {
                json!({ "status": "ok", "columns": columns, "rows": rows })
            }
            Response::Error(msg) => json!({ "status": "error", "error": msg }),
        };
        serde_json::to_string(&v).expect("serializable")
    }

    /// Parses a protocol line.
    pub fn from_line(line: &str) -> Result<Response, String> {
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("bad response JSON: {e}"))?;
        match v["status"].as_str() {
            Some("ok") => {
                let columns = v["columns"]
                    .as_array()
                    .ok_or("missing columns")?
                    .iter()
                    .filter_map(|c| c.as_str().map(String::from))
                    .collect();
                let rows = v["rows"]
                    .as_array()
                    .ok_or("missing rows")?
                    .iter()
                    .filter_map(|r| r.as_array().cloned())
                    .collect();
                Ok(Response::Ok { columns, rows })
            }
            Some("error") => Ok(Response::Error(
                v["error"].as_str().unwrap_or("unknown error").to_string(),
            )),
            other => Err(format!("bad status {other:?}")),
        }
    }
}

/// Scalar [`Value`] → JSON.
pub fn value_to_json(v: &Value) -> serde_json::Value {
    match v {
        Value::Null => serde_json::Value::Null,
        Value::Bool(b) => json!(b),
        Value::Int(i) => json!(i),
        Value::Float(f) => json!(f),
        Value::Str(s) => json!(s),
        Value::List(l) => serde_json::Value::Array(l.iter().map(value_to_json).collect()),
    }
}

/// JSON → scalar [`Value`].
pub fn json_to_value(v: &serde_json::Value) -> Value {
    match v {
        serde_json::Value::Null => Value::Null,
        serde_json::Value::Bool(b) => Value::Bool(*b),
        serde_json::Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Value::Int(i)
            } else {
                Value::Float(n.as_f64().unwrap_or(f64::NAN))
            }
        }
        serde_json::Value::String(s) => Value::Str(s.clone()),
        serde_json::Value::Array(a) => Value::List(a.iter().map(json_to_value).collect()),
        serde_json::Value::Object(_) => Value::Null, // not a scalar
    }
}

/// Runtime value → JSON, inlining node/relationship contents so the
/// client needs no second round trip.
pub fn encode_value(v: &RtVal, graph: &Graph) -> serde_json::Value {
    match v {
        RtVal::Scalar(s) => value_to_json(s),
        RtVal::Node(id) => match graph.node(*id) {
            Some(n) => {
                let labels: Vec<&str> =
                    n.labels.iter().map(|l| graph.symbols().label_name(*l)).collect();
                let props: serde_json::Map<String, serde_json::Value> =
                    n.props.iter().map(|(k, v)| (k.clone(), value_to_json(v))).collect();
                json!({ "~node": id.0, "labels": labels, "props": props })
            }
            None => serde_json::Value::Null,
        },
        RtVal::Rel(id) => match graph.rel(*id) {
            Some(r) => {
                let props: serde_json::Map<String, serde_json::Value> =
                    r.props.iter().map(|(k, v)| (k.clone(), value_to_json(v))).collect();
                json!({
                    "~rel": id.0,
                    "type": graph.symbols().rel_type_name(r.rel_type),
                    "props": props,
                })
            }
            None => serde_json::Value::Null,
        },
        RtVal::List(l) => {
            serde_json::Value::Array(l.iter().map(|x| encode_value(x, graph)).collect())
        }
    }
}

/// JSON → a client-side value (entities stay as JSON objects).
pub fn decode_value(v: &serde_json::Value) -> serde_json::Value {
    v.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut r = Request::new("MATCH (n) RETURN n");
        r.params.insert("x".into(), Value::Int(7));
        r.params.insert("s".into(), Value::Str("a'b".into()));
        let back = Request::from_line(&r.to_line()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn response_roundtrip() {
        let r = Response::Ok {
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![json!(1), json!("x")], vec![json!(null), json!([1, 2])]],
        };
        assert_eq!(Response::from_line(&r.to_line()).unwrap(), r);
        let e = Response::Error("boom".into());
        assert_eq!(Response::from_line(&e.to_line()).unwrap(), e);
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(Request::from_line("{").is_err());
        assert!(Request::from_line("{}").is_err());
        assert!(Response::from_line("{\"status\":\"weird\"}").is_err());
    }

    #[test]
    fn value_json_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Str("hello".into()),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
        ];
        for v in vals {
            assert_eq!(json_to_value(&value_to_json(&v)), v);
        }
    }

    #[test]
    fn entities_are_inlined() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, iyp_graph::Props::new());
        let b = g.merge_node("AS", "asn", 1u32, iyp_graph::Props::new());
        let r = g.create_rel(a, "PEERS_WITH", b, iyp_graph::Props::new()).unwrap();
        let jn = encode_value(&RtVal::Node(a), &g);
        assert_eq!(jn["labels"][0], "AS");
        assert_eq!(jn["props"]["asn"], 2497);
        let jr = encode_value(&RtVal::Rel(r), &g);
        assert_eq!(jr["type"], "PEERS_WITH");
    }
}
