//! Wire protocol: requests, responses, and value encoding.

use iyp_cypher::RtVal;
use iyp_graph::{Graph, Value};
use serde_json::json;
use std::fmt;

/// A structured protocol violation: what the server rejects a request
/// line for, before any query parsing happens. The `code` is stable
/// machine-readable text; `Display` renders `code: human detail`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The request line was empty (or whitespace only).
    Empty,
    /// The request line exceeds the server's size cap.
    TooLarge {
        /// Bytes received.
        len: usize,
        /// The cap it exceeds.
        max: usize,
    },
    /// The line was not valid JSON.
    BadJson(String),
    /// A JSON object without `query` or a known `cmd`.
    MissingQuery,
    /// An unrecognised `cmd` value.
    UnknownCommand(String),
}

impl ProtoError {
    /// Stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Empty => "empty_request",
            ProtoError::TooLarge { .. } => "request_too_large",
            ProtoError::BadJson(_) => "bad_json",
            ProtoError::MissingQuery => "missing_query",
            ProtoError::UnknownCommand(_) => "unknown_command",
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Empty => write!(f, "empty_request: request line is empty"),
            ProtoError::TooLarge { len, max } => {
                write!(
                    f,
                    "request_too_large: {len} bytes exceeds the {max} byte cap"
                )
            }
            ProtoError::BadJson(e) => write!(f, "bad_json: {e}"),
            ProtoError::MissingQuery => {
                write!(
                    f,
                    "missing_query: request has neither `query` nor a known `cmd`"
                )
            }
            ProtoError::UnknownCommand(c) => write!(f, "unknown_command: `{c}`"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A query request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Cypher text.
    pub query: String,
    /// Query parameters.
    pub params: iyp_cypher::Params,
}

impl Request {
    /// Creates a parameter-less request.
    pub fn new(query: &str) -> Request {
        Request {
            query: query.to_string(),
            params: Default::default(),
        }
    }

    /// Serialises to one protocol line.
    pub fn to_line(&self) -> String {
        let params: serde_json::Map<String, serde_json::Value> = self
            .params
            .iter()
            .map(|(k, v)| (k.clone(), value_to_json(v)))
            .collect();
        serde_json::to_string(&json!({ "query": self.query, "params": params }))
            .expect("serializable")
    }

    /// Parses a protocol line.
    pub fn from_line(line: &str) -> Result<Request, ProtoError> {
        match Command::from_line(line)? {
            Command::Query(req) | Command::Write(req) => Ok(req),
            Command::Stats | Command::Ping | Command::Checkpoint => Err(ProtoError::MissingQuery),
        }
    }
}

/// One protocol command: a Cypher query (read or write), or one of the
/// service commands (`STATS`, `PING`, `CHECKPOINT`).
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a read-only Cypher query.
    Query(Request),
    /// Run a Cypher write query (`CREATE`/`MERGE`/`SET`/`DELETE`).
    /// Only accepted by a server running with a journal.
    Write(Request),
    /// Compact the journal into a new snapshot generation. Only
    /// accepted by a server running with a journal.
    Checkpoint,
    /// Return graph statistics plus a telemetry snapshot.
    Stats,
    /// Liveness probe; the server answers with a `pong` status.
    Ping,
}

impl Command {
    /// Serialises to one protocol line.
    pub fn to_line(&self) -> String {
        match self {
            Command::Query(req) => req.to_line(),
            Command::Write(req) => {
                let params: serde_json::Map<String, serde_json::Value> = req
                    .params
                    .iter()
                    .map(|(k, v)| (k.clone(), value_to_json(v)))
                    .collect();
                serde_json::to_string(
                    &json!({ "cmd": "write", "query": req.query, "params": params }),
                )
                .expect("serializable")
            }
            Command::Checkpoint => r#"{"cmd":"checkpoint"}"#.to_string(),
            Command::Stats => r#"{"cmd":"stats"}"#.to_string(),
            Command::Ping => r#"{"cmd":"ping"}"#.to_string(),
        }
    }

    /// Parses a protocol line: `{"cmd": …}` commands or a
    /// `{"query": …, "params": …}` request.
    pub fn from_line(line: &str) -> Result<Command, ProtoError> {
        let line = line.trim();
        if line.is_empty() {
            return Err(ProtoError::Empty);
        }
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| ProtoError::BadJson(e.to_string()))?;
        let parse_request = |v: &serde_json::Value| -> Result<Request, ProtoError> {
            let query = v["query"]
                .as_str()
                .ok_or(ProtoError::MissingQuery)?
                .to_string();
            let mut params = iyp_cypher::Params::new();
            if let Some(obj) = v["params"].as_object() {
                for (k, val) in obj {
                    params.insert(k.clone(), json_to_value(val));
                }
            }
            Ok(Request { query, params })
        };
        if let Some(cmd) = v["cmd"].as_str() {
            return match cmd.to_ascii_lowercase().as_str() {
                "stats" => Ok(Command::Stats),
                "ping" => Ok(Command::Ping),
                "checkpoint" => Ok(Command::Checkpoint),
                "write" => Ok(Command::Write(parse_request(&v)?)),
                other => Err(ProtoError::UnknownCommand(other.to_string())),
            };
        }
        Ok(Command::Query(parse_request(&v)?))
    }
}

/// A query response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful result.
    Ok {
        /// Column names.
        columns: Vec<String>,
        /// Rows of JSON-encoded values.
        rows: Vec<Vec<serde_json::Value>>,
    },
    /// Successful write: the `RETURN` result (often empty) plus the
    /// write counters, as a JSON object
    /// (`{"nodes_created": …, "rels_created": …, …}`).
    Written {
        /// Column names.
        columns: Vec<String>,
        /// Rows of JSON-encoded values.
        rows: Vec<Vec<serde_json::Value>>,
        /// Write counters.
        summary: serde_json::Value,
    },
    /// Answer to [`Command::Checkpoint`]: the new snapshot generation.
    Checkpointed {
        /// Generation number of the snapshot just written.
        generation: u64,
    },
    /// Failure with a message.
    Error(String),
    /// Answer to [`Command::Ping`].
    Pong,
    /// Answer to [`Command::Stats`]: a JSON object with `graph` and
    /// `telemetry` sections.
    Stats(serde_json::Value),
}

impl Response {
    /// Serialises to one protocol line.
    pub fn to_line(&self) -> String {
        let v = match self {
            Response::Ok { columns, rows } => {
                json!({ "status": "ok", "columns": columns, "rows": rows })
            }
            Response::Written {
                columns,
                rows,
                summary,
            } => {
                json!({
                    "status": "written",
                    "columns": columns,
                    "rows": rows,
                    "summary": summary,
                })
            }
            Response::Checkpointed { generation } => {
                json!({ "status": "checkpointed", "generation": generation })
            }
            Response::Error(msg) => json!({ "status": "error", "error": msg }),
            Response::Pong => json!({ "status": "pong" }),
            Response::Stats(stats) => json!({ "status": "stats", "stats": stats }),
        };
        serde_json::to_string(&v).expect("serializable")
    }

    /// Parses a protocol line.
    pub fn from_line(line: &str) -> Result<Response, String> {
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("bad response JSON: {e}"))?;
        match v["status"].as_str() {
            Some("pong") => Ok(Response::Pong),
            Some("stats") => Ok(Response::Stats(v["stats"].clone())),
            Some("ok") => {
                let columns = v["columns"]
                    .as_array()
                    .ok_or("missing columns")?
                    .iter()
                    .filter_map(|c| c.as_str().map(String::from))
                    .collect();
                let rows = v["rows"]
                    .as_array()
                    .ok_or("missing rows")?
                    .iter()
                    .filter_map(|r| r.as_array().cloned())
                    .collect();
                Ok(Response::Ok { columns, rows })
            }
            Some("written") => {
                let columns = v["columns"]
                    .as_array()
                    .ok_or("missing columns")?
                    .iter()
                    .filter_map(|c| c.as_str().map(String::from))
                    .collect();
                let rows = v["rows"]
                    .as_array()
                    .ok_or("missing rows")?
                    .iter()
                    .filter_map(|r| r.as_array().cloned())
                    .collect();
                Ok(Response::Written {
                    columns,
                    rows,
                    summary: v["summary"].clone(),
                })
            }
            Some("checkpointed") => Ok(Response::Checkpointed {
                generation: v["generation"].as_u64().ok_or("missing generation")?,
            }),
            Some("error") => Ok(Response::Error(
                v["error"].as_str().unwrap_or("unknown error").to_string(),
            )),
            other => Err(format!("bad status {other:?}")),
        }
    }
}

/// Scalar [`Value`] → JSON.
pub fn value_to_json(v: &Value) -> serde_json::Value {
    match v {
        Value::Null => serde_json::Value::Null,
        Value::Bool(b) => json!(b),
        Value::Int(i) => json!(i),
        Value::Float(f) => json!(f),
        Value::Str(s) => json!(s),
        Value::List(l) => serde_json::Value::Array(l.iter().map(value_to_json).collect()),
    }
}

/// JSON → scalar [`Value`].
pub fn json_to_value(v: &serde_json::Value) -> Value {
    match v {
        serde_json::Value::Null => Value::Null,
        serde_json::Value::Bool(b) => Value::Bool(*b),
        serde_json::Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Value::Int(i)
            } else {
                Value::Float(n.as_f64().unwrap_or(f64::NAN))
            }
        }
        serde_json::Value::String(s) => Value::Str(s.clone()),
        serde_json::Value::Array(a) => Value::List(a.iter().map(json_to_value).collect()),
        serde_json::Value::Object(_) => Value::Null, // not a scalar
    }
}

/// Runtime value → JSON, inlining node/relationship contents so the
/// client needs no second round trip.
pub fn encode_value(v: &RtVal, graph: &Graph) -> serde_json::Value {
    match v {
        RtVal::Scalar(s) => value_to_json(s),
        RtVal::Node(id) => match graph.node(*id) {
            Some(n) => {
                let labels: Vec<&str> = n
                    .labels
                    .iter()
                    .map(|l| graph.symbols().label_name(*l))
                    .collect();
                let props: serde_json::Map<String, serde_json::Value> = n
                    .props
                    .iter()
                    .map(|(k, v)| (k.clone(), value_to_json(v)))
                    .collect();
                json!({ "~node": id.0, "labels": labels, "props": props })
            }
            None => serde_json::Value::Null,
        },
        RtVal::Rel(id) => match graph.rel(*id) {
            Some(r) => {
                let props: serde_json::Map<String, serde_json::Value> = r
                    .props
                    .iter()
                    .map(|(k, v)| (k.clone(), value_to_json(v)))
                    .collect();
                json!({
                    "~rel": id.0,
                    "type": graph.symbols().rel_type_name(r.rel_type),
                    "props": props,
                })
            }
            None => serde_json::Value::Null,
        },
        RtVal::List(l) => {
            serde_json::Value::Array(l.iter().map(|x| encode_value(x, graph)).collect())
        }
    }
}

/// JSON → a client-side value (entities stay as JSON objects).
pub fn decode_value(v: &serde_json::Value) -> serde_json::Value {
    v.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut r = Request::new("MATCH (n) RETURN n");
        r.params.insert("x".into(), Value::Int(7));
        r.params.insert("s".into(), Value::Str("a'b".into()));
        let back = Request::from_line(&r.to_line()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn response_roundtrip() {
        let r = Response::Ok {
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![json!(1), json!("x")], vec![json!(null), json!([1, 2])]],
        };
        assert_eq!(Response::from_line(&r.to_line()).unwrap(), r);
        let e = Response::Error("boom".into());
        assert_eq!(Response::from_line(&e.to_line()).unwrap(), e);
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(Request::from_line("{").is_err());
        assert!(Request::from_line("{}").is_err());
        assert!(Response::from_line("{\"status\":\"weird\"}").is_err());
    }

    #[test]
    fn commands_roundtrip() {
        assert_eq!(
            Command::from_line(&Command::Stats.to_line()).unwrap(),
            Command::Stats
        );
        assert_eq!(
            Command::from_line(&Command::Ping.to_line()).unwrap(),
            Command::Ping
        );
        let q = Command::Query(Request::new("RETURN 1"));
        assert_eq!(Command::from_line(&q.to_line()).unwrap(), q);
    }

    #[test]
    fn write_and_checkpoint_commands_roundtrip() {
        let mut req = Request::new("CREATE (n:Tag {label: $l})");
        req.params.insert("l".into(), Value::Str("spof".into()));
        let w = Command::Write(req);
        assert_eq!(Command::from_line(&w.to_line()).unwrap(), w);
        assert_eq!(
            Command::from_line(&Command::Checkpoint.to_line()).unwrap(),
            Command::Checkpoint
        );
        // A write command without a query is a protocol error.
        assert_eq!(
            Command::from_line(r#"{"cmd":"write"}"#).unwrap_err(),
            ProtoError::MissingQuery
        );
    }

    #[test]
    fn written_and_checkpointed_responses_roundtrip() {
        let r = Response::Written {
            columns: vec!["n".into()],
            rows: vec![vec![json!({"~node": 0})]],
            summary: json!({"nodes_created": 1}),
        };
        assert_eq!(Response::from_line(&r.to_line()).unwrap(), r);
        let c = Response::Checkpointed { generation: 3 };
        assert_eq!(Response::from_line(&c.to_line()).unwrap(), c);
    }

    #[test]
    fn proto_errors_are_structured() {
        assert_eq!(Command::from_line("   ").unwrap_err(), ProtoError::Empty);
        assert_eq!(Command::from_line("{").unwrap_err().code(), "bad_json");
        assert_eq!(
            Command::from_line("{}").unwrap_err(),
            ProtoError::MissingQuery
        );
        assert_eq!(
            Command::from_line(r#"{"cmd":"reboot"}"#).unwrap_err(),
            ProtoError::UnknownCommand("reboot".into())
        );
        let e = ProtoError::TooLarge { len: 10, max: 5 };
        assert!(e.to_string().starts_with("request_too_large:"));
    }

    #[test]
    fn pong_and_stats_roundtrip() {
        assert_eq!(
            Response::from_line(&Response::Pong.to_line()).unwrap(),
            Response::Pong
        );
        let s = Response::Stats(json!({"graph": {"nodes": 3}}));
        assert_eq!(Response::from_line(&s.to_line()).unwrap(), s);
    }

    #[test]
    fn value_json_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Str("hello".into()),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
        ];
        for v in vals {
            assert_eq!(json_to_value(&value_to_json(&v)), v);
        }
    }

    #[test]
    fn entities_are_inlined() {
        let mut g = Graph::new();
        let a = g.merge_node("AS", "asn", 2497u32, iyp_graph::Props::new());
        let b = g.merge_node("AS", "asn", 1u32, iyp_graph::Props::new());
        let r = g
            .create_rel(a, "PEERS_WITH", b, iyp_graph::Props::new())
            .unwrap();
        let jn = encode_value(&RtVal::Node(a), &g);
        assert_eq!(jn["labels"][0], "AS");
        assert_eq!(jn["props"]["asn"], 2497);
        let jr = encode_value(&RtVal::Rel(r), &g);
        assert_eq!(jr["type"], "PEERS_WITH");
    }
}
