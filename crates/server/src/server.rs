//! The query server: read-only over a shared graph, or read-write over
//! a journaled [`DurableGraph`].

use crate::proto::{encode_value, Command, ProtoError, Response};
use iyp_graph::{Graph, GraphStats};
use iyp_journal::DurableGraph;
use serde_json::json;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server errors.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or accepting failed.
    Io(std::io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Hard cap on a single request line (1 MiB) — a protocol guard, not a
/// resource plan.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Queries slower than this are logged to stderr (and counted in
/// `iyp_server_slow_queries_total`).
const SLOW_QUERY: Duration = Duration::from_millis(250);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum connection handlers in flight at once. Connections
    /// arriving above the cap are rejected with a structured `busy`
    /// error (and counted in `iyp_server_busy_rejected_total`) instead
    /// of spawning an unbounded thread per connection.
    pub max_connections: usize,
    /// Wall-clock deadline for a single read query. Queries past the
    /// deadline are cancelled cooperatively at a row boundary and the
    /// client gets a structured `timeout` error (counted in
    /// `iyp_server_query_timeout_total`); the connection stays usable.
    /// `None` (the default) disables the deadline. Write queries are
    /// not covered: they hold the exclusive journal lock and must run
    /// to completion or not at all.
    pub query_timeout: Option<Duration>,
    /// Byte budget (in MiB) for the server's epoch-keyed query result
    /// cache (`serve --cache-mb N`). Repeated identical queries against
    /// an unchanged graph are answered from the cache without
    /// executing; any journaled write bumps the graph epoch, so stale
    /// entries simply stop matching. Cache hits still honor
    /// `query_timeout`: an expired deadline reports `timeout` even
    /// when the result is cached. `None` (the default) disables the
    /// cache.
    pub cache_mb: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_connections: 64,
            query_timeout: None,
            cache_mb: None,
        }
    }
}

/// A structured rejection: something the server declined to do, written
/// to the client as one `error` line and counted in telemetry. Both the
/// accept-thread busy path and the in-handler query-timeout path go
/// through here so the wire format and the counters cannot drift.
enum Reject {
    /// The connection arrived above the in-flight handler cap.
    Busy { max_connections: usize },
    /// A read query exceeded the configured deadline and was cancelled
    /// at a row boundary.
    QueryTimeout { limit: Duration, after_ms: u64 },
}

impl Reject {
    fn counter(&self) -> &'static str {
        match self {
            Reject::Busy { .. } => iyp_telemetry::names::SERVER_BUSY_REJECTED_TOTAL,
            Reject::QueryTimeout { .. } => iyp_telemetry::names::SERVER_QUERY_TIMEOUT_TOTAL,
        }
    }

    fn message(&self) -> String {
        match self {
            Reject::Busy { max_connections } => format!(
                "busy: server is at its connection cap ({max_connections} in flight); retry shortly"
            ),
            Reject::QueryTimeout { limit, after_ms } => format!(
                "timeout: query exceeded the {} ms deadline; cancelled at a row boundary after {after_ms} ms",
                limit.as_millis()
            ),
        }
    }

    /// Counts the rejection and renders it as the wire response.
    fn response(&self) -> Response {
        iyp_telemetry::counter(self.counter()).incr();
        Response::Error(self.message())
    }
}

/// Decrements the in-flight connection count when a handler exits,
/// however it exits.
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What the server serves: an immutable shared graph, or a journaled
/// durable one that also accepts `write` and `checkpoint` commands.
#[derive(Clone)]
pub enum Service {
    /// Read-only over an `Arc<Graph>` (the paper's public instance).
    ReadOnly(Arc<Graph>),
    /// Read-write over a [`DurableGraph`] (the local-instance
    /// workflow, §6.1): concurrent readers, exclusive writer, every
    /// write journaled before it is acknowledged.
    Durable(Arc<DurableGraph>),
}

/// A running query server. Dropping the handle (or calling
/// [`Server::stop`]) shuts the listener down and joins the accept
/// thread.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a read-only server for `graph` on `addr` (use port 0 to
    /// pick a free port; the bound address is available via
    /// [`Server::addr`]).
    pub fn start(graph: Arc<Graph>, addr: &str) -> Result<Server, ServerError> {
        Self::start_service(Service::ReadOnly(graph), addr)
    }

    /// Starts a read-write server over a journaled graph.
    pub fn start_durable(durable: Arc<DurableGraph>, addr: &str) -> Result<Server, ServerError> {
        Self::start_service(Service::Durable(durable), addr)
    }

    /// Starts a server for any [`Service`] with default options.
    pub fn start_service(service: Service, addr: &str) -> Result<Server, ServerError> {
        Self::start_service_with(service, addr, ServerOptions::default())
    }

    /// Starts a server for any [`Service`] with explicit options.
    pub fn start_service_with(
        service: Service,
        addr: &str,
        options: ServerOptions,
    ) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(addr).map_err(ServerError::Io)?;
        let addr = listener.local_addr().map_err(ServerError::Io)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicUsize::new(0));
        let accept_shutdown = shutdown.clone();
        let accept_served = served.clone();
        let max_connections = options.max_connections.max(1);
        let query_timeout = options.query_timeout;
        // One result cache per service, shared by every connection
        // handler (QueryCache is internally synchronised). Capacity 0
        // (no --cache-mb) leaves it inert.
        let cache = Arc::new(iyp_cypher::QueryCache::with_capacity_mb(
            options.cache_mb.unwrap_or(0),
        ));
        let active = Arc::new(AtomicUsize::new(0));

        // The listener blocks in accept(); stop() wakes it with a
        // throwaway connection after setting the shutdown flag, so
        // shutdown is immediate without a sleep/poll cycle burning a
        // wakeup every 10 ms for the server's whole lifetime.
        let accept_thread = std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break; // the wakeup connection itself
                    }
                    // Cap in-flight handlers: above the cap, reject
                    // with a structured `busy` error instead of
                    // spawning without bound.
                    if active.load(Ordering::SeqCst) >= max_connections {
                        reject_on_accept(stream, Reject::Busy { max_connections });
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    let guard = ActiveGuard(active.clone());
                    let service = service.clone();
                    let served = accept_served.clone();
                    let cache = cache.clone();
                    // Workers are detached: they exit on client EOF
                    // or the 30 s read timeout. stop() only has to
                    // stop *accepting*; draining connections is the
                    // clients' business (writes are journaled before
                    // they are acknowledged, so there is nothing to
                    // flush here).
                    std::thread::spawn(move || {
                        let _guard = guard;
                        let _ = handle_connection(stream, &service, &served, query_timeout, &cache);
                    });
                }
                Err(_) => {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
        });

        Ok(Server {
            addr,
            shutdown,
            served,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of requests served so far.
    pub fn served(&self) -> usize {
        self.served.load(Ordering::SeqCst)
    }

    /// Stops the server and joins the accept thread.
    pub fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already stopped
        }
        // Wake the blocked accept() so the thread observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Writes a [`Reject`] to a connection we never admitted and drops the
/// stream. Runs on the accept thread, so it must never block on a slow
/// client — hence the short write timeout and ignored errors.
fn reject_on_accept(mut stream: TcpStream, reject: Reject) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = reject.response();
    let _ = stream.write_all(resp.to_line().as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// Serves one connection: one request line → one response line, until
/// EOF or a protocol error.
fn handle_connection(
    stream: TcpStream,
    service: &Service,
    served: &AtomicUsize,
    query_timeout: Option<Duration>,
    cache: &iyp_cypher::QueryCache,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    loop {
        let mut read = String::new();
        match reader.read_line(&mut read) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) => return Err(e),
        }
        if read.len() > MAX_REQUEST_BYTES {
            // Oversized lines kill the connection: the rest of the
            // line is still in flight and can't be resynchronised.
            let err = ProtoError::TooLarge {
                len: read.len(),
                max: MAX_REQUEST_BYTES,
            };
            let resp = Response::Error(err.to_string());
            writer.write_all(resp.to_line().as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            return Ok(());
        }
        served.fetch_add(1, Ordering::SeqCst);
        let response = match Command::from_line(&read) {
            Ok(Command::Ping) => Response::Pong,
            Ok(Command::Stats) => match service {
                Service::ReadOnly(graph) => Response::Stats(stats_json(graph)),
                Service::Durable(durable) => durable.read(|g| Response::Stats(stats_json(g))),
            },
            Ok(Command::Query(req)) => {
                let _span = iyp_telemetry::span(iyp_telemetry::names::SERVER_REQUEST_SECONDS);
                let started = Instant::now();
                let response = match service {
                    Service::ReadOnly(graph) => run_query(graph, &req, query_timeout, cache),
                    Service::Durable(durable) => {
                        durable.read(|g| run_query(g, &req, query_timeout, cache))
                    }
                };
                log_if_slow(&req.query, started.elapsed());
                response
            }
            Ok(Command::Write(req)) => {
                let _span = iyp_telemetry::span(iyp_telemetry::names::SERVER_REQUEST_SECONDS);
                let started = Instant::now();
                let response = match service {
                    Service::ReadOnly(_) => Response::Error(
                        "read_only: this server has no journal; start it with --journal to accept writes"
                            .to_string(),
                    ),
                    Service::Durable(durable) => {
                        iyp_telemetry::counter(iyp_telemetry::names::SERVER_WRITE_QUERIES_TOTAL)
                            .incr();
                        match durable.write(|g| run_write(g, &req)) {
                            Ok(resp) => resp,
                            Err(e) => Response::Error(format!("journal: {e}")),
                        }
                    }
                };
                log_if_slow(&req.query, started.elapsed());
                response
            }
            Ok(Command::Checkpoint) => match service {
                Service::ReadOnly(_) => Response::Error(
                    "read_only: this server has no journal; nothing to checkpoint".to_string(),
                ),
                Service::Durable(durable) => match durable.checkpoint() {
                    Ok(generation) => Response::Checkpointed { generation },
                    Err(e) => Response::Error(format!("journal: {e}")),
                },
            },
            Err(e) => Response::Error(e.to_string()),
        };
        writer.write_all(response.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Runs a read query and encodes the result (inside whatever lock the
/// caller holds — entity encoding needs the graph). With a timeout the
/// query runs under a deadline token; without one it runs unpolled, so
/// results are byte-identical to an untimed server. The statement
/// consults the service's epoch-keyed result cache: a hit skips
/// execution entirely (the cached result is from this exact graph
/// epoch, so it is what execution would have produced) but still polls
/// the deadline token once, preserving `--query-timeout` semantics.
fn run_query(
    graph: &Graph,
    req: &crate::proto::Request,
    timeout: Option<Duration>,
    cache: &iyp_cypher::QueryCache,
) -> Response {
    let stmt = match iyp_cypher::Statement::prepare(&req.query) {
        Ok(stmt) => stmt,
        Err(e) => return Response::Error(e.to_string()),
    };
    let stmt = stmt.params(&req.params).cache(cache);
    let result = match timeout {
        Some(limit) => {
            let cancel = iyp_cypher::Cancel::with_timeout(limit);
            stmt.cancel(&cancel).run_shared(graph)
        }
        None => stmt.run_shared(graph),
    };
    match result {
        Ok(rs) => Response::Ok {
            columns: rs.columns.clone(),
            rows: rs
                .rows
                .iter()
                .map(|row| row.iter().map(|v| encode_value(v, graph)).collect())
                .collect(),
        },
        Err(iyp_cypher::CypherError::Timeout { after_ms }) => Reject::QueryTimeout {
            limit: timeout.unwrap_or_default(),
            after_ms,
        }
        .response(),
        Err(e) => Response::Error(e.to_string()),
    }
}

/// Runs a write query and encodes the result while still holding the
/// exclusive lock.
fn run_write(graph: &mut Graph, req: &crate::proto::Request) -> Response {
    match iyp_cypher::query_write(graph, &req.query, &req.params) {
        Ok((rs, summary)) => Response::Written {
            columns: rs.columns.clone(),
            rows: rs
                .rows
                .iter()
                .map(|row| row.iter().map(|v| encode_value(v, graph)).collect())
                .collect(),
            summary: json!({
                "nodes_created": summary.nodes_created,
                "rels_created": summary.rels_created,
                "props_set": summary.props_set,
                "nodes_deleted": summary.nodes_deleted,
                "rels_deleted": summary.rels_deleted,
            }),
        },
        Err(e) => Response::Error(e.to_string()),
    }
}

fn log_if_slow(query: &str, elapsed: Duration) {
    if elapsed >= SLOW_QUERY {
        iyp_telemetry::counter(iyp_telemetry::names::SERVER_SLOW_QUERIES_TOTAL).incr();
        let preview: String = query.chars().take(200).collect();
        eprintln!(
            "[iyp-server] slow query ({:.1} ms): {}",
            elapsed.as_secs_f64() * 1e3,
            preview.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
}

/// The `STATS` payload: graph statistics plus a snapshot of every
/// registered telemetry metric.
fn stats_json(graph: &Graph) -> serde_json::Value {
    let stats = GraphStats::compute(graph);
    let labels: serde_json::Map<String, serde_json::Value> = stats
        .nodes_per_label
        .iter()
        .map(|(k, v)| (k.clone(), json!(v)))
        .collect();
    let rel_types: serde_json::Map<String, serde_json::Value> = stats
        .rels_per_type
        .iter()
        .map(|(k, v)| (k.clone(), json!(v)))
        .collect();
    let mut telemetry = serde_json::Map::new();
    for (name, value) in iyp_telemetry::snapshot() {
        let v = match value {
            iyp_telemetry::MetricValue::Counter(c) => json!(c),
            iyp_telemetry::MetricValue::Gauge(g) => json!(g),
            iyp_telemetry::MetricValue::Histogram { count, sum } => {
                json!({ "count": count, "sum_seconds": sum.as_secs_f64() })
            }
        };
        telemetry.insert(name, v);
    }
    json!({
        "graph": {
            "nodes": stats.nodes,
            "rels": stats.rels,
            "nodes_per_label": labels,
            "rels_per_type": rel_types,
        },
        "telemetry": telemetry,
    })
}
