//! End-to-end query caching on the server: `--cache-mb` turns repeat
//! queries into cache hits, and a journaled write between two
//! identical queries invalidates implicitly — the second result
//! reflects the write and telemetry records a miss, never a stale hit.

use iyp_graph::{Graph, Props};
use iyp_journal::{DurableGraph, FsyncPolicy};
use iyp_server::{Client, Server, ServerOptions, Service};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The cache counters are process-global, so the tests in this binary
/// must not observe them concurrently.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iyp-server-cache-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeded(dir: &Path) -> Arc<DurableGraph> {
    let mut g = Graph::new();
    for asn in [2497i64, 64496, 64497] {
        g.merge_node("AS", "asn", asn, Props::new());
    }
    Arc::new(DurableGraph::seed(dir, g, FsyncPolicy::Never).expect("seed"))
}

fn cache_counters() -> (u64, u64) {
    (
        iyp_telemetry::counter(iyp_telemetry::names::CYPHER_CACHE_HITS_TOTAL).get(),
        iyp_telemetry::counter(iyp_telemetry::names::CYPHER_CACHE_MISSES_TOTAL).get(),
    )
}

const COUNT_QUERY: &str = "MATCH (a:AS) RETURN count(a)";

#[test]
fn journaled_write_invalidates_the_cache() {
    let _serial = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    iyp_telemetry::enable();
    let dir = tmpdir("invalidate");
    let mut server = Server::start_service_with(
        Service::Durable(seeded(&dir)),
        "127.0.0.1:0",
        ServerOptions {
            cache_mb: Some(16),
            ..Default::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Cold query: a miss that populates the cache.
    let (hits0, misses0) = cache_counters();
    let first = client.query(COUNT_QUERY).expect("first query");
    assert_eq!(first.single_int(), Some(3));
    let (hits1, misses1) = cache_counters();
    assert_eq!(misses1, misses0 + 1, "cold query must be a miss");
    assert_eq!(hits1, hits0, "cold query must not hit");

    // Identical repeat: served from the cache, byte-identical.
    let second = client.query(COUNT_QUERY).expect("second query");
    assert_eq!(second, first);
    let (hits2, misses2) = cache_counters();
    assert_eq!(hits2, hits1 + 1, "repeat query must hit");
    assert_eq!(misses2, misses1);

    // A journaled write bumps the graph epoch: the cached entry's key
    // no longer matches, so the third (identical) query re-executes
    // and sees the write — never the cached past.
    client
        .write("MERGE (a:AS {asn: 65000})")
        .expect("journaled write");
    let third = client.query(COUNT_QUERY).expect("third query");
    assert_eq!(
        third.single_int(),
        Some(4),
        "result must reflect the journaled write immediately"
    );
    let (hits3, misses3) = cache_counters();
    assert_eq!(misses3, misses2 + 1, "post-write query must be a miss");
    assert_eq!(
        hits3, hits2,
        "post-write query must not hit the stale entry"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_only_server_serves_repeat_queries_from_cache() {
    let _serial = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    iyp_telemetry::enable();
    let mut g = Graph::new();
    for asn in 0..32i64 {
        g.merge_node("AS", "asn", asn, Props::new());
    }
    let mut server = Server::start_service_with(
        Service::ReadOnly(Arc::new(g)),
        "127.0.0.1:0",
        ServerOptions {
            cache_mb: Some(16),
            ..Default::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let q = "MATCH (a:AS) RETURN a.asn ORDER BY a.asn";
    let first = client.query(q).expect("first");
    let (hits0, _) = cache_counters();
    for _ in 0..5 {
        let again = client.query(q).expect("repeat");
        assert_eq!(again, first, "cached result diverged");
    }
    let (hits1, _) = cache_counters();
    assert!(hits1 >= hits0 + 5, "repeats must be cache hits");
    server.stop();
}

#[test]
fn cache_disabled_by_default_never_hits() {
    let _serial = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    iyp_telemetry::enable();
    let mut g = Graph::new();
    g.merge_node("AS", "asn", 1i64, Props::new());
    // Default options: no cache_mb, so lookups bypass the cache (and
    // don't even count as misses).
    let mut server = Server::start(Arc::new(g), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (hits0, misses0) = cache_counters();
    for _ in 0..3 {
        client.query(COUNT_QUERY).expect("query");
    }
    let (hits1, misses1) = cache_counters();
    assert_eq!(hits1, hits0, "disabled cache must never hit");
    assert_eq!(misses1, misses0, "disabled cache must not count misses");
    server.stop();
}
