//! End-to-end tests for the writable (journal-backed) server, plus the
//! shutdown-latency regression test for the blocking accept loop.

use iyp_graph::{Graph, Props};
use iyp_journal::{DurableGraph, FsyncPolicy};
use iyp_server::{Client, Response, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> std::path::PathBuf {
    let n = DIR.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("iyp-dursvc-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeded(dir: &std::path::Path) -> Arc<DurableGraph> {
    let mut g = Graph::new();
    g.merge_node("AS", "asn", 2497u32, Props::new());
    Arc::new(DurableGraph::seed(dir, g, FsyncPolicy::Never).expect("seed"))
}

#[test]
fn stop_returns_promptly_without_busy_wait() {
    // The accept loop blocks in accept(2) rather than polling; stop()
    // must still return in well under a second by waking it up.
    let server = Server::start(Arc::new(Graph::new()), "127.0.0.1:0").expect("bind");
    let mut server = server;
    std::thread::sleep(Duration::from_millis(50)); // let it block in accept
    let t = Instant::now();
    server.stop();
    assert!(
        t.elapsed() < Duration::from_millis(500),
        "stop() took {:?}",
        t.elapsed()
    );
}

#[test]
fn write_over_the_wire_mutates_and_reports_summary() {
    let dir = tmpdir();
    let mut server = Server::start_durable(seeded(&dir), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let resp = client
        .write("MERGE (a:AS {asn: 64500}) SET a.name = 'TESTNET'")
        .unwrap();
    let Response::Written { summary, .. } = resp else {
        panic!("expected Written, got {resp:?}")
    };
    assert_eq!(summary["nodes_created"], serde_json::json!(1));
    assert_eq!(summary["props_set"], serde_json::json!(1));

    // The write is immediately visible to reads on the same server.
    let table = client
        .query("MATCH (a:AS {asn: 64500}) RETURN a.name")
        .unwrap();
    assert_eq!(table.single(), Some(&serde_json::json!("TESTNET")));
    server.stop();

    // ...and survives a restart from the journal alone (no checkpoint).
    let (durable, report) = DurableGraph::open(&dir, FsyncPolicy::Never).expect("reopen");
    assert_eq!(report.replay.batches, 1);
    assert_eq!(durable.read(|g| g.node_count()), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_over_the_wire_advances_generation() {
    let dir = tmpdir();
    let mut server = Server::start_durable(seeded(&dir), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.write("CREATE (:Tag {label: 'x'})").unwrap();
    let generation = client.checkpoint().unwrap();
    assert_eq!(generation, 2);
    // Post-checkpoint recovery loads the snapshot; no WAL replay needed.
    server.stop();
    let (durable, report) = DurableGraph::open(&dir, FsyncPolicy::Never).expect("reopen");
    assert_eq!(report.generation, 2);
    assert!(report.snapshot_loaded);
    assert_eq!(report.replay.batches, 0);
    assert_eq!(durable.read(|g| g.node_count()), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn write_queries_with_errors_do_not_poison_the_server() {
    let dir = tmpdir();
    let mut server = Server::start_durable(seeded(&dir), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client.write("MERGE (a:AS {asn: ").unwrap();
    assert!(matches!(resp, Response::Error(_)), "{resp:?}");
    // The connection and the graph both survive.
    let resp = client.write("CREATE (:Tag {label: 'ok'})").unwrap();
    assert!(matches!(resp, Response::Written { .. }), "{resp:?}");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_only_server_rejects_write_and_checkpoint() {
    let mut server = Server::start(Arc::new(Graph::new()), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client.write("CREATE (:Tag {label: 'x'})").unwrap();
    let Response::Error(msg) = resp else {
        panic!("expected error, got {resp:?}")
    };
    assert!(msg.starts_with("read_only:"), "{msg}");
    let err = client.checkpoint().unwrap_err();
    assert!(err.to_string().starts_with("read_only:"), "{err}");
    server.stop();
}

#[test]
fn concurrent_readers_see_consistent_graph_during_writes() {
    let dir = tmpdir();
    let mut server = Server::start_durable(seeded(&dir), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        for i in 0..30 {
            let resp = client
                .write(&format!("MERGE (a:AS {{asn: {}}})", 65000 + i))
                .unwrap();
            assert!(matches!(resp, Response::Written { .. }));
        }
    });
    let mut readers = Vec::new();
    for _ in 0..3 {
        readers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut last = 0i64;
            for _ in 0..20 {
                let table = client.query("MATCH (a:AS) RETURN count(a)").unwrap();
                let n = table.single_int().unwrap();
                assert!(n >= last, "count went backwards: {last} -> {n}");
                last = n;
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    server.stop();
    let (durable, _) = DurableGraph::open(&dir, FsyncPolicy::Never).expect("reopen");
    assert_eq!(durable.read(|g| g.node_count()), 31);
    let _ = std::fs::remove_dir_all(&dir);
}
