//! End-to-end service tests: server + client over real sockets.

use iyp_graph::{props, Graph, Props, Value};
use iyp_server::{Client, Request, Response, Server, ServerOptions, Service};
use std::sync::Arc;

fn sample_graph() -> Arc<Graph> {
    let mut g = Graph::new();
    for asn in [2497u32, 64496, 64497] {
        g.merge_node("AS", "asn", asn, Props::new());
    }
    let a = g.merge_node("AS", "asn", 2497u32, props([("name", "IIJ".into())]));
    let p = g.merge_node("Prefix", "prefix", "192.0.2.0/24", Props::new());
    g.create_rel(
        a,
        "ORIGINATE",
        p,
        props([("reference_name", Value::Str("bgpkit".into()))]),
    )
    .unwrap();
    Arc::new(g)
}

fn start() -> (Server, std::net::SocketAddr) {
    let server = Server::start(sample_graph(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    (server, addr)
}

#[test]
fn query_roundtrip() {
    let (mut server, addr) = start();
    let mut client = Client::connect(addr).expect("connect");
    let table = client.query("MATCH (a:AS) RETURN count(a)").unwrap();
    assert_eq!(table.columns.len(), 1);
    assert_eq!(table.single_int(), Some(3));
    server.stop();
}

#[test]
fn entities_are_transported() {
    let (mut server, addr) = start();
    let mut client = Client::connect(addr).expect("connect");
    let table = client
        .query("MATCH (a:AS {asn: 2497})-[r:ORIGINATE]-(p:Prefix) RETURN a, r, p")
        .unwrap();
    let rows = &table.rows;
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0]["labels"][0], "AS");
    assert_eq!(rows[0][0]["props"]["asn"], 2497);
    assert_eq!(rows[0][1]["type"], "ORIGINATE");
    assert_eq!(rows[0][2]["props"]["prefix"], "192.0.2.0/24");
    server.stop();
}

#[test]
fn parameters_travel() {
    let (mut server, addr) = start();
    let mut client = Client::connect(addr).expect("connect");
    let mut req = Request::new("MATCH (a:AS {asn: $asn}) RETURN a.asn");
    req.params.insert("asn".into(), Value::Int(64496));
    let Response::Ok { rows, .. } = client.request(&req).unwrap() else {
        panic!()
    };
    assert_eq!(rows[0][0], serde_json::json!(64496));
    server.stop();
}

#[test]
fn query_errors_are_reported_not_fatal() {
    let (mut server, addr) = start();
    let mut client = Client::connect(addr).expect("connect");
    let err = client.query("MATCH (a:AS RETURN a").unwrap_err();
    assert_eq!(err.code(), "query", "{err}");
    // The connection survives an error.
    let table = client.query("MATCH (a:AS) RETURN count(a)").unwrap();
    assert_eq!(table.single_int(), Some(3));
    server.stop();
}

#[test]
fn multiple_sequential_requests_per_connection() {
    let (mut server, addr) = start();
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..10 {
        let table = client.query("MATCH (a:AS) RETURN count(a)").unwrap();
        assert_eq!(table.single_int(), Some(3));
    }
    assert!(server.served() >= 10);
    server.stop();
}

#[test]
fn concurrent_clients() {
    let (mut server, addr) = start();
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for _ in 0..5 {
                let table = client
                    .query("MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN count(*)")
                    .unwrap();
                assert_eq!(table.single_int(), Some(1));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(server.served() >= 40);
    server.stop();
}

#[test]
fn malformed_request_yields_error_line() {
    use std::io::{BufRead, BufReader, Write};
    let (mut server, addr) = start();
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let resp = Response::from_line(line.trim()).unwrap();
    assert!(matches!(resp, Response::Error(_)));
    server.stop();
}

#[test]
fn stop_is_idempotent_and_prompt() {
    let (mut server, _addr) = start();
    server.stop();
    server.stop();
}

#[test]
fn ping_liveness() {
    let (mut server, addr) = start();
    // connect() itself performs a PING handshake; probe again manually.
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.ping().unwrap());
    server.stop();
}

#[test]
fn stats_command_reports_graph_and_telemetry() {
    let (mut server, addr) = start();
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().unwrap();
    assert_eq!(stats["graph"]["nodes"], serde_json::json!(4));
    assert_eq!(
        stats["graph"]["nodes_per_label"]["AS"],
        serde_json::json!(3)
    );
    assert_eq!(
        stats["graph"]["rels_per_type"]["ORIGINATE"],
        serde_json::json!(1)
    );
    assert!(stats["telemetry"].as_object().is_some());
    server.stop();
}

#[test]
fn explain_flows_through_the_protocol() {
    let (mut server, addr) = start();
    let mut client = Client::connect(addr).expect("connect");
    let table = client
        .query("EXPLAIN MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN count(*)")
        .unwrap();
    assert_eq!(table.columns, vec!["plan"]);
    let text: Vec<String> = table
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect();
    assert!(text[0].starts_with("ProduceResults"), "{text:?}");
    assert!(text.iter().any(|l| l.contains("Match")), "{text:?}");
    server.stop();
}

#[test]
fn empty_lines_are_rejected_with_structured_error() {
    use std::io::{BufRead, BufReader, Write};
    let (mut server, addr) = start();
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let Response::Error(msg) = Response::from_line(line.trim()).unwrap() else {
        panic!("expected error")
    };
    assert!(msg.starts_with("empty_request:"), "{msg}");
    server.stop();
}

#[test]
fn connection_cap_rejects_excess_clients_with_busy() {
    use std::io::{BufRead, BufReader};
    let mut server = Server::start_service_with(
        Service::ReadOnly(sample_graph()),
        "127.0.0.1:0",
        ServerOptions {
            max_connections: 2,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // connect() performs a PING roundtrip, so once it returns the
    // handler thread is definitely in flight.
    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");
    assert!(a.ping().unwrap());
    assert!(b.ping().unwrap());

    // Third connection is over the cap: it gets one busy error line.
    let third = std::net::TcpStream::connect(addr).unwrap();
    let mut line = String::new();
    BufReader::new(third).read_line(&mut line).unwrap();
    let Response::Error(msg) = Response::from_line(line.trim()).unwrap() else {
        panic!("expected busy error, got {line:?}")
    };
    assert!(msg.starts_with("busy:"), "{msg}");

    // Releasing a slot lets new clients in again (the handler needs a
    // moment to observe EOF, so retry briefly).
    drop(a);
    let mut readmitted = None;
    for _ in 0..100 {
        if let Ok(c) = Client::connect(addr) {
            readmitted = Some(c);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut c = readmitted.expect("slot was never released");
    assert!(c.ping().unwrap());
    drop(b);
    server.stop();
}

#[test]
fn oversized_lines_are_rejected_with_structured_error() {
    use std::io::{BufRead, BufReader, Write};
    let (mut server, addr) = start();
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let huge = format!("{{\"query\": \"{}\"}}\n", "x".repeat(2 << 20));
    stream.write_all(huge.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let Response::Error(msg) = Response::from_line(line.trim()).unwrap() else {
        panic!("expected error")
    };
    assert!(msg.starts_with("request_too_large:"), "{msg}");
    server.stop();
}
