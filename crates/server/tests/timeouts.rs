//! End-to-end query deadlines: a server started with a `query_timeout`
//! cancels over-deadline queries at a row boundary, sends the client a
//! structured `timeout` error, and keeps the connection usable.

use iyp_graph::{Graph, Props};
use iyp_server::{Client, ClientError, Server, ServerOptions, Service};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A densely meshed AS graph: var-length path queries over it explode
/// combinatorially, so they reliably outlive a short deadline while
/// still being cancellable within one row's worth of work.
fn dense_graph() -> Arc<Graph> {
    let mut g = Graph::new();
    let nodes: Vec<_> = (0..48i64)
        .map(|asn| g.merge_node("AS", "asn", asn, Props::new()))
        .collect();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            g.create_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        }
    }
    Arc::new(g)
}

/// Combinatorial: every 1..4-hop path through a 48-node clique.
const SLOW_QUERY: &str = "MATCH (a:AS)-[:PEERS_WITH*1..4]-(b:AS) RETURN count(*)";

fn start_with_timeout(timeout: Duration) -> (Server, std::net::SocketAddr) {
    let server = Server::start_service_with(
        Service::ReadOnly(dense_graph()),
        "127.0.0.1:0",
        ServerOptions {
            query_timeout: Some(timeout),
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    (server, addr)
}

#[test]
fn slow_query_gets_structured_timeout_and_connection_survives() {
    iyp_telemetry::enable();
    let before = iyp_telemetry::counter(iyp_telemetry::names::SERVER_QUERY_TIMEOUT_TOTAL).get();
    let limit = Duration::from_millis(150);
    let (mut server, addr) = start_with_timeout(limit);
    let mut client = Client::connect(addr).expect("connect");

    let started = Instant::now();
    let err = client.query(SLOW_QUERY).expect_err("expected timeout");
    let elapsed = started.elapsed();
    let ClientError::Timeout(detail) = &err else {
        panic!("expected timeout error, got {err:?}")
    };
    assert_eq!(err.code(), "timeout");
    assert!(detail.contains("150 ms deadline"), "{detail}");
    // Cancellation is cooperative but per-row, so the whole roundtrip
    // lands well under the many seconds the query would otherwise run.
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");

    // The connection is still usable after a timeout.
    assert!(client.ping().expect("ping after timeout"));
    let table = client
        .query("MATCH (a:AS) RETURN count(a)")
        .expect("fast query after timeout");
    assert_eq!(table.single_int(), Some(48));

    let after = iyp_telemetry::counter(iyp_telemetry::names::SERVER_QUERY_TIMEOUT_TOTAL).get();
    assert!(after > before, "timeout counter did not move");
    server.stop();
}

#[test]
fn under_deadline_queries_match_untimed_server() {
    let graph = dense_graph();
    let mut untimed = Server::start(graph.clone(), "127.0.0.1:0").expect("bind");
    let mut timed = Server::start_service_with(
        Service::ReadOnly(graph),
        "127.0.0.1:0",
        ServerOptions {
            query_timeout: Some(Duration::from_secs(3600)),
            ..Default::default()
        },
    )
    .expect("bind");

    let mut a = Client::connect(untimed.addr()).expect("connect");
    let mut b = Client::connect(timed.addr()).expect("connect");
    for q in [
        "MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 5",
        "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) WHERE a.asn < b.asn RETURN count(*)",
    ] {
        let ra = a.query(q).expect("untimed");
        let rb = b.query(q).expect("timed");
        assert_eq!(ra, rb, "{q}: timed server output diverged");
    }
    untimed.stop();
    timed.stop();
}
