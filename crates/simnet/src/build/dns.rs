//! Pass 2: TLD registries, managed DNS providers, ranked domains.

use super::{first_v4_prefix, host_ip, ip_in_prefix};
use crate::types::*;
use crate::world::World;
use rand::rngs::StdRng;
use rand::Rng;
use std::net::IpAddr;

/// (label, registry country, ccTLD?, share of the domain population).
/// `.com`/`.net`/`.org` together carry ~49% — the Section 4.2.1 share.
const TLDS: [(&str, &str, bool, f64); 12] = [
    ("com", "US", false, 0.32),
    ("net", "US", false, 0.10),
    ("org", "US", false, 0.07),
    ("de", "DE", true, 0.08),
    ("ru", "RU", true, 0.07),
    ("cn", "CN", true, 0.07),
    ("jp", "JP", true, 0.06),
    ("uk", "GB", true, 0.06),
    ("fr", "FR", true, 0.05),
    ("nl", "NL", true, 0.04),
    ("info", "US", false, 0.05),
    ("biz", "US", false, 0.03),
];

const PROVIDER_NAMES: [&str; 14] = [
    "globaldns",
    "anycastdns",
    "parkzone",
    "offzonedns",
    "meetdns",
    "cramped-ns",
    "zonefleet",
    "nsmasters",
    "dnsworks",
    "hostedns",
    "eurodns",
    "apexdns",
    "quadns",
    "rootline",
];

/// Provider market share (fraction of all domains). Whatever the
/// provider list doesn't cover self-hosts its zone.
fn provider_share(k: usize, total: usize) -> f64 {
    match k {
        0 => 0.18,
        1 => 0.12,
        2 => 0.10, // vanity registrar
        3 => 0.08, // out-of-zone NS names
        4 => 0.06, // two-NS sets
        5 => 0.04, // all NS in one /24
        _ => 0.32 / (total - 6) as f64,
    }
}

fn add_ns(w: &mut World, name: String, ips: Vec<IpAddr>, asn_idx: usize) {
    w.ns_index.insert(name.clone(), w.nameservers.len());
    w.nameservers.push(NameServer { name, ips, asn_idx });
}

pub fn build(w: &mut World, rng: &mut StdRng) {
    build_tlds(w, rng);
    build_providers(w);
    build_domains(w, rng);
}

fn build_tlds(w: &mut World, rng: &mut StdRng) {
    for (t, (label, country, cc, _)) in TLDS.iter().enumerate() {
        // Registries run in their own country when the world has a
        // network there — that placement is what makes ccTLD zones a
        // country-level single point of failure (§4.2.2).
        let host = w
            .ases
            .iter()
            .position(|a| a.country == *country)
            .unwrap_or_else(|| rng.gen_range(0..w.ases.len()));
        let mut nameservers = Vec::new();
        for (j, letter) in ["a", "b", "c", "d"].iter().enumerate() {
            let name = format!("{letter}.nic.{label}");
            let ip = host_ip(w, host, 3000 + (t * 8 + j) as u32);
            add_ns(w, name.clone(), vec![ip], host);
            nameservers.push(name);
        }
        w.tlds.push(Tld {
            name: label,
            country,
            cc: *cc,
            nameservers,
        });
    }
}

fn build_providers(w: &mut World) {
    let dns_ases: Vec<usize> = (0..w.ases.len())
        .filter(|&i| w.ases[i].category == AsCategory::DnsProvider)
        .collect();
    let total = w.config.num_dns_providers;
    for k in 0..total {
        let name = if k < PROVIDER_NAMES.len() {
            PROVIDER_NAMES[k].to_string()
        } else {
            format!("managed-dns-{k:02}")
        };
        let asn_idx = dns_ases[k % dns_ases.len()];
        let vanity = k == 2;
        let outsourced_to = if k == 6 { Some(0) } else { None };
        let domain = match k {
            3 => format!("{name}.de"),
            _ if k % 2 == 0 => format!("{name}.com"),
            _ => format!("{name}.net"),
        };
        // NS pool and customer-visible variant sets. Pool addresses
        // alternate between two /24s of the hosting prefix so every
        // variant spans both (except the deliberately "cramped" one).
        let (pool_size, set_variants) = match k {
            2 => (2, 0),
            4 => (4, 3),
            5 => (2, 1),
            _ => (8, 4 + k % 4),
        };
        let mut ns_pool = Vec::new();
        for j in 0..pool_size {
            let ns_name = format!("ns{}.{domain}", j + 1);
            let sub24 = if k == 5 { 1 } else { 1 + (j % 2) as u32 };
            let ip = host_ip(w, asn_idx, 256 * sub24 + 10 + j as u32);
            add_ns(w, ns_name.clone(), vec![ip], asn_idx);
            ns_pool.push(ns_name);
        }
        let variants: Vec<Vec<String>> = match k {
            2 => Vec::new(),
            4 => (0..set_variants)
                .map(|v| vec![ns_pool[v % 4].clone(), ns_pool[(v + 1) % 4].clone()])
                .collect(),
            5 => vec![ns_pool.clone()],
            _ => (0..set_variants)
                .map(|v| {
                    [0, 3, 6, 9]
                        .iter()
                        .map(|o| ns_pool[(v + o) % 8].clone())
                        .collect()
                })
                .collect(),
        };
        w.providers.push(DnsProvider {
            name,
            domain,
            asn_idx,
            ns_pool,
            set_variants,
            variants,
            outsourced_to,
            vanity,
        });
    }
}

fn build_domains(w: &mut World, rng: &mut StdRng) {
    let num_domains = w.config.num_domains;
    let epoch = w.config.epoch;
    let total_providers = w.providers.len();
    let cdns: Vec<usize> = (0..w.ases.len())
        .filter(|&i| w.ases[i].category == AsCategory::Cdn)
        .collect();
    let clouds: Vec<usize> = (0..w.ases.len())
        .filter(|&i| w.ases[i].category == AsCategory::CloudHosting)
        .collect();
    let stubs: Vec<usize> = (0..w.ases.len())
        .filter(|&i| w.ases[i].category == AsCategory::Stub)
        .collect();
    let mut umbrella_next = 1usize;

    for i in 0..num_domains {
        // TLD: weighted draw over the fixed share table.
        let mut ut = rng.gen_range(0.0..1.0);
        let mut tld = TLDS[0].0;
        for (label, _, _, share) in TLDS {
            if ut < share {
                tld = label;
                break;
            }
            ut -= share;
        }

        // Domain churn: a slot's name carries the latest epoch that
        // re-registered it. Purely arithmetic, so the RNG stream is
        // identical across epochs and snapshots stay comparable.
        let mut generation = 0u32;
        for e in 1..=epoch {
            if (i + 17 * e as usize).is_multiple_of(23) {
                generation = e;
            }
        }
        let name = if generation == 0 {
            format!("site-{i:06}.{tld}")
        } else {
            format!("site-{i:06}-e{generation}.{tld}")
        };

        // Managed DNS provider (or None = self-hosted zone).
        let mut up = rng.gen_range(0.0..1.0);
        let mut dns_provider = None;
        for k in 0..total_providers {
            let share = provider_share(k, total_providers);
            if up < share {
                dns_provider = Some(k);
                break;
            }
            up -= share;
        }

        // Web hosting, tilted by rank: popular sites self-host or run
        // their own stub networks more often; the long tail sits on
        // cloud providers (drives the Figure 7 top/bottom contrast).
        let r = i as f64 / num_domains as f64;
        let p_self = 0.55 - 0.45 * r;
        let p_cdn = 0.18 + 0.12 * r;
        let uh = rng.gen_range(0.0..1.0);
        let (hosting, hosting_as) = if uh < p_self {
            (
                HostingKind::SelfHosted,
                stubs[rng.gen_range(0..stubs.len())],
            )
        } else if uh < p_self + p_cdn {
            let big = 2.min(cdns.len());
            let a = if rng.gen_bool(0.85) {
                cdns[rng.gen_range(0..big)]
            } else {
                cdns[rng.gen_range(0..cdns.len())]
            };
            (HostingKind::Cdn, a)
        } else {
            (HostingKind::Cloud, clouds[rng.gen_range(0..clouds.len())])
        };

        let web_prefixes = &w.as_prefixes[hosting_as];
        let v4_candidates: Vec<usize> = web_prefixes
            .iter()
            .copied()
            .filter(|&j| w.prefixes[j].prefix.family() == iyp_netdata::AddressFamily::V4)
            .collect();
        let pidx = v4_candidates[rng.gen_range(0..v4_candidates.len())];
        let mut web_ips = Vec::new();
        for t in 0..(1 + i % 2) {
            web_ips.push(ip_in_prefix(w, pidx, (i * 3 + t) as u32));
        }

        let nameservers = match dns_provider {
            Some(k) if w.providers[k].vanity => {
                // Registrar-style vanity NS: names under the customer's
                // domain, addresses on the provider's network.
                let host = w.providers[k].asn_idx;
                let mut set = Vec::new();
                for j in 0..2u32 {
                    let ns_name = format!("ns{}.{name}", j + 1);
                    let ip = host_ip(w, host, 256 * (1 + j) + 40 + (i as u32 * 2) % 200);
                    add_ns(w, ns_name.clone(), vec![ip], host);
                    set.push(ns_name);
                }
                set
            }
            Some(k) => {
                let variant = rng.gen_range(0..w.providers[k].set_variants.max(1));
                w.providers[k].variants[variant % w.providers[k].variants.len()].clone()
            }
            None => {
                // Self-hosted zone: two NS under the domain itself, in
                // two different /24s of the hosting network.
                let host_pidx = first_v4_prefix(w, hosting_as);
                let mut set = Vec::new();
                for j in 0..2u32 {
                    let ns_name = format!("ns{}.{name}", j + 1);
                    let offset = 256 * (3 * j) + 2 + (i as u32 * 2) % 200;
                    let ip = ip_in_prefix(w, host_pidx, offset);
                    add_ns(w, ns_name.clone(), vec![ip], hosting_as);
                    set.push(ns_name);
                }
                set
            }
        };

        let umbrella_rank = if rng.gen_bool(w.config.umbrella_fraction) {
            let ur = Some(umbrella_next);
            umbrella_next += 1;
            ur
        } else {
            None
        };

        w.domains.push(Domain {
            name,
            tld,
            rank: i + 1,
            umbrella_rank,
            dns_provider,
            nameservers,
            hosting_as,
            hosting,
            web_ips,
        });
    }
}
