//! Pass 3: measurement infrastructure and population figures.

use super::host_ip;
use crate::types::*;
use crate::world::World;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-country user share handed to the biggest eyeball networks, in
/// order of appearance (APNIC-population style).
const EYEBALL_SHARES: [f64; 5] = [45.0, 25.0, 15.0, 8.0, 5.0];

pub fn build(w: &mut World, rng: &mut StdRng) {
    let eyeballs: Vec<usize> = (0..w.ases.len())
        .filter(|&i| w.ases[i].category == AsCategory::Eyeball)
        .collect();

    // --- Probes -------------------------------------------------------
    for k in 0..w.config.num_probes {
        let asn_idx = eyeballs[rng.gen_range(0..eyeballs.len())];
        let ip = host_ip(w, asn_idx, 100 + k as u32);
        w.probes.push(Probe {
            id: 6100 + k as u32,
            asn_idx,
            country: w.ases[asn_idx].country,
            ip,
        });
    }

    // --- Measurements -------------------------------------------------
    for m in 0..w.config.num_measurements {
        let d = rng.gen_range(0..w.domains.len());
        let target = format!("www.{}", w.domains[d].name);
        let kind = if m % 2 == 0 { "ping" } else { "traceroute" };
        let mut probes = Vec::new();
        for _ in 0..3 {
            let p = w.probes[rng.gen_range(0..w.probes.len())].id;
            if !probes.contains(&p) {
                probes.push(p);
            }
        }
        w.measurements.push(Measurement {
            id: 9000 + m as u32,
            target,
            kind,
            probes,
        });
    }

    // --- AS hegemony ---------------------------------------------------
    // Every customer depends on each of its providers with some weight.
    let pairs: Vec<(usize, usize)> = (0..w.ases.len())
        .flat_map(|i| {
            w.ases[i]
                .providers
                .iter()
                .map(move |&p| (i, p))
                .collect::<Vec<_>>()
        })
        .collect();
    for (dependent, on) in pairs {
        let score = 0.15 + 0.7 * rng.gen_range(0.0..1.0);
        w.hegemony.push((dependent, on, score));
    }

    // --- Per-country eyeball population shares -------------------------
    let mut by_country: Vec<(&'static str, Vec<usize>)> = Vec::new();
    for &a in &eyeballs {
        let c = w.ases[a].country;
        match by_country.iter_mut().find(|(cc, _)| *cc == c) {
            Some((_, list)) => list.push(a),
            None => by_country.push((c, vec![a])),
        }
    }
    for (country, list) in by_country {
        for (j, &a) in list.iter().take(EYEBALL_SHARES.len()).enumerate() {
            w.as_population.push((a, country, EYEBALL_SHARES[j]));
        }
    }
}
