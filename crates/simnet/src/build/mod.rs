//! World construction, split in three passes that run in order:
//!
//! 1. [`topology`] — organisations, ASes, the provider/peer mesh,
//!    announced prefixes, RPKI ROAs, and IXPs.
//! 2. [`dns`] — TLD registries, managed DNS providers, the ranked
//!    domain population with its nameservers and web hosting.
//! 3. [`misc`] — Atlas-like probes and measurements, AS hegemony, and
//!    population figures.
//!
//! Every pass draws from the same seeded RNG; the number and order of
//! draws is independent of `SimConfig::epoch`, so two worlds that
//! differ only in epoch stay comparable entity-by-entity (the
//! longitudinal-study contract).

pub mod dns;
pub mod misc;
pub mod topology;

use crate::world::World;
use iyp_netdata::AddressFamily;
use std::net::IpAddr;

/// Index of the first announced IPv4 prefix of `asn_idx`.
pub(crate) fn first_v4_prefix(w: &World, asn_idx: usize) -> usize {
    w.as_prefixes[asn_idx]
        .iter()
        .copied()
        .find(|&j| w.prefixes[j].prefix.family() == AddressFamily::V4)
        .expect("every AS announces at least one IPv4 prefix")
}

/// A host address inside prefix `pidx`, derived from `offset` (wrapped
/// into the prefix's host span, avoiding the network/broadcast slots).
pub(crate) fn ip_in_prefix(w: &World, pidx: usize, offset: u32) -> IpAddr {
    let p = &w.prefixes[pidx].prefix;
    let span = 1u32 << (32 - p.len());
    let host = (offset % (span - 2)) + 1;
    match p.network() {
        IpAddr::V4(v4) => IpAddr::V4(std::net::Ipv4Addr::from(u32::from(v4) + host)),
        IpAddr::V6(_) => unreachable!("ip_in_prefix is IPv4-only"),
    }
}

/// A host address inside the first IPv4 prefix of `asn_idx`.
pub(crate) fn host_ip(w: &World, asn_idx: usize, offset: u32) -> IpAddr {
    let pidx = first_v4_prefix(w, asn_idx);
    ip_in_prefix(w, pidx, offset)
}
