//! Pass 1: organisations, ASes, the routing mesh, prefixes, RPKI, IXPs.

use crate::types::*;
use crate::world::World;
use iyp_netdata::Prefix;
use rand::rngs::StdRng;
use rand::Rng;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Countries the simulator draws from, with rough populations. All
/// codes are real ISO alpha-2 (the country-completion refinement maps
/// them to alpha-3 + official names) and together they span all five
/// RIR service regions.
pub const COUNTRY_POOL: [(&str, u64); 25] = [
    ("US", 331_900_000),
    ("CN", 1_412_000_000),
    ("IN", 1_408_000_000),
    ("ID", 273_800_000),
    ("BR", 214_300_000),
    ("RU", 143_400_000),
    ("MX", 126_700_000),
    ("JP", 125_700_000),
    ("DE", 83_200_000),
    ("GB", 67_300_000),
    ("FR", 67_700_000),
    ("IT", 59_100_000),
    ("KR", 51_700_000),
    ("ES", 47_400_000),
    ("AR", 45_800_000),
    ("PL", 37_700_000),
    ("CA", 38_200_000),
    ("AU", 25_700_000),
    ("NL", 17_500_000),
    ("SE", 10_400_000),
    ("CZ", 10_500_000),
    ("CH", 8_700_000),
    ("SG", 5_900_000),
    ("NG", 213_400_000),
    ("ZA", 60_000_000),
];

/// IXP locations (city, country).
const IXP_CITIES: [(&str, &str); 12] = [
    ("Ashburn", "US"),
    ("Frankfurt", "DE"),
    ("London", "GB"),
    ("Sao Paulo", "BR"),
    ("Tokyo", "JP"),
    ("Amsterdam", "NL"),
    ("Singapore", "SG"),
    ("Paris", "FR"),
    ("Sydney", "AU"),
    ("Johannesburg", "ZA"),
    ("Stockholm", "SE"),
    ("Mumbai", "IN"),
];

/// Deterministic category layout: quotas scale with the AS count but
/// never drop below the floor each study needs (CDNs and academics for
/// the tag datasets, eyeballs for the per-country population figures).
fn category_plan(n: usize, num_dns: usize) -> Vec<AsCategory> {
    let mut cats = Vec::with_capacity(n);
    let quotas = [
        (AsCategory::Tier1, (n * 5 / 100).max(3)),
        (AsCategory::Transit, (n * 12 / 100).max(4)),
        (AsCategory::Eyeball, (n * 25 / 100).max(8)),
        (AsCategory::Cdn, (n * 4 / 100).max(3)),
        (AsCategory::CloudHosting, (n * 6 / 100).max(4)),
        (AsCategory::DnsProvider, num_dns),
        (AsCategory::DdosMitigation, (n * 2 / 100).max(2)),
        (AsCategory::Academic, (n * 5 / 100).max(2)),
        (AsCategory::Government, (n * 4 / 100).max(2)),
    ];
    for (cat, count) in quotas {
        for _ in 0..count {
            cats.push(cat);
        }
    }
    debug_assert!(cats.len() <= n, "category quotas exceed the AS count");
    while cats.len() < n {
        cats.push(AsCategory::Stub);
    }
    cats.truncate(n);
    cats
}

/// The `block`-th /20 out of 10.0.0.0/8.
fn v4_20(block: u32) -> Prefix {
    let base = 0x0A00_0000u32 + block * 4096;
    Prefix::new(IpAddr::V4(Ipv4Addr::from(base)), 20).expect("valid /20")
}

/// The `block`-th /48 out of 2001:db8::/32.
fn v6_48(block: u32) -> Prefix {
    let base = (0x2001_0db8u128 << 96) | ((block as u128) << 80);
    Prefix::new(IpAddr::V6(Ipv6Addr::from(base)), 48).expect("valid /48")
}

/// Announced v4/v6 prefix counts per category. CDN space is anycast.
fn prefix_plan(cat: AsCategory, i: usize) -> (usize, usize, bool) {
    match cat {
        AsCategory::Tier1 => (3, 1, false),
        AsCategory::Transit => (2, 1, false),
        AsCategory::Eyeball => (2, 0, false),
        AsCategory::Stub => (1 + i % 2, 0, false),
        AsCategory::Cdn => (4, 1, true),
        AsCategory::CloudHosting => (4, 0, false),
        AsCategory::DnsProvider => (1, 0, false),
        AsCategory::DdosMitigation => (2, 1, false),
        AsCategory::Academic => (1, 0, false),
        AsCategory::Government => (1, 0, false),
    }
}

fn pool_country(rng: &mut StdRng) -> &'static str {
    COUNTRY_POOL[rng.gen_range(0..COUNTRY_POOL.len())].0
}

/// Picks up to `count` distinct indexes out of `from`.
fn pick_distinct(rng: &mut StdRng, from: &[usize], count: usize, exclude: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if from.is_empty() {
        return out;
    }
    for _ in 0..count * 3 {
        if out.len() == count {
            break;
        }
        let c = from[rng.gen_range(0..from.len())];
        if c != exclude && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

pub fn build(w: &mut World, rng: &mut StdRng) {
    let n = w.config.num_ases;
    let epoch = w.config.epoch;
    let cats = category_plan(n, w.config.num_dns_providers);

    w.country_population = COUNTRY_POOL.to_vec();

    // --- Organisations and ASes -------------------------------------
    let mut eyeball_seen = 0usize;
    for (i, &cat) in cats.iter().enumerate() {
        let country = match cat {
            AsCategory::Tier1
            | AsCategory::Cdn
            | AsCategory::CloudHosting
            | AsCategory::DnsProvider
            | AsCategory::DdosMitigation => {
                if rng.gen_bool(0.7) {
                    "US"
                } else {
                    pool_country(rng)
                }
            }
            AsCategory::Transit => {
                if rng.gen_bool(0.4) {
                    "US"
                } else {
                    pool_country(rng)
                }
            }
            AsCategory::Eyeball => {
                let c = COUNTRY_POOL[eyeball_seen % COUNTRY_POOL.len()].0;
                eyeball_seen += 1;
                c
            }
            _ => pool_country(rng),
        };
        // Mostly one org per AS; some orgs run several networks.
        let org = if i > 0 && rng.gen_bool(0.15) {
            w.ases[rng.gen_range(0..i)].org
        } else {
            w.orgs.push(Org {
                name: format!("Telecom {i} Ltd."),
                country,
            });
            w.orgs.len() - 1
        };
        w.ases.push(AsInfo {
            asn: 3000 + (i as u32) * 7,
            name: format!("NET-{i}"),
            org,
            country,
            category: cat,
            providers: Vec::new(),
            peers: Vec::new(),
            rpki_adopter: false,
        });
    }

    // --- Provider / peer mesh ---------------------------------------
    let tier1: Vec<usize> = (0..n).filter(|&i| cats[i] == AsCategory::Tier1).collect();
    let transit: Vec<usize> = (0..n).filter(|&i| cats[i] == AsCategory::Transit).collect();
    for (i, &cat) in cats.iter().enumerate().take(n) {
        match cat {
            AsCategory::Tier1 => {
                w.ases[i].peers = tier1.iter().copied().filter(|&q| q != i).collect();
            }
            AsCategory::Transit => {
                let n_up = 1 + rng.gen_range(0..2usize);
                let ups = pick_distinct(rng, &tier1, n_up, i);
                let n_peer = 1 + rng.gen_range(0..2usize);
                let peers = pick_distinct(rng, &transit, n_peer, i);
                w.ases[i].providers = ups;
                w.ases[i].peers = peers;
            }
            _ => {
                let n_up = 1 + rng.gen_range(0..2usize);
                let mut ups = pick_distinct(rng, &transit, n_up, i);
                if rng.gen_bool(0.25) {
                    let extra = tier1[rng.gen_range(0..tier1.len())];
                    if !ups.contains(&extra) {
                        ups.push(extra);
                    }
                }
                w.ases[i].providers = ups;
            }
        }
    }

    // --- Announced prefixes -----------------------------------------
    let mut v4_block = 0u32;
    let mut v6_block = 0u32;
    for (i, &cat) in cats.iter().enumerate().take(n) {
        let (n4, n6, anycast) = prefix_plan(cat, i);
        let mut owned = Vec::new();
        for _ in 0..n4 {
            owned.push(w.prefixes.len());
            w.prefixes.push(PrefixInfo {
                prefix: v4_20(v4_block),
                origin: i,
                rpki: RpkiStatus::NotCovered,
                anycast,
            });
            v4_block += 1;
        }
        for _ in 0..n6 {
            owned.push(w.prefixes.len());
            w.prefixes.push(PrefixInfo {
                prefix: v6_48(v6_block),
                origin: i,
                rpki: RpkiStatus::NotCovered,
                anycast: false,
            });
            v6_block += 1;
        }
        w.as_prefixes.push(owned);
    }
    // Route-collector peering addresses (192.0.2.0/24, used by the
    // BGPKIT peer-stats dataset) are originated by the first Tier1.
    let collector_pfx = Prefix::new(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 0)), 24).unwrap();
    w.as_prefixes[tier1[0]].push(w.prefixes.len());
    w.prefixes.push(PrefixInfo {
        prefix: collector_pfx,
        origin: tier1[0],
        rpki: RpkiStatus::NotCovered,
        anycast: false,
    });

    // --- RPKI --------------------------------------------------------
    // Adoption is threshold-based: each AS draws one priority value and
    // adopts when it falls under the (category × epoch) quota. Later
    // epochs only raise the threshold, so coverage grows monotonically
    // while the per-AS draws stay identical across epochs.
    let growth = 1.0 + 0.06 * epoch as f64;
    let cdns: Vec<usize> = (0..n).filter(|&i| cats[i] == AsCategory::Cdn).collect();
    let dns_ases: Vec<usize> = (0..n)
        .filter(|&i| cats[i] == AsCategory::DnsProvider)
        .collect();
    // The biggest CDNs and managed-DNS operators run tight RPKI shops
    // regardless of the draw — the paper's §4.1.4 per-tag contrast.
    let mut forced: Vec<usize> = cdns.iter().take(2).copied().collect();
    forced.extend(dns_ases.iter().take(3).copied());
    for i in 0..n {
        let u = rng.gen_range(0.0..1.0);
        let p = (w.ases[i].category.rpki_adoption() * w.config.rpki_scale * growth).min(0.97);
        w.ases[i].rpki_adopter = forced.contains(&i) || u < p;
    }
    for j in 0..w.prefixes.len() {
        let u_invalid = rng.gen_range(0.0..1.0);
        let u_kind = rng.gen_range(0.0..1.0);
        let origin = w.prefixes[j].origin;
        if !w.ases[origin].rpki_adopter {
            continue;
        }
        let asn = w.ases[origin].asn;
        let pfx = w.prefixes[j].prefix;
        if u_invalid < w.config.rpki_invalid_rate {
            if u_kind < w.config.rpki_invalid_maxlen_share && pfx.len() == 20 {
                // Announce a more-specific /22; the ROA stays on the
                // covering /20 with maxLength 20.
                let child = Prefix::new(pfx.network(), 22).unwrap();
                w.prefixes[j].prefix = child;
                w.prefixes[j].rpki = RpkiStatus::InvalidMaxLen;
                w.roas.push(Roa {
                    prefix: pfx,
                    asn,
                    max_length: 20,
                });
            } else {
                w.prefixes[j].rpki = RpkiStatus::InvalidOrigin;
                let wrong = w.ases[(origin + 1) % n].asn;
                let max_length = pfx.len();
                w.roas.push(Roa {
                    prefix: pfx,
                    asn: wrong,
                    max_length,
                });
            }
        } else {
            w.prefixes[j].rpki = RpkiStatus::Valid;
            let max_length = pfx.len();
            w.roas.push(Roa {
                prefix: pfx,
                asn,
                max_length,
            });
        }
    }

    // --- IXPs ---------------------------------------------------------
    for x in 0..w.config.num_ixps {
        let (city, country) = IXP_CITIES[x % IXP_CITIES.len()];
        let name = if x < IXP_CITIES.len() {
            format!("SIM-IX {city}")
        } else {
            format!("SIM-IX {city} {}", x / IXP_CITIES.len() + 1)
        };
        let peering_lan = Prefix::new(IpAddr::V4(Ipv4Addr::new(198, 18, x as u8, 0)), 24).unwrap();
        let mut members = Vec::new();
        for (i, &cat) in cats.iter().enumerate().take(n) {
            let joins = matches!(
                cat,
                AsCategory::Tier1
                    | AsCategory::Transit
                    | AsCategory::Cdn
                    | AsCategory::CloudHosting
                    | AsCategory::Eyeball
                    | AsCategory::DdosMitigation
            );
            if joins && rng.gen_bool(0.25) {
                members.push(i);
            }
        }
        if members.len() < 2 {
            members = vec![tier1[x % tier1.len()], transit[x % transit.len()]];
        }
        w.ixps.push(IxpInfo {
            name,
            country,
            members,
            peering_lan,
            facility: format!("{city} Interconnect"),
        });
    }
}
