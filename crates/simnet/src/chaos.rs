//! Seeded, deterministic fault injection for the synthetic Internet.
//!
//! Production IYP ingests 46 live community feeds where truncated
//! downloads, garbage lines, and flaky mirrors are routine. A
//! [`FaultPlan`] reproduces that weather deterministically: given a
//! seed it decides which datasets are corrupted (and how) and which
//! simulated fetches fail (and for how many attempts), so the whole
//! ETL path can be exercised under realistic breakage in tests and CI
//! without any nondeterminism.

use crate::datasets::{DatasetId, ALL_DATASETS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One kind of corruption applied to a rendered dataset text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the text off mid-stream, as a dropped connection would.
    Truncate,
    /// Splice non-record garbage lines into the body.
    GarbageLines,
    /// Repeat a block of records verbatim.
    DuplicateRecords,
    /// Shuffle record order (breaks formats with positional structure).
    ReorderRecords,
    /// Insert runs of U+FFFD — the decoded residue of invalid UTF-8
    /// bytes — mid-record. (Rendered texts are `String`s, so the
    /// undecodable bytes are modelled by their replacement characters.)
    InvalidUtf8,
}

impl FaultKind {
    /// Every corruption kind, in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Truncate,
        FaultKind::GarbageLines,
        FaultKind::DuplicateRecords,
        FaultKind::ReorderRecords,
        FaultKind::InvalidUtf8,
    ];

    /// Stable lowercase identifier, used in reports and docs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::GarbageLines => "garbage-lines",
            FaultKind::DuplicateRecords => "duplicate-records",
            FaultKind::ReorderRecords => "reorder-records",
            FaultKind::InvalidUtf8 => "invalid-utf8",
        }
    }

    /// One-line description, used by the generated documentation.
    pub fn description(self) -> &'static str {
        match self {
            FaultKind::Truncate => "the text is cut off mid-stream, as by a dropped connection",
            FaultKind::GarbageLines => "non-record garbage lines are spliced into the body",
            FaultKind::DuplicateRecords => "a block of records is repeated verbatim",
            FaultKind::ReorderRecords => "record order is shuffled deterministically",
            FaultKind::InvalidUtf8 => {
                "runs of U+FFFD (decoded invalid UTF-8) are inserted mid-record"
            }
        }
    }
}

/// Simulated fetch behaviour for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchFault {
    /// The first `failures` attempts fail; later attempts succeed.
    Transient { failures: u32 },
    /// Every attempt fails: the dataset can never be fetched.
    Hard,
}

/// All faults injected for a single dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetFaults {
    /// Corruptions applied to the rendered text, in order.
    pub corruptions: Vec<FaultKind>,
    /// Simulated fetch failure mode, if any.
    pub fetch: Option<FetchFault>,
}

/// A seeded, deterministic plan of which datasets break and how.
///
/// The same `(seed, targets)` pair always yields the same plan, and
/// [`FaultPlan::corrupt`] is a pure function of the plan and input
/// text — chaos builds are exactly reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<DatasetId, DatasetFaults>,
}

impl FaultPlan {
    /// An empty plan: nothing is corrupted, every fetch succeeds.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: BTreeMap::new(),
        }
    }

    /// Generate a plan that injects faults into `targets` distinct
    /// datasets (capped at the number of datasets). Each target draws
    /// one fault: one of the five text corruptions, a transient fetch
    /// failure, or a hard fetch failure.
    pub fn generate(seed: u64, targets: usize) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(seed);
        let targets = targets.min(ALL_DATASETS.len());
        // Seeded partial Fisher-Yates pick of distinct datasets.
        let mut pool: Vec<DatasetId> = ALL_DATASETS.to_vec();
        for _ in 0..targets {
            let idx = rng.gen_range(0..pool.len());
            let id = pool.swap_remove(idx);
            let faults = match rng.gen_range(0..7u32) {
                k @ 0..=4 => DatasetFaults {
                    corruptions: vec![FaultKind::ALL[k as usize]],
                    fetch: None,
                },
                5 => DatasetFaults {
                    corruptions: Vec::new(),
                    fetch: Some(FetchFault::Transient {
                        failures: rng.gen_range(1..=2),
                    }),
                },
                _ => DatasetFaults {
                    corruptions: Vec::new(),
                    fetch: Some(FetchFault::Hard),
                },
            };
            plan.faults.insert(id, faults);
        }
        plan
    }

    /// Add a text corruption for `id` (builder-style, for tests).
    pub fn with_corruption(mut self, id: DatasetId, kind: FaultKind) -> FaultPlan {
        self.faults.entry(id).or_default().corruptions.push(kind);
        self
    }

    /// Set the fetch failure mode for `id` (builder-style, for tests).
    pub fn with_fetch(mut self, id: DatasetId, fault: FetchFault) -> FaultPlan {
        self.faults.entry(id).or_default().fetch = Some(fault);
        self
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Datasets touched by any fault, in `DatasetId` order.
    pub fn affected(&self) -> Vec<DatasetId> {
        self.faults.keys().copied().collect()
    }

    /// The faults injected for `id`, if any.
    pub fn faults_for(&self, id: DatasetId) -> Option<&DatasetFaults> {
        self.faults.get(&id)
    }

    /// True when the rendered text of `id` will be corrupted.
    pub fn is_corrupted(&self, id: DatasetId) -> bool {
        self.faults
            .get(&id)
            .is_some_and(|f| !f.corruptions.is_empty())
    }

    /// Simulated fetch outcome for the 1-based `attempt` of `id`.
    /// `Err` carries a human-readable cause.
    pub fn fetch_outcome(&self, id: DatasetId, attempt: u32) -> Result<(), String> {
        match self.faults.get(&id).and_then(|f| f.fetch) {
            None => Ok(()),
            Some(FetchFault::Transient { failures }) if attempt > failures => Ok(()),
            Some(FetchFault::Transient { failures }) => Err(format!(
                "transient fetch failure (attempt {attempt} of {} that will fail)",
                failures
            )),
            Some(FetchFault::Hard) => Err(format!(
                "hard fetch failure (attempt {attempt}): source is down"
            )),
        }
    }

    /// Apply this plan's corruptions to the rendered text of `id`.
    /// Returns the text unchanged when `id` is not targeted. The
    /// output is a pure function of the plan seed, the dataset, and
    /// the input text.
    pub fn corrupt(&self, id: DatasetId, text: &str) -> String {
        let Some(faults) = self.faults.get(&id) else {
            return text.to_string();
        };
        let ordinal = ALL_DATASETS.iter().position(|d| *d == id).unwrap_or(0) as u64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ (ordinal.wrapping_add(1) << 17));
        let mut out = text.to_string();
        for kind in &faults.corruptions {
            out = apply_fault(&mut rng, *kind, &out);
        }
        out
    }
}

/// Apply one corruption kind to `text` using `rng` for positions.
fn apply_fault(rng: &mut StdRng, kind: FaultKind, text: &str) -> String {
    if text.is_empty() {
        return text.to_string();
    }
    match kind {
        FaultKind::Truncate => {
            let cut = rng.gen_range(text.len() / 4..=(3 * text.len()) / 4);
            let cut = snap_to_boundary(text, cut);
            text[..cut].to_string()
        }
        FaultKind::GarbageLines => {
            let mut lines: Vec<&str> = text.lines().collect();
            for garbage in [
                "\u{1F980}garbage,|};%%",
                "0xDEADBEEF ,,,,;;",
                "<<<<<<< corrupt",
            ] {
                let at = rng.gen_range(0..=lines.len());
                lines.insert(at, garbage);
            }
            join_lines(&lines)
        }
        FaultKind::DuplicateRecords => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text.to_string();
            }
            let start = rng.gen_range(0..lines.len());
            let len = rng.gen_range(1..=(lines.len() - start).min(16));
            let mut out: Vec<&str> = lines.clone();
            out.extend_from_slice(&lines[start..start + len]);
            join_lines(&out)
        }
        FaultKind::ReorderRecords => {
            let mut lines: Vec<&str> = text.lines().collect();
            // Seeded Fisher-Yates shuffle of the whole line list.
            for i in (1..lines.len()).rev() {
                let j = rng.gen_range(0..=i);
                lines.swap(i, j);
            }
            join_lines(&lines)
        }
        FaultKind::InvalidUtf8 => {
            let mut out = text.to_string();
            for _ in 0..3 {
                let at = snap_to_boundary(&out, rng.gen_range(0..out.len()));
                let run = "\u{FFFD}".repeat(rng.gen_range(1..=4));
                out.insert_str(at, &run);
            }
            out
        }
    }
}

/// Largest char boundary at or below `pos`.
fn snap_to_boundary(s: &str, pos: usize) -> usize {
    let pos = pos.min(s.len());
    (0..=pos)
        .rev()
        .find(|p| s.is_char_boundary(*p))
        .unwrap_or(0)
}

fn join_lines(lines: &[&str]) -> String {
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(42, 8);
        let b = FaultPlan::generate(42, 8);
        assert_eq!(a, b);
        assert_eq!(a.affected().len(), 8);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, 8);
        let b = FaultPlan::generate(2, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn targets_capped_at_dataset_count() {
        let plan = FaultPlan::generate(7, 1000);
        assert_eq!(plan.affected().len(), ALL_DATASETS.len());
    }

    #[test]
    fn corrupt_is_deterministic_and_scoped() {
        let plan = FaultPlan::new(5)
            .with_corruption(DatasetId::TrancoList, FaultKind::Truncate)
            .with_corruption(DatasetId::TrancoList, FaultKind::GarbageLines);
        let text = "1,example.com\n2,example.org\n3,example.net\n";
        let once = plan.corrupt(DatasetId::TrancoList, text);
        let twice = plan.corrupt(DatasetId::TrancoList, text);
        assert_eq!(once, twice);
        assert_ne!(once, text);
        // Untargeted datasets pass through untouched.
        assert_eq!(plan.corrupt(DatasetId::CiscoUmbrella, text), text);
    }

    #[test]
    fn every_fault_kind_changes_text() {
        let text: String = (0..200).map(|i| format!("{i},host{i}.example\n")).collect();
        for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
            let plan = FaultPlan::new(i as u64).with_corruption(DatasetId::TrancoList, kind);
            let out = plan.corrupt(DatasetId::TrancoList, &text);
            assert_ne!(out, text, "{} left the text unchanged", kind.name());
        }
    }

    #[test]
    fn corrupt_survives_tiny_inputs() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::new(3).with_corruption(DatasetId::TrancoList, kind);
            for text in ["", "x", "\n", "ab\n"] {
                let _ = plan.corrupt(DatasetId::TrancoList, text);
            }
        }
    }

    #[test]
    fn transient_fetch_recovers_hard_never_does() {
        let plan = FaultPlan::new(0)
            .with_fetch(DatasetId::TrancoList, FetchFault::Transient { failures: 2 })
            .with_fetch(DatasetId::CiscoUmbrella, FetchFault::Hard);
        assert!(plan.fetch_outcome(DatasetId::TrancoList, 1).is_err());
        assert!(plan.fetch_outcome(DatasetId::TrancoList, 2).is_err());
        assert!(plan.fetch_outcome(DatasetId::TrancoList, 3).is_ok());
        for attempt in 1..10 {
            assert!(plan
                .fetch_outcome(DatasetId::CiscoUmbrella, attempt)
                .is_err());
        }
        // Unlisted datasets always fetch cleanly.
        assert!(plan.fetch_outcome(DatasetId::BgpkitPfx2as, 1).is_ok());
    }

    #[test]
    fn generated_plans_corrupt_real_renders() {
        use crate::{SimConfig, World};
        let world = World::generate(&SimConfig::tiny(), 3);
        let plan = FaultPlan::generate(11, 10);
        for id in plan.affected() {
            if plan.is_corrupted(id) {
                let text = world.render_dataset(id);
                assert_ne!(plan.corrupt(id, &text), text);
            }
        }
    }
}
