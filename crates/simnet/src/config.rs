//! Generator configuration.

/// Scale and calibration knobs for the synthetic Internet.
///
/// The default configuration targets a laptop-scale knowledge graph
/// (hundreds of thousands of nodes) that preserves the statistical shape
/// of the paper's measurements; [`SimConfig::small`] is a fast variant
/// for unit tests.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of autonomous systems.
    pub num_ases: usize,
    /// Number of domains in the Tranco-like ranking.
    pub num_domains: usize,
    /// Number of DNS hosting providers.
    pub num_dns_providers: usize,
    /// Number of IXPs.
    pub num_ixps: usize,
    /// Number of RIPE Atlas probes.
    pub num_probes: usize,
    /// Number of Atlas measurements.
    pub num_measurements: usize,
    /// Fraction of domains using the Cisco-Umbrella-like second ranking.
    pub umbrella_fraction: f64,
    /// RPKI adoption probability per AS category, looked up by
    /// [`crate::types::AsCategory::rpki_adoption`] scaled by this factor.
    pub rpki_scale: f64,
    /// Fraction of RPKI-covered announcements that are *invalid*
    /// (paper, 2024: 0.12% of prefix/origin pairs ≈ 0.0023 of covered).
    pub rpki_invalid_rate: f64,
    /// Of invalid announcements, fraction due to a wrong max-length in
    /// the ROA (paper: 75%).
    pub rpki_invalid_maxlen_share: f64,
    /// Snapshot epoch (0 = the 2024-05-01 baseline). Later epochs drift
    /// deterministically: RPKI adoption keeps growing (the paper's
    /// §4.1.3 trend) and a slice of the ranked domain population churns
    /// — the substrate for the longitudinal workflow the paper's §7
    /// describes as a follow-up.
    pub epoch: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_ases: 600,
            num_domains: 20_000,
            num_dns_providers: 36,
            num_ixps: 12,
            num_probes: 400,
            num_measurements: 120,
            umbrella_fraction: 0.35,
            rpki_scale: 1.0,
            rpki_invalid_rate: 0.004,
            rpki_invalid_maxlen_share: 0.75,
            epoch: 0,
        }
    }
}

impl SimConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        SimConfig {
            num_ases: 120,
            num_domains: 1500,
            num_dns_providers: 14,
            num_ixps: 4,
            num_probes: 40,
            num_measurements: 12,
            ..SimConfig::default()
        }
    }

    /// The same configuration at a later snapshot epoch.
    pub fn at_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// A tiny configuration for doc tests and smoke tests.
    pub fn tiny() -> Self {
        SimConfig {
            num_ases: 40,
            num_domains: 200,
            num_dns_providers: 6,
            num_ixps: 2,
            num_probes: 10,
            num_measurements: 4,
            ..SimConfig::default()
        }
    }
}
