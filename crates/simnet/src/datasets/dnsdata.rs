//! DNS-related datasets: rankings, OpenINTEL resolutions, Cloudflare
//! radar, SimulaMet rDNS.

use crate::formats::csv_line;
use crate::types::*;
use crate::world::World;
use serde_json::json;
use std::net::IpAddr;

/// Tranco list: CSV `rank,domain` (no header, like the real file).
pub fn tranco_list(w: &World) -> String {
    let mut out = String::new();
    for d in &w.domains {
        out.push_str(&format!("{},{}\n", d.rank, d.name));
    }
    out
}

/// Cisco Umbrella popularity list: CSV `rank,domain`, a different
/// population (query-volume-based), partially overlapping Tranco.
pub fn cisco_umbrella(w: &World) -> String {
    let mut listed: Vec<(usize, &str)> = w
        .domains
        .iter()
        .filter_map(|d| d.umbrella_rank.map(|r| (r, d.name.as_str())))
        .collect();
    listed.sort();
    let mut out = String::new();
    for (rank, name) in listed {
        out.push_str(&format!("{rank},{name}\n"));
    }
    out
}

fn record(name: &str, ip: &IpAddr) -> String {
    let (rtype, key) = match ip {
        IpAddr::V4(_) => ("A", "ip4_address"),
        IpAddr::V6(_) => ("AAAA", "ip6_address"),
    };
    serde_json::to_string(&json!({
        "query_name": format!("{name}."),
        "query_type": rtype,
        "response_type": rtype,
        key: ip.to_string(),
    }))
    .expect("serializable")
}

/// OpenINTEL `tranco1m`: JSON-lines A/AAAA resolutions of the apex and
/// `www` hostname of every Tranco domain.
pub fn openintel_tranco1m(w: &World) -> String {
    let mut out = Vec::new();
    for d in &w.domains {
        for ip in &d.web_ips {
            out.push(record(&d.name, ip));
            out.push(record(&format!("www.{}", d.name), ip));
        }
    }
    out.join("\n")
}

/// OpenINTEL `umbrella1m`: the same resolution data for the
/// Umbrella-listed subset.
pub fn openintel_umbrella1m(w: &World) -> String {
    let mut out = Vec::new();
    for d in w.domains.iter().filter(|d| d.umbrella_rank.is_some()) {
        for ip in &d.web_ips {
            out.push(record(&d.name, ip));
        }
    }
    out.join("\n")
}

/// OpenINTEL NS measurement: JSON lines of NS records for every zone we
/// know (Tranco domains, DNS-provider zones, TLDs), plus the A/AAAA
/// records of every nameserver (the "glue" substitute).
pub fn openintel_ns(w: &World) -> String {
    let mut out = Vec::new();
    let mut ns_record = |zone: &str, ns: &str| {
        out.push(
            serde_json::to_string(&json!({
                "query_name": format!("{zone}."),
                "query_type": "NS",
                "response_type": "NS",
                "ns_address": format!("{ns}."),
            }))
            .expect("serializable"),
        );
    };
    for d in &w.domains {
        for ns in &d.nameservers {
            ns_record(&d.name, ns);
        }
    }
    for p in &w.providers {
        // The provider's own zone: self-served or outsourced.
        let serving: Vec<String> = match p.outsourced_to {
            Some(q) => w.providers[q].variants[0].clone(),
            None => p.ns_pool.iter().take(4).cloned().collect(),
        };
        for ns in serving {
            ns_record(&p.domain, &ns);
        }
    }
    for t in &w.tlds {
        for ns in &t.nameservers {
            ns_record(t.name, ns);
        }
    }
    // Nameserver address records.
    for ns in &w.nameservers {
        for ip in &ns.ips {
            out.push(record(&ns.name, ip));
        }
    }
    out.join("\n")
}

/// UTwente DNS dependency graph: JSON lines of
/// `{domain, dep_zone, kind}` where `kind` is `direct`, `third-party`
/// or `hierarchical` (§5.2 of the paper).
pub fn openintel_dnsgraph(w: &World) -> String {
    let mut out = Vec::new();
    let mut edge = |domain: &str, dep: &str, kind: &str| {
        out.push(
            serde_json::to_string(&json!({
                "domain": domain,
                "dep_zone": dep,
                "kind": kind,
            }))
            .expect("serializable"),
        );
    };
    for d in &w.domains {
        // Direct: the zone's own delegation.
        edge(&d.name, &d.name, "direct");
        // Third-party: the provider's zone (and its outsourcer's).
        // Vanity-NS registrars are a *direct* dependency only — the
        // customer's NS names live under the customer's own zone.
        if let Some(p) = d.dns_provider {
            let prov = &w.providers[p];
            if !prov.vanity {
                edge(&d.name, &prov.domain, "third-party");
                if let Some(q) = prov.outsourced_to {
                    edge(&d.name, &w.providers[q].domain, "third-party");
                }
            }
        }
        // Hierarchical: the TLD.
        edge(&d.name, d.tld, "hierarchical");
    }
    out.join("\n")
}

/// Cloudflare radar `ranking/top`: top-100 domains.
pub fn cloudflare_ranking_top(w: &World) -> String {
    let top: Vec<_> = w
        .domains
        .iter()
        .take(100)
        .map(|d| json!({"domain": d.name, "rank": d.rank, "categories": []}))
        .collect();
    serde_json::to_string(&json!({"success": true, "result": {"top_0": top}}))
        .expect("serializable")
}

/// Cloudflare radar ranking buckets (`radar/datasets`).
pub fn cloudflare_ranking_buckets(w: &World) -> String {
    let buckets = [
        ("top_100", 100usize),
        ("top_1000", 1000),
        ("top_10000", 10_000),
    ];
    let mut out = Vec::new();
    for (name, n) in buckets {
        let domains: Vec<&str> = w
            .domains
            .iter()
            .take(n.min(w.domains.len()))
            .map(|d| d.name.as_str())
            .collect();
        out.push(json!({"bucket": name, "domains": domains}));
    }
    serde_json::to_string(&json!({"success": true, "result": {"datasets": out}}))
        .expect("serializable")
}

/// Eyeball ASes likely to query popular domains, head-heavy.
fn top_queriers(w: &World, salt: usize) -> Vec<(usize, f64)> {
    let eyeballs: Vec<usize> = w
        .ases
        .iter()
        .enumerate()
        .filter(|(_, a)| a.category == AsCategory::Eyeball)
        .map(|(i, _)| i)
        .collect();
    let mut out = Vec::new();
    let mut weight = 22.0;
    for k in 0..5.min(eyeballs.len()) {
        let idx = eyeballs[(salt + k * 7) % eyeballs.len()];
        out.push((idx, weight));
        weight *= 0.6;
    }
    out
}

/// Cloudflare radar `dns/top/ases`: for each of the top domains, the
/// ASes querying 1.1.1.1 for it the most.
pub fn cloudflare_dns_top_ases(w: &World) -> String {
    let mut results = Vec::new();
    for (i, d) in w.domains.iter().take(200).enumerate() {
        let entries: Vec<_> = top_queriers(w, i)
            .into_iter()
            .map(|(a, v)| {
                json!({
                    "clientASN": w.ases[a].asn,
                    "clientASName": w.ases[a].name,
                    "value": format!("{v:.1}"),
                })
            })
            .collect();
        results.push(json!({"domain": d.name, "top_ases": entries}));
    }
    serde_json::to_string(&json!({"success": true, "result": results})).expect("serializable")
}

/// Cloudflare radar `dns/top/locations`: countries querying each domain.
pub fn cloudflare_dns_top_locations(w: &World) -> String {
    let mut results = Vec::new();
    for (i, d) in w.domains.iter().take(200).enumerate() {
        let entries: Vec<_> = top_queriers(w, i)
            .into_iter()
            .map(|(a, v)| {
                json!({
                    "clientCountryAlpha2": w.ases[a].country,
                    "value": format!("{v:.1}"),
                })
            })
            .collect();
        results.push(json!({"domain": d.name, "top_locations": entries}));
    }
    serde_json::to_string(&json!({"success": true, "result": results})).expect("serializable")
}

/// SimulaMet rDNS: CSV `prefix,nameserver` — reverse-DNS delegations of
/// announced space.
pub fn simulamet_rdns(w: &World) -> String {
    let mut out = String::from("prefix,nameserver\n");
    for (i, a) in w.ases.iter().enumerate() {
        let Some(&first) = w.as_prefixes[i].first() else {
            continue;
        };
        let p = &w.prefixes[first];
        // Providers serve their own reverse zones; everyone else uses a
        // conventional in-addr server name under the AS name.
        let ns = w
            .providers
            .iter()
            .find(|prov| prov.asn_idx == i)
            .map(|prov| prov.ns_pool[0].clone())
            .unwrap_or_else(|| format!("rdns.{}.invalid", a.name.to_lowercase()));
        out.push_str(&csv_line([p.prefix.canonical(), ns]));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn world() -> World {
        World::generate(&SimConfig::tiny(), 11)
    }

    #[test]
    fn tranco_has_all_ranks() {
        let w = world();
        let text = tranco_list(&w);
        assert_eq!(text.lines().count(), w.domains.len());
        assert!(text.starts_with("1,site-000000."));
    }

    #[test]
    fn umbrella_is_a_subset() {
        let w = world();
        let n = cisco_umbrella(&w).lines().count();
        assert!(n > 0 && n < w.domains.len());
    }

    #[test]
    fn openintel_lines_are_json() {
        let w = world();
        for line in openintel_tranco1m(&w).lines().take(20) {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["query_name"].as_str().unwrap().ends_with('.'));
        }
    }

    #[test]
    fn ns_dataset_covers_providers_and_tlds() {
        let w = world();
        let text = openintel_ns(&w);
        assert!(text.contains(&format!("\"{}.\"", w.providers[0].domain)));
        assert!(text.contains("\"com.\""));
        assert!(text.contains("\"ns_address\""));
        assert!(text.contains("\"ip4_address\""));
    }

    #[test]
    fn dnsgraph_kinds() {
        let w = world();
        let text = openintel_dnsgraph(&w);
        assert!(text.contains("\"direct\""));
        assert!(text.contains("\"third-party\""));
        assert!(text.contains("\"hierarchical\""));
    }

    #[test]
    fn cloudflare_payloads_parse() {
        let w = world();
        for text in [
            cloudflare_ranking_top(&w),
            cloudflare_ranking_buckets(&w),
            cloudflare_dns_top_ases(&w),
            cloudflare_dns_top_locations(&w),
        ] {
            let v: serde_json::Value = serde_json::from_str(&text).unwrap();
            assert_eq!(v["success"], true);
        }
    }

    #[test]
    fn rdns_csv_shape() {
        let w = world();
        let text = simulamet_rdns(&w);
        assert!(text.starts_with("prefix,nameserver\n"));
        assert!(text.lines().count() > 1);
    }
}
