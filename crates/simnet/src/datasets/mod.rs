//! The 46 datasets of Table 8, serialised in native formats.
//!
//! Each [`DatasetId`] corresponds to one dataset row of the paper's
//! Table 8. [`crate::World::render_dataset`] emits the dataset as the
//! text a crawler would download from the provider (JSON for API-style
//! sources, CSV/plain text for file dumps, the NRO delegated-stats
//! format for RIR data, …).

pub mod dnsdata;
pub mod orginfo;
pub mod registry;
pub mod routing;

use crate::world::World;

/// Identifier of one of the 46 datasets (Table 8 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    // Alice-LG route-server snapshots (7 IXPs).
    AliceLgAmsIx,
    AliceLgBcix,
    AliceLgDeCix,
    AliceLgIxBr,
    AliceLgLinx,
    AliceLgMegaport,
    AliceLgNetnod,
    /// APNIC AS population estimate.
    ApnicPopulation,
    /// BGPKIT AS-level relationships.
    BgpkitAs2rel,
    /// BGPKIT collector peer statistics.
    BgpkitPeerStats,
    /// BGPKIT prefix-to-AS mapping.
    BgpkitPfx2as,
    /// BGP.Tools AS names.
    BgptoolsAsNames,
    /// BGP.Tools AS tags.
    BgptoolsTags,
    /// BGP.Tools anycast prefixes.
    BgptoolsAnycast,
    /// CAIDA ASRank.
    CaidaAsRank,
    /// CAIDA IXPs dataset.
    CaidaIxps,
    /// Cisco Umbrella popularity list.
    CiscoUmbrella,
    /// Citizen Lab URL testing lists.
    CitizenLabUrls,
    /// Cloudflare radar: top ASes querying each domain.
    CloudflareDnsTopAses,
    /// Cloudflare radar: top locations querying each domain.
    CloudflareDnsTopLocations,
    /// Cloudflare radar: top-ranked domains.
    CloudflareRankingTop,
    /// Cloudflare radar: ranking bucket datasets.
    CloudflareRankingBuckets,
    /// Emile Aben's AS names.
    EmileAbenAsNames,
    /// IHR country dependency.
    IhrCountryDependency,
    /// IHR AS hegemony.
    IhrHegemony,
    /// IHR ROV (prefix origin + RPKI status).
    IhrRov,
    /// Internet Intelligence Lab AS-to-organization mapping.
    InetIntelAsOrg,
    /// NRO extended allocation and assignment reports.
    NroDelegatedStats,
    /// OpenINTEL DNS resolution of the Tranco 1M list.
    OpenintelTranco1m,
    /// OpenINTEL DNS resolution of the Umbrella 1M list.
    OpenintelUmbrella1m,
    /// OpenINTEL NS records (zones, nameservers, glue).
    OpenintelNs,
    /// UTwente/OpenINTEL DNS dependency graph.
    OpenintelDnsgraph,
    /// PCH daily routing snapshots.
    PchRoutingSnapshot,
    /// PeeringDB facilities.
    PeeringdbFac,
    /// PeeringDB IXPs.
    PeeringdbIx,
    /// PeeringDB IX LANs and members.
    PeeringdbIxlan,
    /// PeeringDB network-facility presence.
    PeeringdbNetfac,
    /// PeeringDB organizations.
    PeeringdbOrg,
    /// RIPE NCC AS names.
    RipeAsNames,
    /// RIPE NCC RPKI ROAs.
    RipeRpki,
    /// RIPE Atlas measurement information.
    RipeAtlasMeasurements,
    /// SimulaMet rDNS (rir-data.org).
    SimulametRdns,
    /// Stanford ASdb.
    StanfordAsdb,
    /// Tranco list.
    TrancoList,
    /// Virginia Tech RoVista (ROV deployment scores).
    RovistaRov,
    /// World Bank population estimates.
    WorldBankPopulation,
}

/// All 46 datasets in Table 8 order.
pub const ALL_DATASETS: [DatasetId; 46] = [
    DatasetId::AliceLgAmsIx,
    DatasetId::AliceLgBcix,
    DatasetId::AliceLgDeCix,
    DatasetId::AliceLgIxBr,
    DatasetId::AliceLgLinx,
    DatasetId::AliceLgMegaport,
    DatasetId::AliceLgNetnod,
    DatasetId::ApnicPopulation,
    DatasetId::BgpkitAs2rel,
    DatasetId::BgpkitPeerStats,
    DatasetId::BgpkitPfx2as,
    DatasetId::BgptoolsAsNames,
    DatasetId::BgptoolsTags,
    DatasetId::BgptoolsAnycast,
    DatasetId::CaidaAsRank,
    DatasetId::CaidaIxps,
    DatasetId::CiscoUmbrella,
    DatasetId::CitizenLabUrls,
    DatasetId::CloudflareDnsTopAses,
    DatasetId::CloudflareDnsTopLocations,
    DatasetId::CloudflareRankingTop,
    DatasetId::CloudflareRankingBuckets,
    DatasetId::EmileAbenAsNames,
    DatasetId::IhrCountryDependency,
    DatasetId::IhrHegemony,
    DatasetId::IhrRov,
    DatasetId::InetIntelAsOrg,
    DatasetId::NroDelegatedStats,
    DatasetId::OpenintelTranco1m,
    DatasetId::OpenintelUmbrella1m,
    DatasetId::OpenintelNs,
    DatasetId::OpenintelDnsgraph,
    DatasetId::PchRoutingSnapshot,
    DatasetId::PeeringdbFac,
    DatasetId::PeeringdbIx,
    DatasetId::PeeringdbIxlan,
    DatasetId::PeeringdbNetfac,
    DatasetId::PeeringdbOrg,
    DatasetId::RipeAsNames,
    DatasetId::RipeRpki,
    DatasetId::RipeAtlasMeasurements,
    DatasetId::SimulametRdns,
    DatasetId::StanfordAsdb,
    DatasetId::TrancoList,
    DatasetId::RovistaRov,
    DatasetId::WorldBankPopulation,
];

impl DatasetId {
    /// The providing organisation (Table 8, first column).
    pub fn organization(self) -> &'static str {
        use DatasetId::*;
        match self {
            AliceLgAmsIx | AliceLgBcix | AliceLgDeCix | AliceLgIxBr | AliceLgLinx
            | AliceLgMegaport | AliceLgNetnod => "Alice-LG",
            ApnicPopulation => "APNIC",
            BgpkitAs2rel | BgpkitPeerStats | BgpkitPfx2as => "BGPKIT",
            BgptoolsAsNames | BgptoolsTags | BgptoolsAnycast => "BGP.Tools",
            CaidaAsRank | CaidaIxps => "CAIDA",
            CiscoUmbrella => "Cisco",
            CitizenLabUrls => "Citizen Lab",
            CloudflareDnsTopAses
            | CloudflareDnsTopLocations
            | CloudflareRankingTop
            | CloudflareRankingBuckets => "Cloudflare",
            EmileAbenAsNames => "Emile Aben",
            IhrCountryDependency | IhrHegemony | IhrRov => "IHR",
            InetIntelAsOrg => "Internet Intelligence Lab",
            NroDelegatedStats => "NRO",
            OpenintelTranco1m | OpenintelUmbrella1m | OpenintelNs | OpenintelDnsgraph => {
                "OpenINTEL"
            }
            PchRoutingSnapshot => "Packet Clearing House",
            PeeringdbFac | PeeringdbIx | PeeringdbIxlan | PeeringdbNetfac | PeeringdbOrg => {
                "PeeringDB"
            }
            RipeAsNames | RipeRpki | RipeAtlasMeasurements => "RIPE NCC",
            SimulametRdns => "SimulaMet",
            StanfordAsdb => "Stanford",
            TrancoList => "Tranco",
            RovistaRov => "Virginia Tech",
            WorldBankPopulation => "World Bank",
        }
    }

    /// The unique dataset name used as the `reference_name` property.
    pub fn name(self) -> &'static str {
        use DatasetId::*;
        match self {
            AliceLgAmsIx => "alice_lg.ams_ix",
            AliceLgBcix => "alice_lg.bcix",
            AliceLgDeCix => "alice_lg.de_cix",
            AliceLgIxBr => "alice_lg.ix_br",
            AliceLgLinx => "alice_lg.linx",
            AliceLgMegaport => "alice_lg.megaport",
            AliceLgNetnod => "alice_lg.netnod",
            ApnicPopulation => "apnic.aspop",
            BgpkitAs2rel => "bgpkit.as2rel",
            BgpkitPeerStats => "bgpkit.peerstats",
            BgpkitPfx2as => "bgpkit.pfx2as",
            BgptoolsAsNames => "bgptools.as_names",
            BgptoolsTags => "bgptools.tags",
            BgptoolsAnycast => "bgptools.anycast_prefixes",
            CaidaAsRank => "caida.asrank",
            CaidaIxps => "caida.ixs",
            CiscoUmbrella => "cisco.umbrella_top1m",
            CitizenLabUrls => "citizenlab.urldb",
            CloudflareDnsTopAses => "cloudflare.dns_top_ases",
            CloudflareDnsTopLocations => "cloudflare.dns_top_locations",
            CloudflareRankingTop => "cloudflare.top100",
            CloudflareRankingBuckets => "cloudflare.ranking_bucket",
            EmileAbenAsNames => "emileaben.as_names",
            IhrCountryDependency => "ihr.country_dependency",
            IhrHegemony => "ihr.hegemony",
            IhrRov => "ihr.rov",
            InetIntelAsOrg => "inetintel.as_org",
            NroDelegatedStats => "nro.delegated_stats",
            OpenintelTranco1m => "openintel.tranco1m",
            OpenintelUmbrella1m => "openintel.umbrella1m",
            OpenintelNs => "openintel.infra_ns",
            OpenintelDnsgraph => "openintel.dnsgraph",
            PchRoutingSnapshot => "pch.daily_routing_snapshots",
            PeeringdbFac => "peeringdb.fac",
            PeeringdbIx => "peeringdb.ix",
            PeeringdbIxlan => "peeringdb.ixlan",
            PeeringdbNetfac => "peeringdb.netfac",
            PeeringdbOrg => "peeringdb.org",
            RipeAsNames => "ripe.as_names",
            RipeRpki => "ripe.rpki",
            RipeAtlasMeasurements => "ripe.atlas_measurements",
            SimulametRdns => "simulamet.rdns",
            StanfordAsdb => "stanford.asdb",
            TrancoList => "tranco.top1m",
            RovistaRov => "rovista.validating_asns",
            WorldBankPopulation => "worldbank.country_pop",
        }
    }

    /// Human-readable description URL.
    pub fn info_url(self) -> &'static str {
        use DatasetId::*;
        match self.organization() {
            "Alice-LG" => "https://github.com/alice-lg/alice-lg",
            "APNIC" => "https://stats.labs.apnic.net/aspop",
            "BGPKIT" => "https://data.bgpkit.com",
            "BGP.Tools" => "https://bgp.tools/kb/api",
            "CAIDA" => match self {
                CaidaAsRank => "https://doi.org/10.21986/CAIDA.DATA.AS-RANK",
                _ => "https://www.caida.org/catalog/datasets/ixps",
            },
            "Cisco" => "https://s3-us-west-1.amazonaws.com/umbrella-static/index.html",
            "Citizen Lab" => "https://github.com/citizenlab/test-lists",
            "Cloudflare" => "https://radar.cloudflare.com",
            "Emile Aben" => "https://github.com/emileaben/asnames",
            "IHR" => "https://ihr.iijlab.net",
            "Internet Intelligence Lab" => {
                "https://github.com/InetIntel/Dataset-AS-to-Organization-Mapping"
            }
            "NRO" => "https://www.nro.net/about/rirs/statistics",
            "OpenINTEL" => match self {
                OpenintelDnsgraph => "https://dnsgraph.dacs.utwente.nl",
                _ => "https://data.openintel.nl/data",
            },
            "Packet Clearing House" => "https://www.pch.net/resources/Routing_Data",
            "PeeringDB" => "https://www.peeringdb.com",
            "RIPE NCC" => match self {
                RipeAtlasMeasurements => "https://atlas.ripe.net",
                _ => "https://ftp.ripe.net/ripe",
            },
            "SimulaMet" => "https://rir-data.org",
            "Stanford" => "https://asdb.stanford.edu",
            "Tranco" => "https://tranco-list.eu",
            "Virginia Tech" => "https://rovista.netsecurelab.org",
            "World Bank" => "https://www.worldbank.org",
            _ => "https://example.org",
        }
    }

    /// Update frequency, as documented in Table 1/Table 8.
    pub fn frequency(self) -> &'static str {
        use DatasetId::*;
        match self {
            CaidaAsRank => "Monthly",
            StanfordAsdb => "6-month",
            CloudflareDnsTopAses
            | CloudflareDnsTopLocations
            | CloudflareRankingTop
            | CloudflareRankingBuckets
            | PeeringdbFac
            | PeeringdbIx
            | PeeringdbIxlan
            | PeeringdbNetfac
            | PeeringdbOrg => "API",
            _ => "Daily",
        }
    }
}

impl World {
    /// Serialises one dataset in its native text format.
    pub fn render_dataset(&self, id: DatasetId) -> String {
        use DatasetId::*;
        match id {
            AliceLgAmsIx | AliceLgBcix | AliceLgDeCix | AliceLgIxBr | AliceLgLinx
            | AliceLgMegaport | AliceLgNetnod => registry::alice_lg(self, id),
            ApnicPopulation => orginfo::apnic_population(self),
            BgpkitAs2rel => routing::bgpkit_as2rel(self),
            BgpkitPeerStats => routing::bgpkit_peer_stats(self),
            BgpkitPfx2as => routing::bgpkit_pfx2as(self),
            BgptoolsAsNames => orginfo::bgptools_as_names(self),
            BgptoolsTags => orginfo::bgptools_tags(self),
            BgptoolsAnycast => orginfo::bgptools_anycast(self),
            CaidaAsRank => routing::caida_asrank(self),
            CaidaIxps => registry::caida_ixps(self),
            CiscoUmbrella => dnsdata::cisco_umbrella(self),
            CitizenLabUrls => orginfo::citizenlab_urls(self),
            CloudflareDnsTopAses => dnsdata::cloudflare_dns_top_ases(self),
            CloudflareDnsTopLocations => dnsdata::cloudflare_dns_top_locations(self),
            CloudflareRankingTop => dnsdata::cloudflare_ranking_top(self),
            CloudflareRankingBuckets => dnsdata::cloudflare_ranking_buckets(self),
            EmileAbenAsNames => orginfo::emileaben_as_names(self),
            IhrCountryDependency => routing::ihr_country_dependency(self),
            IhrHegemony => routing::ihr_hegemony(self),
            IhrRov => routing::ihr_rov(self),
            InetIntelAsOrg => orginfo::inetintel_as_org(self),
            NroDelegatedStats => registry::nro_delegated_stats(self),
            OpenintelTranco1m => dnsdata::openintel_tranco1m(self),
            OpenintelUmbrella1m => dnsdata::openintel_umbrella1m(self),
            OpenintelNs => dnsdata::openintel_ns(self),
            OpenintelDnsgraph => dnsdata::openintel_dnsgraph(self),
            PchRoutingSnapshot => routing::pch_routing_snapshot(self),
            PeeringdbFac => registry::peeringdb_fac(self),
            PeeringdbIx => registry::peeringdb_ix(self),
            PeeringdbIxlan => registry::peeringdb_ixlan(self),
            PeeringdbNetfac => registry::peeringdb_netfac(self),
            PeeringdbOrg => registry::peeringdb_org(self),
            RipeAsNames => orginfo::ripe_as_names(self),
            RipeRpki => registry::ripe_rpki(self),
            RipeAtlasMeasurements => orginfo::ripe_atlas_measurements(self),
            SimulametRdns => dnsdata::simulamet_rdns(self),
            StanfordAsdb => orginfo::stanford_asdb(self),
            TrancoList => dnsdata::tranco_list(self),
            RovistaRov => routing::rovista(self),
            WorldBankPopulation => orginfo::worldbank_population(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_46_datasets() {
        assert_eq!(ALL_DATASETS.len(), 46);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL_DATASETS.iter().map(|d| d.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 46);
    }

    #[test]
    fn there_are_23_organizations() {
        let mut orgs: Vec<&str> = ALL_DATASETS.iter().map(|d| d.organization()).collect();
        orgs.sort();
        orgs.dedup();
        // Table 8 lists 21 provider rows; the paper's abstract counts 23
        // organizations (RIPE NCC/Atlas and UTwente/OpenINTEL are split
        // in their counting). We model 21 distinct provider strings.
        assert!(orgs.len() >= 21, "got {} orgs", orgs.len());
    }

    #[test]
    fn metadata_is_complete() {
        for d in ALL_DATASETS {
            assert!(!d.name().is_empty());
            assert!(!d.organization().is_empty());
            assert!(d.info_url().starts_with("https://"));
            assert!(!d.frequency().is_empty());
        }
    }
}
